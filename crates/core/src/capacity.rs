//! The "arbitrary but known bounded capacity" extension of §4.
//!
//! The paper proves snap-stabilization of the PIF for single-message
//! channels and remarks that "the extension to an arbitrary but known
//! bounded message capacity is straightforward" (§4, citing [6, 7]). This
//! module makes the extension executable and **tight**:
//!
//! * For channel capacity `c`, the handshake flag domain must have
//!   `2c + 3` values ([`FlagDomain::for_capacity`]). The generalized
//!   counting argument (the Figure 1 adversary, scaled): an arbitrary
//!   initial configuration hides at most
//!
//!   1. `c` messages in the channel `q → p`, each able to echo one future
//!      value of `State_p[q]` — `c` stale increments;
//!   2. one corrupted `NeigState_q[p]`, echoed by `q` until overwritten and
//!      matching `State_p[q]` at most once — `1` stale increment;
//!   3. `c` messages in the channel `p → q`, each overwriting
//!      `NeigState_q[p]` with one crafted value that `q` then echoes,
//!      matching at most once — `c` stale increments.
//!
//!   That is `2c + 1` stale-driven increments in total; the FIFO discipline
//!   forces every hidden `p → q` message out before any post-start message
//!   of `p` reaches `q`, so a domain demanding `2c + 2` increments makes
//!   the final increment (and the feedback it delivers) necessarily
//!   genuine. For `c = 1` this is the paper's five-valued domain and the
//!   exact Figure 1 worst case.
//!
//! * The bound is *tight both ways*: [`StaleConfig::canonical`] constructs
//!   the adversarial initial configuration that realizes all `2c + 1` stale
//!   increments, so any domain with at most `2c + 2` values (completion
//!   value ≤ `2c + 1`) lets a wave **complete on stale data alone** — a
//!   violation of Specification 1's Correctness and Decision properties.
//!   [`drive_stale`] executes the adversary and reports how far it got.
//!
//! The experiment `exp_capacity` sweeps capacities and domain sizes and
//! prints the resulting dichotomy table; `tests/capacity_integration.rs`
//! runs the full protocol stack (PIF, IDL, ME) over multi-message channels
//! with the generalized domains.

use snapstab_sim::{
    ArbitraryState, Capacity, Move, NetworkBuilder, ProcessId, Protocol, RoundRobin, Runner, SimRng,
};

use crate::flag::{Flag, FlagDomain};
use crate::pif::{PifApp, PifProcess};
use crate::request::RequestState;

/// Feedback application used by the adversary driver: feeds back a
/// constant, distinguishable from the garbage planted in stale messages.
#[derive(Clone, Debug)]
struct ConstFeedback(u32);

impl PifApp<u32, u32> for ConstFeedback {
    fn on_broadcast(&mut self, _from: ProcessId, _data: &u32) -> u32 {
        self.0
    }
    fn on_feedback(&mut self, _from: ProcessId, _data: &u32) {}
}

type Proc = PifProcess<u32, u32, ConstFeedback>;

/// The marker planted in every stale message's data fields, so a decision
/// taken on stale feedback is detectable.
pub const STALE_MARKER: u32 = 0xDEAD;

/// The genuine feedback value `q` computes for a real broadcast.
pub const GENUINE_FEEDBACK: u32 = 0x600D;

fn p0() -> ProcessId {
    ProcessId::new(0)
}
fn p1() -> ProcessId {
    ProcessId::new(1)
}

/// An adversarial 2-process initial configuration for channels of capacity
/// `capacity`: the flag fields of every hidden message plus `q`'s corrupted
/// variables. Generalizes the Figure 1 `AdversaryConfig` to any capacity.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct StaleConfig {
    /// Channel capacity (also bounds the hidden-message vectors).
    pub capacity: usize,
    /// The flag domain under attack.
    pub domain: FlagDomain,
    /// Hidden messages in the channel `q → p`, head first:
    /// `(sender_state, echoed_state)` per message.
    pub qp_msgs: Vec<(Flag, Flag)>,
    /// Hidden messages in the channel `p → q`, head first.
    pub pq_msgs: Vec<(Flag, Flag)>,
    /// `q`'s corrupted `NeigState_q[p]`.
    pub neig_state_q: Flag,
    /// `q`'s corrupted `State_q[p]`.
    pub state_q: Flag,
    /// `q`'s corrupted request variable.
    pub request_q: RequestState,
}

impl StaleConfig {
    /// The canonical worst-case adversary for `capacity` against `domain`:
    /// `q → p` pre-loaded with echoes `0, 1, …, c−1`, `NeigState_q[p] = c`,
    /// `q` mid-computation (`Request_q = In`, so its action A2 spontaneously
    /// echoes the corrupted view), and `p → q` pre-loaded with sender flags
    /// `c+1, …, 2c` (each overwrites `NeigState_q[p]` and is echoed back).
    /// Realizes exactly `2c + 1` stale increments — the proven maximum.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is `0`.
    pub fn canonical(capacity: usize, domain: FlagDomain) -> Self {
        assert!(capacity >= 1, "channel capacity must be at least 1");
        let c = capacity as u8;
        StaleConfig {
            capacity,
            domain,
            // sender_state = domain max: p treats q as complete and sends no
            // reply, keeping the schedule tight (replies are dropped on the
            // full p→q channel anyway).
            qp_msgs: (0..c)
                .map(|i| (domain.max(), domain.clamp(Flag::new(i))))
                .collect(),
            pq_msgs: (1..=c)
                .map(|i| (domain.clamp(Flag::new(c + i)), domain.max()))
                .collect(),
            neig_state_q: domain.clamp(Flag::new(c)),
            state_q: Flag::ZERO,
            request_q: RequestState::In,
        }
    }

    /// An arbitrary adversary: every hidden flag field and every corrupted
    /// variable drawn uniformly from the domain, with full channels.
    pub fn arbitrary(rng: &mut SimRng, capacity: usize, domain: FlagDomain) -> Self {
        assert!(capacity >= 1, "channel capacity must be at least 1");
        let mut flags = |k: usize| -> Vec<(Flag, Flag)> {
            (0..k)
                .map(|_| (domain.arbitrary_flag(rng), domain.arbitrary_flag(rng)))
                .collect()
        };
        StaleConfig {
            capacity,
            domain,
            qp_msgs: flags(capacity),
            pq_msgs: flags(capacity),
            neig_state_q: domain.arbitrary_flag(rng),
            state_q: domain.arbitrary_flag(rng),
            request_q: RequestState::arbitrary(rng),
        }
    }
}

/// Outcome of driving one adversarial configuration with stale data only,
/// then letting the system run fairly to completion.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct StaleOutcome {
    /// Highest `State_p[q]` reached while only stale-derived messages were
    /// delivered (no post-start message of `p` ever reached `q`).
    pub max_stale_flag: Flag,
    /// Whether `p` *decided* (`Request_p = Done`) within the stale phase —
    /// a snap-stabilization violation: the feedback it counted is garbage.
    pub stale_decided: bool,
    /// Whether the wave completed after the fair continuation
    /// (Specification 1's Termination; must always hold).
    pub completed: bool,
    /// Steps executed in the stale phase.
    pub stale_steps: u64,
}

/// How the stale phase schedules its moves.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum StaleSchedule {
    /// The crafted worst-case order: drain `q → p`, activate `q`, then
    /// alternate hidden `p → q` deliveries with the echoes they trigger.
    Canonical,
    /// A seeded random interleaving of the permitted stale moves.
    Random {
        /// RNG seed selecting the interleaving.
        seed: u64,
    },
}

fn build(config: &StaleConfig) -> Runner<Proc, RoundRobin> {
    let domain = config.domain;
    let mk = |i: usize| {
        PifProcess::with_domain(
            ProcessId::new(i),
            2,
            0u32,
            0u32,
            domain,
            ConstFeedback(GENUINE_FEEDBACK),
        )
    };
    let network = NetworkBuilder::new(2)
        .capacity(Capacity::Bounded(config.capacity))
        .build();
    let mut runner = Runner::new(vec![mk(0), mk(1)], network, RoundRobin::new(), 0);

    // Install q's corrupted variables.
    {
        let q = runner.process_mut(p1());
        let mut s = q.core().snapshot();
        s.neig_state[0] = config.neig_state_q;
        s.state[0] = config.state_q;
        s.request = config.request_q;
        s.f_mes[0] = STALE_MARKER;
        q.core_mut().restore(s);
    }
    // Hide the stale messages (data fields marked as garbage).
    let plant = |(sender_state, echoed_state): (Flag, Flag)| crate::pif::PifMsg {
        broadcast: STALE_MARKER,
        feedback: STALE_MARKER,
        sender_state,
        echoed_state,
    };
    runner
        .network_mut()
        .channel_mut(p1(), p0())
        .expect("2-process link")
        .preload(config.qp_msgs.iter().copied().map(plant));
    runner
        .network_mut()
        .channel_mut(p0(), p1())
        .expect("2-process link")
        .preload(config.pq_msgs.iter().copied().map(plant));

    // p requests its wave.
    runner.process_mut(p0()).request_broadcast(7);
    runner
}

/// The moves permitted during the stale phase. Delivering on `p → q` is
/// allowed only while hidden (pre-start) messages remain at its head —
/// FIFO guarantees the first `|pq_msgs|` deliveries are exactly those, so
/// no post-start message of `p` ever reaches `q` and every increment of
/// `State_p[q]` in this phase is stale-driven by construction.
fn stale_moves(runner: &Runner<Proc, RoundRobin>, pq_budget: usize) -> Vec<Move> {
    let mut moves = Vec::with_capacity(4);
    if runner.process(p0()).has_enabled_action() {
        moves.push(Move::Activate(p0()));
    }
    if runner.process(p1()).has_enabled_action() {
        moves.push(Move::Activate(p1()));
    }
    if !runner
        .network()
        .channel(p1(), p0())
        .expect("2-process link")
        .is_empty()
    {
        moves.push(Move::Deliver {
            from: p1(),
            to: p0(),
        });
    }
    if pq_budget > 0
        && !runner
            .network()
            .channel(p0(), p1())
            .expect("2-process link")
            .is_empty()
    {
        moves.push(Move::Deliver {
            from: p0(),
            to: p1(),
        });
    }
    moves
}

/// The crafted worst-case move sequence realizing all `2c + 1` stale
/// increments, in the order the counting argument prescribes: `p` starts
/// (its A2 send drowns in the full `p → q` channel), the pre-loaded
/// ascending echoes drain from `q → p`, `q` activates once and echoes its
/// corrupted `NeigState_q[p]`, then each hidden `p → q` message is
/// delivered (overwriting `NeigState_q[p]`, triggering a reply) and its
/// echo consumed. A final activation of `p` runs the A2 decision check.
pub fn canonical_script(capacity: usize) -> Vec<Move> {
    let (d_qp, d_pq) = (
        Move::Deliver {
            from: p1(),
            to: p0(),
        },
        Move::Deliver {
            from: p0(),
            to: p1(),
        },
    );
    let mut script = vec![Move::Activate(p0())];
    script.extend(std::iter::repeat_n(d_qp, capacity));
    script.push(Move::Activate(p1()));
    script.push(d_qp);
    for _ in 0..capacity {
        script.push(d_pq);
        script.push(d_qp);
    }
    script.push(Move::Activate(p0()));
    script
}

/// Drives `config` with stale-derived messages only, under `schedule`, then
/// finishes the run fairly and reports the [`StaleOutcome`].
pub fn drive_stale(config: &StaleConfig, schedule: StaleSchedule) -> StaleOutcome {
    let mut runner = build(config);
    runner.set_record_trace(false);
    let mut pq_budget = config.pq_msgs.len();
    let mut max_stale_flag = Flag::ZERO;

    // Only post-start flag values count: `Request_p = In` holds exactly
    // between action A1 (which resets `State_p[q]` to 0) and the decision.
    let observe = |r: &Runner<Proc, RoundRobin>, max: &mut Flag| {
        if r.process(p0()).request() == RequestState::In {
            *max = (*max).max(r.process(p0()).core().state_of(p1()));
        }
    };

    match schedule {
        StaleSchedule::Canonical => {
            for mv in canonical_script(config.capacity) {
                if runner.process(p0()).request() == RequestState::Done {
                    break;
                }
                let applicable = match mv {
                    Move::Activate(_) => true,
                    Move::Deliver { from, to } => {
                        let ok = !runner
                            .network()
                            .channel(from, to)
                            .expect("2-process link")
                            .is_empty();
                        ok && (from != p0() || pq_budget > 0)
                    }
                };
                if !applicable {
                    continue;
                }
                if mv
                    == (Move::Deliver {
                        from: p0(),
                        to: p1(),
                    })
                {
                    pq_budget -= 1;
                }
                runner
                    .execute_move(mv)
                    .expect("applicable move cannot error");
                observe(&runner, &mut max_stale_flag);
            }
        }
        StaleSchedule::Random { seed } => {
            // A random interleaving of the permitted stale moves, with an
            // activation cap to escape the A2 retransmission loop.
            let mut rng = SimRng::seed_from(seed);
            let mut activations_left = 16 * (config.capacity as u64 + 2);
            loop {
                if runner.process(p0()).request() == RequestState::Done {
                    break;
                }
                let moves = stale_moves(&runner, pq_budget);
                let deliveries: Vec<Move> = moves
                    .iter()
                    .copied()
                    .filter(|m| matches!(m, Move::Deliver { .. }))
                    .collect();
                let mv = if moves.is_empty() {
                    None
                } else if activations_left == 0 {
                    deliveries.first().copied()
                } else if !deliveries.is_empty() && rng.gen_range(0..4) != 0 {
                    Some(deliveries[rng.gen_range(0..deliveries.len())])
                } else {
                    Some(moves[rng.gen_range(0..moves.len())])
                };
                let Some(mv) = mv else { break };
                if matches!(mv, Move::Activate(_)) {
                    activations_left = activations_left.saturating_sub(1);
                }
                if let Move::Deliver { from, to } = mv {
                    if from == p0() && to == p1() {
                        pq_budget -= 1;
                    }
                }
                runner
                    .execute_move(mv)
                    .expect("permitted move is applicable");
                observe(&runner, &mut max_stale_flag);
            }
        }
    }

    let stale_decided = runner.process(p0()).request() == RequestState::Done;
    let stale_steps = runner.step_count();

    // Fair continuation: Termination must hold regardless. The wave may not
    // have started yet under a random schedule that never activated `p`.
    let _ = runner.run_until(200_000, |r| r.process(p0()).request() == RequestState::Done);
    let completed = runner.process(p0()).request() == RequestState::Done;

    StaleOutcome {
        max_stale_flag,
        stale_decided,
        completed,
        stale_steps,
    }
}

/// The worst [`StaleOutcome`] over the canonical schedule plus
/// `random_schedules` random interleavings of the same configuration.
pub fn max_stale(config: &StaleConfig, random_schedules: u64) -> StaleOutcome {
    let mut best = drive_stale(config, StaleSchedule::Canonical);
    for seed in 0..random_schedules {
        let r = drive_stale(config, StaleSchedule::Random { seed });
        if r.max_stale_flag > best.max_stale_flag || (r.stale_decided && !best.stale_decided) {
            best = StaleOutcome {
                completed: best.completed && r.completed,
                ..r
            };
        } else {
            best.completed &= r.completed;
        }
    }
    best
}

/// The dichotomy point for `capacity`: the minimum number of flag values
/// that defeats every stale adversary (`2·capacity + 3`).
pub fn required_domain_size(capacity: usize) -> usize {
    2 * capacity + 3
}

/// Summary of an adversarial sweep at one `(capacity, domain)` cell:
/// the worst stale drive over many arbitrary configurations.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SweepOutcome {
    /// Configurations tried.
    pub configs: usize,
    /// Worst stale-driven flag over the sweep.
    pub max_stale_flag: Flag,
    /// How many configurations produced a stale decision.
    pub stale_decisions: usize,
    /// Whether every run terminated (Specification 1's Termination).
    pub all_completed: bool,
}

/// Sweeps the canonical adversary plus `extra_configs` arbitrary ones
/// (each under the canonical schedule plus `random_schedules` random
/// interleavings) against `(capacity, domain)`.
pub fn sweep(
    capacity: usize,
    domain: FlagDomain,
    extra_configs: usize,
    random_schedules: u64,
    seed: u64,
) -> SweepOutcome {
    let mut rng = SimRng::seed_from(seed);
    let mut out = SweepOutcome {
        configs: 0,
        max_stale_flag: Flag::ZERO,
        stale_decisions: 0,
        all_completed: true,
    };
    let absorb = |r: StaleOutcome, out: &mut SweepOutcome| {
        out.configs += 1;
        out.max_stale_flag = out.max_stale_flag.max(r.max_stale_flag);
        out.stale_decisions += r.stale_decided as usize;
        out.all_completed &= r.completed;
    };
    absorb(
        max_stale(&StaleConfig::canonical(capacity, domain), random_schedules),
        &mut out,
    );
    for _ in 0..extra_configs {
        let cfg = StaleConfig::arbitrary(&mut rng, capacity, domain);
        absorb(max_stale(&cfg, random_schedules), &mut out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_adversary_matches_figure_1_at_capacity_one() {
        // c = 1, paper domain: stale data drives the flag to exactly 3,
        // never completing the wave — the Figure 1 worst case.
        let cfg = StaleConfig::canonical(1, FlagDomain::PAPER);
        let r = drive_stale(&cfg, StaleSchedule::Canonical);
        assert_eq!(r.max_stale_flag, Flag::new(3));
        assert!(!r.stale_decided);
        assert!(r.completed, "Termination holds");
    }

    #[test]
    fn canonical_adversary_realizes_2c_plus_1_increments() {
        for c in 1..=4usize {
            let domain = FlagDomain::for_capacity(c);
            let cfg = StaleConfig::canonical(c, domain);
            let r = drive_stale(&cfg, StaleSchedule::Canonical);
            assert_eq!(
                r.max_stale_flag,
                Flag::new(2 * c as u8 + 1),
                "capacity {c}: the bound is tight"
            );
            assert!(!r.stale_decided, "capacity {c}: 2c+3 values are enough");
            assert!(r.completed);
        }
    }

    #[test]
    fn paper_domain_breaks_at_capacity_two() {
        // The headline of the extension: five flag values are NOT enough
        // once channels hold two messages — the wave completes on stale
        // data alone, violating Correctness and Decision.
        let cfg = StaleConfig::canonical(2, FlagDomain::PAPER);
        let r = drive_stale(&cfg, StaleSchedule::Canonical);
        assert!(r.stale_decided, "5 values break at capacity 2: {r:?}");
        assert!(r.max_stale_flag.is_complete(FlagDomain::PAPER));
    }

    #[test]
    fn one_value_short_breaks_at_every_capacity() {
        for c in 1..=4usize {
            let domain = FlagDomain::with_max(2 * c as u8 + 1); // 2c+2 values
            let cfg = StaleConfig::canonical(c, domain);
            let r = drive_stale(&cfg, StaleSchedule::Canonical);
            assert!(
                r.stale_decided,
                "capacity {c}, {} values: {r:?}",
                domain.size()
            );
        }
    }

    #[test]
    fn random_schedules_never_beat_the_bound() {
        for c in 1..=3usize {
            let domain = FlagDomain::for_capacity(c);
            let cfg = StaleConfig::canonical(c, domain);
            let r = max_stale(&cfg, 20);
            assert!(r.max_stale_flag <= Flag::new(2 * c as u8 + 1), "{c}: {r:?}");
            assert!(!r.stale_decided);
            assert!(r.completed);
        }
    }

    #[test]
    fn arbitrary_configs_never_beat_the_bound() {
        let mut rng = SimRng::seed_from(42);
        for c in 1..=3usize {
            let domain = FlagDomain::for_capacity(c);
            for _ in 0..30 {
                let cfg = StaleConfig::arbitrary(&mut rng, c, domain);
                let r = max_stale(&cfg, 5);
                assert!(
                    r.max_stale_flag <= Flag::new(2 * c as u8 + 1),
                    "capacity {c}, {cfg:?}: {r:?}"
                );
                assert!(!r.stale_decided);
                assert!(r.completed);
            }
        }
    }

    #[test]
    fn sweep_reports_the_dichotomy() {
        // Safe side.
        let safe = sweep(2, FlagDomain::for_capacity(2), 10, 4, 1);
        assert_eq!(safe.stale_decisions, 0);
        assert!(safe.all_completed);
        assert_eq!(safe.max_stale_flag, Flag::new(5));
        // Broken side.
        let broken = sweep(2, FlagDomain::PAPER, 10, 4, 1);
        assert!(broken.stale_decisions >= 1, "{broken:?}");
    }

    #[test]
    fn required_domain_size_formula() {
        assert_eq!(required_domain_size(1), 5);
        assert_eq!(required_domain_size(2), 7);
        assert_eq!(required_domain_size(5), 13);
    }

    #[test]
    fn empty_channels_are_benign() {
        // Only the corrupted NeigState remains: at most one stale increment.
        let cfg = StaleConfig {
            capacity: 2,
            domain: FlagDomain::PAPER,
            qp_msgs: vec![],
            pq_msgs: vec![],
            neig_state_q: Flag::ZERO,
            state_q: Flag::ZERO,
            request_q: RequestState::In,
        };
        let r = max_stale(&cfg, 8);
        assert!(r.max_stale_flag <= Flag::new(1), "{r:?}");
        assert!(r.completed);
    }
}
