//! # snapstab-core — the paper's snap-stabilizing protocols
//!
//! Rust implementation of the three snap-stabilizing protocols of Delaët,
//! Devismes, Nesterenko and Tixeuil, *Snap-Stabilization in Message-Passing
//! Systems* (2008), for fully-connected networks with bounded-capacity
//! unreliable FIFO channels:
//!
//! * [`pif`] — **Algorithm 1**: Propagation of Information with Feedback.
//!   The initiator's per-neighbor handshake flag `State[q]` must climb
//!   `0 → 1 → 2 → 3 → 4`, each increment requiring an echo of the current
//!   value; with single-message-capacity channels this guarantees the final
//!   feedback causally depends on the started broadcast despite an
//!   arbitrary initial configuration (Theorem 2).
//! * [`idl`] — **Algorithm 2**: IDs-Learning, one PIF wave that teaches the
//!   initiator every neighbor's ID and the minimum ID (Theorem 3).
//! * [`me`] — **Algorithm 3**: Mutual exclusion. The minimum-ID process
//!   (leader) arbitrates with a `Value` pointer; processes cycle through
//!   phases 0–4 (IDL wave, ASK wave, EXIT wave, critical section, EXITCS
//!   wave), and every *requesting* process enters the critical section
//!   alone, from any initial configuration (Theorem 4).
//! * [`spec`] — executable versions of Specifications 1–3 and Property 1:
//!   trace predicates for Start, Correctness, Termination and Decision,
//!   plus Specification 5 ([`spec::analyze_snapshot_trace`]) judging the
//!   monitoring cuts a live run's snapshot waves collect.
//! * [`probe`] — the observability payloads those waves carry: per-process
//!   [`probe::ProbeDigest`] values and the cut-level [`probe::MonitorEvent`]
//!   trace events Specification 5 consumes.
//! * [`capacity`] — the §4 "arbitrary but known bounded capacity"
//!   extension, made tight: capacity `c` needs exactly `2c + 3` flag
//!   values ([`flag::FlagDomain::for_capacity`]); the canonical scaled
//!   Figure 1 adversary realizes the `2c + 1` stale-increment bound and
//!   breaks every smaller domain.
//! * [`forward`] — the snap-stabilizing *message forwarding* application
//!   (the Cournier–Dubois–Villain line of work built on this paper):
//!   client payloads routed hop-by-hop through bounded buffers, each hop
//!   transfer validated by the paper's per-link flag handshake, with the
//!   end-to-end exactly-once promise executable as Specification 4
//!   ([`spec::analyze_forwarding_trace`]).
//! * [`shard`] — the scaled *service* layer: `S` independent Algorithm 3
//!   instances (one leader each, [`shard::ShardedMe`]) own
//!   hash-partitioned slices of a resource space, and each
//!   critical-section grant serves a batch of non-conflicting client
//!   requests ([`request::BatchQueue`]); a [`shard::GrantLog`] makes the
//!   composition auditable on top of each shard's Specification 3.
//!
//! Snap-stabilization (Definition 1): starting from *any* configuration,
//! *any* execution satisfies the specification — the first requested
//! computation already runs correctly, with no convergence phase. Contrast
//! with the self-stabilizing baselines in `snapstab-baselines`.
//!
//! ## Quickstart
//!
//! ```
//! use snapstab_core::pif::{PifApp, PifProcess};
//! use snapstab_core::harness;
//! use snapstab_sim::ProcessId;
//!
//! // An application that answers every broadcast with its age — the
//! // paper's "How old are you?" example (§4.1).
//! #[derive(Clone, Debug)]
//! struct Age(u32);
//! impl PifApp<&'static str, u32> for Age {
//!     fn on_broadcast(&mut self, _from: ProcessId, _q: &&'static str) -> u32 { self.0 }
//!     fn on_feedback(&mut self, _from: ProcessId, _age: &u32) {}
//! }
//!
//! // Build a 3-process system with corrupted initial state, request a
//! // broadcast at P0, and run to the decision.
//! let mut runner = harness::pif_system(3, |i| PifProcess::new(
//!     ProcessId::new(i), 3, "how old are you?", Age(30 + i as u32),
//! ), 0xBAD_5EED);
//! harness::corrupt_processes(&mut runner, 7);
//! runner.process_mut(ProcessId::new(0)).request_broadcast("how old are you?");
//! harness::run_to_decision(&mut runner, ProcessId::new(0), 100_000).unwrap();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod capacity;
pub mod flag;
pub mod forward;
pub mod harness;
pub mod idl;
pub mod me;
pub mod pif;
pub mod probe;
pub mod request;
pub mod shard;
pub mod spec;

pub use flag::{Flag, FlagDomain};
pub use probe::{state_digest, MonitorEvent, MonitorEventView, ProbeDigest};
pub use request::{BatchQueue, ClientRequest, RequestState, ResourceKey};
pub use shard::{shard_of, Grant, GrantAudit, GrantLog, ShardedMe, ShardedMeEvent, ShardedMeMsg};
