//! Algorithm 1 — the snap-stabilizing PIF protocol.
//!
//! Propagation of Information with Feedback (also called Wave Propagation):
//! when requested, an initiator `p` broadcasts a message to every other
//! process and collects one acknowledgment from each; the computation ends
//! with a *decision* that takes exactly those acknowledgments into account.
//!
//! The protocol keeps, per neighbor `q`, a handshake flag `State_p[q]`
//! that climbs `0 → 4`; `p` repeatedly sends
//! `⟨PIF, B-Mes_p, F-Mes_p[q], State_p[q], NeigState_p[q]⟩` to `q` and
//! increments `State_p[q]` only on receiving a message from `q` echoing the
//! current value. The `receive-brd` event fires at `q` when it first sees
//! `sender_state = 3`; the `receive-fck` event fires at `p` when
//! `State_p[q]` reaches `4`. The five-valued domain defeats the (at most)
//! one stale message per channel direction plus the stale `NeigState`
//! value that an arbitrary initial configuration can hide (Figure 1 shows
//! the tight case).
//!
//! ## Composition
//!
//! Upper layers (IDL, ME) embed a [`PifCore`] and implement [`PifApp`];
//! the `receive-brd` upcall **synchronously** computes the feedback to
//! store in `F-Mes[q]`, within the same atomic receive action — this is
//! what makes the first `sender_state = 3` reply already carry the correct
//! acknowledgment (used in the proof of Lemma 5). Standalone use goes
//! through [`PifProcess`].

use snapstab_sim::{ArbitraryState, Context, PerNeighbor, ProcessId, Protocol, SimRng};

use crate::flag::{Flag, FlagDomain};
use crate::request::RequestState;

/// The single message type of the protocol (the paper: "we use a single
/// message type, noted `PIF`").
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct PifMsg<B, F> {
    /// `B-Mes` of the sender: the data being broadcast.
    pub broadcast: B,
    /// `F-Mes[receiver]` of the sender: the feedback for the receiver's own
    /// broadcast.
    pub feedback: F,
    /// `State_sender[receiver]`: the sender's handshake flag toward the
    /// receiver.
    pub sender_state: Flag,
    /// `NeigState_sender[receiver]`: the receiver's flag as last seen by
    /// the sender (the echo that drives increments).
    pub echoed_state: Flag,
}

impl<B: ArbitraryState, F: ArbitraryState> ArbitraryState for PifMsg<B, F> {
    fn arbitrary(rng: &mut SimRng) -> Self {
        PifMsg {
            broadcast: B::arbitrary(rng),
            feedback: F::arbitrary(rng),
            sender_state: Flag::arbitrary(rng),
            echoed_state: Flag::arbitrary(rng),
        }
    }
}

/// Protocol-level events of a PIF instance, recorded in the trace and
/// consumed by the Specification 1 checker.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum PifEvent<B, F> {
    /// Action A1 executed: `Request` switched `Wait → In` and all flags
    /// were reset (the *starting action*).
    Started,
    /// Action A2 found every flag at 4: `Request` switched `In → Done`
    /// (the *decision*).
    Decided,
    /// The `receive-brd⟨B⟩ from q` event: this process first saw the
    /// neighbor's flag at 3 for the current wave.
    ReceiveBrd {
        /// The broadcasting neighbor.
        from: ProcessId,
        /// The broadcast data.
        data: B,
    },
    /// The `receive-fck⟨F⟩ from q` event: `State[q]` switched `3 → 4`.
    ReceiveFck {
        /// The acknowledging neighbor.
        from: ProcessId,
        /// The feedback data.
        data: F,
    },
}

/// The application layer above a PIF instance.
///
/// `on_broadcast` is the `receive-brd` handler: it must return the
/// feedback value, which the core stores in `F-Mes[from]` *within the same
/// atomic step* (the reply sent at the end of the receive action already
/// carries it). `on_feedback` is the `receive-fck` handler.
pub trait PifApp<B, F> {
    /// Handles `receive-brd⟨data⟩ from from`; returns the feedback to store
    /// in `F-Mes[from]`.
    fn on_broadcast(&mut self, from: ProcessId, data: &B) -> F;

    /// Handles `receive-fck⟨data⟩ from from`.
    fn on_feedback(&mut self, from: ProcessId, data: &F);
}

/// The state projection `φ_p` of a PIF instance: every local variable.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct PifState<B, F> {
    /// The request variable.
    pub request: RequestState,
    /// The broadcast data `B-Mes`.
    pub b_mes: B,
    /// Per-neighbor feedback data `F-Mes[q]` (own slot unused).
    pub f_mes: Vec<F>,
    /// Per-neighbor handshake flags `State[q]` (own slot unused).
    pub state: Vec<Flag>,
    /// Per-neighbor flag views `NeigState[q]` (own slot unused).
    pub neig_state: Vec<Flag>,
}

/// Algorithm 1's variables and actions for one process.
///
/// Generic over the broadcast data type `B` and feedback data type `F`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct PifCore<B, F> {
    me: ProcessId,
    n: usize,
    domain: FlagDomain,
    request: RequestState,
    b_mes: B,
    f_mes: PerNeighbor<F>,
    state: PerNeighbor<Flag>,
    neig_state: PerNeighbor<Flag>,
}

impl<B, F> PifCore<B, F>
where
    B: Clone + std::fmt::Debug + PartialEq + 'static,
    F: Clone + std::fmt::Debug + PartialEq + 'static,
{
    /// Creates a correctly-initialized instance (`Request = Done`, all
    /// flags at the completion value, quiescent). Snap-stabilization of
    /// course does not depend on this initialization; tests corrupt it.
    pub fn new(me: ProcessId, n: usize, initial_b: B, initial_f: F) -> Self {
        Self::with_domain(me, n, initial_b, initial_f, FlagDomain::PAPER)
    }

    /// Creates an instance over a non-standard flag domain (the A1
    /// minimality ablation; everything else uses [`FlagDomain::PAPER`]).
    pub fn with_domain(
        me: ProcessId,
        n: usize,
        initial_b: B,
        initial_f: F,
        domain: FlagDomain,
    ) -> Self {
        PifCore {
            me,
            n,
            domain,
            request: RequestState::Done,
            b_mes: initial_b,
            f_mes: PerNeighbor::new(me, n, initial_f),
            state: PerNeighbor::new(me, n, domain.max()),
            neig_state: PerNeighbor::new(me, n, domain.max()),
        }
    }

    /// This process's id.
    pub fn me(&self) -> ProcessId {
        self.me
    }

    /// System size.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The flag domain in use.
    pub fn domain(&self) -> FlagDomain {
        self.domain
    }

    /// Current request state.
    pub fn request(&self) -> RequestState {
        self.request
    }

    /// The broadcast data `B-Mes`.
    pub fn b_mes(&self) -> &B {
        &self.b_mes
    }

    /// Sets the broadcast data (done by the user/upper layer right before
    /// requesting a wave).
    pub fn set_b_mes(&mut self, b: B) {
        self.b_mes = b;
    }

    /// The handshake flag `State[q]`.
    pub fn state_of(&self, q: ProcessId) -> Flag {
        *self.state.get(q)
    }

    /// The neighbor-flag view `NeigState[q]`.
    pub fn neig_state_of(&self, q: ProcessId) -> Flag {
        *self.neig_state.get(q)
    }

    /// The stored feedback `F-Mes[q]`.
    pub fn f_mes_of(&self, q: ProcessId) -> &F {
        self.f_mes.get(q)
    }

    /// Externally requests a wave broadcasting `b` (`Request ← Wait`).
    /// Refused (returning `false`) while a computation is pending or in
    /// progress, per the paper's user discipline.
    pub fn request_broadcast(&mut self, b: B) -> bool {
        if self.request.accepts_request() {
            self.b_mes = b;
            self.request = RequestState::Wait;
            true
        } else {
            false
        }
    }

    /// **Upper-layer start** (`PIF.Request_p ← Wait` as written in
    /// Algorithms 2 and 3): unconditionally overwrites the request
    /// variable. An in-progress (necessarily non-started, by the layer's
    /// own sequencing) computation is abandoned and a fresh wave begins.
    pub fn force_request(&mut self, b: B) {
        self.b_mes = b;
        self.request = RequestState::Wait;
    }

    fn wave_message(&self, q: ProcessId) -> PifMsg<B, F> {
        PifMsg {
            broadcast: self.b_mes.clone(),
            feedback: self.f_mes.get(q).clone(),
            sender_state: *self.state.get(q),
            echoed_state: *self.neig_state.get(q),
        }
    }

    /// Action A1 (the starting action): `Request = Wait → Request ← In`,
    /// reset every `State[q]` to 0. Returns true if it executed.
    pub fn action_a1<E>(&mut self, ctx: &mut Context<'_, PifMsg<B, F>, E>) -> bool
    where
        E: From<PifEvent<B, F>>,
    {
        if self.request != RequestState::Wait {
            return false;
        }
        self.request = RequestState::In;
        self.state.fill_with(|_| Flag::ZERO);
        ctx.emit(PifEvent::Started.into());
        true
    }

    /// Action A2: while `Request = In`, either decide (all flags complete)
    /// or retransmit to every neighbor whose flag is not complete. Returns
    /// true if it executed.
    pub fn action_a2<E>(&mut self, ctx: &mut Context<'_, PifMsg<B, F>, E>) -> bool
    where
        E: From<PifEvent<B, F>>,
    {
        if self.request != RequestState::In {
            return false;
        }
        let domain = self.domain;
        if self.state.all(|s| s.is_complete(domain)) {
            self.request = RequestState::Done;
            ctx.emit(PifEvent::Decided.into());
        } else {
            let targets: Vec<ProcessId> = self
                .state
                .iter()
                .filter(|(_, s)| !s.is_complete(domain))
                .map(|(q, _)| q)
                .collect();
            for q in targets {
                let msg = self.wave_message(q);
                ctx.send(q, msg);
            }
        }
        true
    }

    /// Runs the internal actions in textual order (A1 then A2). Returns
    /// true if any executed.
    pub fn activate<E>(&mut self, ctx: &mut Context<'_, PifMsg<B, F>, E>) -> bool
    where
        E: From<PifEvent<B, F>>,
    {
        let a1 = self.action_a1(ctx);
        let a2 = self.action_a2(ctx);
        a1 || a2
    }

    /// Action A3 (the receive action), with the application's `receive-brd`
    /// and `receive-fck` handlers invoked synchronously.
    pub fn handle_receive<E, A>(
        &mut self,
        from: ProcessId,
        msg: PifMsg<B, F>,
        app: &mut A,
        ctx: &mut Context<'_, PifMsg<B, F>, E>,
    ) where
        E: From<PifEvent<B, F>>,
        A: PifApp<B, F> + ?Sized,
    {
        let domain = self.domain;
        // Defensive clamp: in-domain by construction for protocol-generated
        // messages; forged initial messages are clamped (DESIGN.md D6 note).
        let sender_state = domain.clamp(msg.sender_state);
        let echoed_state = domain.clamp(msg.echoed_state);

        // receive-brd: first sight of the neighbor's flag at `max - 1`.
        if *self.neig_state.get(from) != domain.broadcast_value()
            && sender_state == domain.broadcast_value()
        {
            let feedback = app.on_broadcast(from, &msg.broadcast);
            self.f_mes.set(from, feedback);
            ctx.emit(
                PifEvent::ReceiveBrd {
                    from,
                    data: msg.broadcast.clone(),
                }
                .into(),
            );
        }

        self.neig_state.set(from, sender_state);

        // Echo check: increment `State[from]` when the neighbor echoes it.
        if *self.state.get(from) == echoed_state && !self.state.get(from).is_complete(domain) {
            let next = self.state.get(from).incremented(domain);
            self.state.set(from, next);
            if next.is_complete(domain) {
                app.on_feedback(from, &msg.feedback);
                ctx.emit(
                    PifEvent::ReceiveFck {
                        from,
                        data: msg.feedback.clone(),
                    }
                    .into(),
                );
            }
        }

        // Reply while the neighbor is still waving.
        if !sender_state.is_complete(domain) {
            let reply = self.wave_message(from);
            ctx.send(from, reply);
        }
    }

    /// True if A1 or A2 is enabled.
    pub fn has_enabled_action(&self) -> bool {
        matches!(self.request, RequestState::Wait | RequestState::In)
    }

    /// The state projection.
    pub fn snapshot(&self) -> PifState<B, F> {
        PifState {
            request: self.request,
            b_mes: self.b_mes.clone(),
            f_mes: (0..self.n)
                .map(|i| {
                    if i == self.me.index() {
                        self.b_dummy_f()
                    } else {
                        self.f_mes.get(ProcessId::new(i)).clone()
                    }
                })
                .collect(),
            state: (0..self.n)
                .map(|i| {
                    if i == self.me.index() {
                        Flag::ZERO
                    } else {
                        *self.state.get(ProcessId::new(i))
                    }
                })
                .collect(),
            neig_state: (0..self.n)
                .map(|i| {
                    if i == self.me.index() {
                        Flag::ZERO
                    } else {
                        *self.neig_state.get(ProcessId::new(i))
                    }
                })
                .collect(),
        }
    }

    fn b_dummy_f(&self) -> F {
        // The owner's own F slot is never meaningful; reuse any neighbor's
        // value (n >= 2 guarantees one exists).
        self.f_mes
            .iter()
            .next()
            .map(|(_, f)| f.clone())
            .expect("system has at least two processes")
    }

    /// Restores a state projection.
    pub fn restore(&mut self, s: PifState<B, F>) {
        assert_eq!(s.f_mes.len(), self.n, "state projection size mismatch");
        self.request = s.request;
        self.b_mes = s.b_mes;
        for i in 0..self.n {
            if i != self.me.index() {
                let q = ProcessId::new(i);
                self.f_mes.set(q, s.f_mes[i].clone());
                self.state.set(q, s.state[i]);
                self.neig_state.set(q, s.neig_state[i]);
            }
        }
    }
}

impl<B, F> PifCore<B, F>
where
    B: Clone + std::fmt::Debug + PartialEq + ArbitraryState + 'static,
    F: Clone + std::fmt::Debug + PartialEq + ArbitraryState + 'static,
{
    /// Overwrites every variable with an arbitrary in-domain value
    /// (transient fault / arbitrary initial configuration).
    pub fn corrupt(&mut self, rng: &mut SimRng) {
        self.request = RequestState::arbitrary(rng);
        self.b_mes = B::arbitrary(rng);
        let domain = self.domain;
        self.f_mes.fill_with(|_| F::arbitrary(rng));
        self.state.fill_with(|_| domain.arbitrary_flag(rng));
        self.neig_state.fill_with(|_| domain.arbitrary_flag(rng));
    }
}

/// A standalone PIF process: a [`PifCore`] plus an owned application.
///
/// The application's state is auxiliary to the protocol: [`Protocol::corrupt`]
/// corrupts the protocol variables (the app decides separately what fault
/// injection means for it), and the state projection covers the protocol
/// variables.
#[derive(Clone, Debug)]
pub struct PifProcess<B, F, A> {
    core: PifCore<B, F>,
    app: A,
}

impl<B, F, A> PifProcess<B, F, A>
where
    B: Clone + std::fmt::Debug + PartialEq + 'static,
    F: Clone + std::fmt::Debug + PartialEq + 'static,
    A: PifApp<B, F>,
{
    /// Creates a standalone PIF process.
    pub fn new(me: ProcessId, n: usize, initial_b: B, app: A) -> Self
    where
        F: Default,
    {
        PifProcess {
            core: PifCore::new(me, n, initial_b, F::default()),
            app,
        }
    }

    /// Creates a standalone PIF process with an explicit initial feedback
    /// value (for `F` without `Default`).
    pub fn with_initial_f(me: ProcessId, n: usize, initial_b: B, initial_f: F, app: A) -> Self {
        PifProcess {
            core: PifCore::new(me, n, initial_b, initial_f),
            app,
        }
    }

    /// Creates a standalone PIF process over a non-standard flag domain
    /// (the A1 minimality ablation).
    pub fn with_domain(
        me: ProcessId,
        n: usize,
        initial_b: B,
        initial_f: F,
        domain: crate::flag::FlagDomain,
        app: A,
    ) -> Self {
        PifProcess {
            core: PifCore::with_domain(me, n, initial_b, initial_f, domain),
            app,
        }
    }

    /// Creates a standalone PIF process sized for channels of capacity
    /// `capacity`: the flag domain gets `2·capacity + 3` values (the §4
    /// "arbitrary but known bounded capacity" extension — see
    /// [`crate::capacity`] for the tightness analysis). `capacity = 1`
    /// yields the paper's protocol exactly.
    pub fn for_capacity(
        me: ProcessId,
        n: usize,
        initial_b: B,
        initial_f: F,
        capacity: usize,
        app: A,
    ) -> Self {
        Self::with_domain(
            me,
            n,
            initial_b,
            initial_f,
            crate::flag::FlagDomain::for_capacity(capacity),
            app,
        )
    }

    /// The protocol core.
    pub fn core(&self) -> &PifCore<B, F> {
        &self.core
    }

    /// Exclusive access to the protocol core (tests, adversarial setup).
    pub fn core_mut(&mut self) -> &mut PifCore<B, F> {
        &mut self.core
    }

    /// The application.
    pub fn app(&self) -> &A {
        &self.app
    }

    /// Exclusive access to the application.
    pub fn app_mut(&mut self) -> &mut A {
        &mut self.app
    }

    /// Externally requests a wave broadcasting `b`; refused while a
    /// computation is pending or running.
    pub fn request_broadcast(&mut self, b: B) -> bool {
        self.core.request_broadcast(b)
    }

    /// Current request state.
    pub fn request(&self) -> RequestState {
        self.core.request()
    }
}

impl<B, F, A> Protocol for PifProcess<B, F, A>
where
    B: Clone + std::fmt::Debug + PartialEq + ArbitraryState + 'static,
    F: Clone + std::fmt::Debug + PartialEq + ArbitraryState + 'static,
    A: PifApp<B, F> + std::fmt::Debug,
{
    type Msg = PifMsg<B, F>;
    type Event = PifEvent<B, F>;
    type State = PifState<B, F>;

    fn activate(&mut self, ctx: &mut Context<'_, Self::Msg, Self::Event>) -> bool {
        self.core.activate(ctx)
    }

    fn on_receive(
        &mut self,
        from: ProcessId,
        msg: Self::Msg,
        ctx: &mut Context<'_, Self::Msg, Self::Event>,
    ) {
        self.core.handle_receive(from, msg, &mut self.app, ctx);
    }

    fn has_enabled_action(&self) -> bool {
        self.core.has_enabled_action()
    }

    fn corrupt(&mut self, rng: &mut SimRng) {
        self.core.corrupt(rng);
    }

    fn snapshot(&self) -> Self::State {
        self.core.snapshot()
    }

    fn restore(&mut self, state: Self::State) {
        self.core.restore(state);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snapstab_sim::{Capacity, Move, NetworkBuilder, RoundRobin, Runner};

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    /// Echoes a fixed feedback value; records what it saw.
    #[derive(Clone, Debug)]
    struct Echo {
        value: u32,
        brd_seen: Vec<(ProcessId, u32)>,
        fck_seen: Vec<(ProcessId, u32)>,
    }

    impl Echo {
        fn new(value: u32) -> Self {
            Echo {
                value,
                brd_seen: Vec::new(),
                fck_seen: Vec::new(),
            }
        }
    }

    impl PifApp<u32, u32> for Echo {
        fn on_broadcast(&mut self, from: ProcessId, data: &u32) -> u32 {
            self.brd_seen.push((from, *data));
            self.value
        }
        fn on_feedback(&mut self, from: ProcessId, data: &u32) {
            self.fck_seen.push((from, *data));
        }
    }

    type Proc = PifProcess<u32, u32, Echo>;

    fn system(n: usize) -> Runner<Proc, RoundRobin> {
        let processes: Vec<Proc> = (0..n)
            .map(|i| PifProcess::new(p(i), n, 0, Echo::new(100 + i as u32)))
            .collect();
        let network = NetworkBuilder::new(n)
            .capacity(Capacity::Bounded(1))
            .build();
        Runner::new(processes, network, RoundRobin::new(), 42)
    }

    #[test]
    fn initial_state_is_quiescent() {
        let r = system(3);
        assert!(r.is_quiescent());
        assert_eq!(r.process(p(0)).request(), RequestState::Done);
    }

    #[test]
    fn request_switches_wait_then_start_runs_a1_a2() {
        let mut r = system(2);
        assert!(r.process_mut(p(0)).request_broadcast(7));
        assert_eq!(r.process(p(0)).request(), RequestState::Wait);
        assert!(
            !r.process_mut(p(0)).request_broadcast(8),
            "second request refused"
        );
        r.execute_move(Move::Activate(p(0))).unwrap();
        assert_eq!(r.process(p(0)).request(), RequestState::In);
        assert_eq!(r.process(p(0)).core().state_of(p(1)), Flag::ZERO);
        // A2 ran in the same activation: one message is in flight.
        assert_eq!(r.network().messages_in_flight(), 1);
    }

    /// The clean two-process handshake, traced step by step: four
    /// round-trips, `receive-brd` at the peer on the 3-flagged message,
    /// `receive-fck` at the initiator on its echo.
    #[test]
    fn two_process_wave_handshake_exact_steps() {
        let mut r = system(2);
        r.process_mut(p(0)).request_broadcast(7);
        let deliver_01 = Move::Deliver {
            from: p(0),
            to: p(1),
        };
        let deliver_10 = Move::Deliver {
            from: p(1),
            to: p(0),
        };

        for round in 0u8..4 {
            r.execute_move(Move::Activate(p(0))).unwrap(); // A1 (first round) + A2 send
            r.execute_move(deliver_01).unwrap(); // q receives, replies
            r.execute_move(deliver_10).unwrap(); // p receives echo, increments
            assert_eq!(
                r.process(p(0)).core().state_of(p(1)),
                Flag::new(round + 1),
                "round {round}"
            );
        }
        assert_eq!(r.process(p(0)).core().state_of(p(1)), Flag::new(4));
        // Decision on the next activation.
        r.execute_move(Move::Activate(p(0))).unwrap();
        assert_eq!(r.process(p(0)).request(), RequestState::Done);

        // The peer saw exactly one receive-brd with the right data.
        assert_eq!(r.process(p(1)).app().brd_seen, vec![(p(0), 7)]);
        // The initiator saw exactly one receive-fck carrying the app value.
        assert_eq!(r.process(p(0)).app().fck_seen, vec![(p(1), 101)]);
        assert!(r.is_quiescent(), "no messages or enabled actions remain");
    }

    #[test]
    fn wave_completes_under_round_robin() {
        let mut r = system(4);
        r.process_mut(p(2)).request_broadcast(55);
        let out = r
            .run_until(100_000, |r| r.process(p(2)).request() == RequestState::Done)
            .unwrap();
        assert_eq!(out.stopped, snapstab_sim::StopCondition::Predicate);
        // Everyone but the initiator saw the broadcast exactly once.
        for i in [0usize, 1, 3] {
            assert_eq!(r.process(p(i)).app().brd_seen, vec![(p(2), 55)]);
        }
        // The initiator collected all three feedbacks.
        let mut fck = r.process(p(2)).app().fck_seen.clone();
        fck.sort();
        assert_eq!(fck, vec![(p(0), 100), (p(1), 101), (p(3), 103)]);
    }

    #[test]
    fn wave_completes_from_corrupted_configuration() {
        for seed in 0..20 {
            let mut r = system(3);
            let mut rng = SimRng::seed_from(seed);
            snapstab_sim::CorruptionPlan::full().apply(&mut r, &mut rng);
            // Wait for the (possibly corrupted-In) computation to flush out.
            let _ = r.run_until(100_000, |r| r.process(p(0)).request() == RequestState::Done);
            // Clear app observation logs so we assert on post-request events
            // only (the corrupted computation legitimately delivers garbage;
            // snap-stabilization promises nothing about it).
            for i in 0..3 {
                r.process_mut(p(i)).app_mut().brd_seen.clear();
                r.process_mut(p(i)).app_mut().fck_seen.clear();
            }
            r.process_mut(p(0)).core_mut().force_request(9);
            let out = r
                .run_until(200_000, |r| r.process(p(0)).request() == RequestState::Done)
                .unwrap();
            assert_eq!(
                out.stopped,
                snapstab_sim::StopCondition::Predicate,
                "seed {seed}: wave must terminate"
            );
            // Correctness: both peers got the broadcast with the right data
            // after the genuine start.
            for i in [1usize, 2] {
                assert!(
                    r.process(p(i)).app().brd_seen.contains(&(p(0), 9)),
                    "seed {seed}: P{i} must receive the genuine broadcast"
                );
            }
            // Decision: the last feedback events at p are the app values.
            for (from, val) in r.process(p(0)).app().fck_seen.iter() {
                let expected = 100 + from.index() as u32;
                assert_eq!(*val, expected, "seed {seed}: feedback from {from}");
            }
        }
    }

    #[test]
    fn non_started_corrupted_computation_terminates() {
        // Request = In with arbitrary flags, nothing in flight: A2 keeps
        // retransmitting until the handshake completes, then decides.
        let mut r = system(2);
        let mut rng = SimRng::seed_from(3);
        r.process_mut(p(0)).core_mut().corrupt(&mut rng);
        // Force the interesting case.
        let snap = r.process(p(0)).core().snapshot();
        let mut s = snap.clone();
        s.request = RequestState::In;
        s.state = vec![Flag::ZERO, Flag::new(2)];
        r.process_mut(p(0)).core_mut().restore(s);
        let out = r
            .run_until(100_000, |r| r.process(p(0)).request() == RequestState::Done)
            .unwrap();
        assert_eq!(out.stopped, snapstab_sim::StopCondition::Predicate);
    }

    #[test]
    fn stale_messages_cannot_complete_wave_alone() {
        // Pre-load the channel q -> p with one forged echo. After p starts,
        // the forged message can advance State once, but completion still
        // requires genuine round trips, so the data delivered by
        // receive-fck is the peer's app value, not the forged one.
        let mut r = system(2);
        r.network_mut()
            .channel_mut(p(1), p(0))
            .unwrap()
            .preload([PifMsg {
                broadcast: 666,
                feedback: 666,
                sender_state: Flag::new(4),
                echoed_state: Flag::new(0),
            }]);
        r.process_mut(p(0)).request_broadcast(7);
        r.run_until(100_000, |r| r.process(p(0)).request() == RequestState::Done)
            .unwrap();
        assert_eq!(r.process(p(0)).app().fck_seen, vec![(p(1), 101)]);
    }

    #[test]
    fn receive_brd_fires_once_per_wave() {
        let mut r = system(2);
        r.process_mut(p(0)).request_broadcast(1);
        r.run_until(100_000, |r| r.process(p(0)).request() == RequestState::Done)
            .unwrap();
        assert_eq!(r.process(p(1)).app().brd_seen.len(), 1);
        // Second wave: exactly one more.
        r.process_mut(p(0)).request_broadcast(2);
        r.run_until(100_000, |r| r.process(p(0)).request() == RequestState::Done)
            .unwrap();
        assert_eq!(r.process(p(1)).app().brd_seen, vec![(p(0), 1), (p(0), 2)]);
    }

    #[test]
    fn quiescence_after_wave() {
        // "after receiving a message with the value pState = 3, p increments
        // State to 4 and stops sending messages until the next request" —
        // if requests stop, the system eventually contains no message.
        let mut r = system(3);
        r.process_mut(p(0)).request_broadcast(3);
        let out = r.run_until_quiescent(100_000).unwrap();
        assert!(out.is_quiescent());
        assert_eq!(r.network().messages_in_flight(), 0);
    }

    #[test]
    fn events_match_app_observations() {
        let mut r = system(2);
        r.process_mut(p(0)).request_broadcast(7);
        r.run_until_quiescent(100_000).unwrap();
        let trace = r.trace();
        let started: Vec<_> = trace
            .protocol_events_of(p(0))
            .filter(|(_, e)| matches!(e, PifEvent::Started))
            .collect();
        assert_eq!(started.len(), 1);
        let decided: Vec<_> = trace
            .protocol_events_of(p(0))
            .filter(|(_, e)| matches!(e, PifEvent::Decided))
            .collect();
        assert_eq!(decided.len(), 1);
        assert!(started[0].0 < decided[0].0, "start precedes decision");
        let fck: Vec<_> = trace
            .protocol_events_of(p(0))
            .filter(|(_, e)| matches!(e, PifEvent::ReceiveFck { .. }))
            .collect();
        assert_eq!(fck.len(), 1);
    }

    #[test]
    fn snapshot_restore_roundtrip() {
        let mut r = system(3);
        let mut rng = SimRng::seed_from(17);
        r.process_mut(p(1)).core_mut().corrupt(&mut rng);
        let snap = r.process(p(1)).core().snapshot();
        r.process_mut(p(1)).core_mut().corrupt(&mut rng);
        r.process_mut(p(1)).core_mut().restore(snap.clone());
        assert_eq!(r.process(p(1)).core().snapshot(), snap);
    }

    #[test]
    fn corrupt_keeps_flags_in_domain() {
        let mut r = system(3);
        let mut rng = SimRng::seed_from(23);
        for _ in 0..50 {
            r.process_mut(p(0)).core_mut().corrupt(&mut rng);
            for q in [p(1), p(2)] {
                assert!(r.process(p(0)).core().state_of(q).value() <= 4);
                assert!(r.process(p(0)).core().neig_state_of(q).value() <= 4);
            }
        }
    }

    #[test]
    fn arbitrary_message_is_in_domain() {
        let mut rng = SimRng::seed_from(0);
        for _ in 0..100 {
            let m: PifMsg<u32, u32> = PifMsg::arbitrary(&mut rng);
            assert!(m.sender_state.value() <= 4);
            assert!(m.echoed_state.value() <= 4);
        }
    }

    #[test]
    fn forged_out_of_domain_flags_are_clamped() {
        let mut r = system(2);
        r.network_mut()
            .channel_mut(p(1), p(0))
            .unwrap()
            .preload([PifMsg {
                broadcast: 0,
                feedback: 0,
                sender_state: Flag::new(200),
                echoed_state: Flag::new(200),
            }]);
        r.execute_move(Move::Deliver {
            from: p(1),
            to: p(0),
        })
        .unwrap();
        assert!(r.process(p(0)).core().neig_state_of(p(1)).value() <= 4);
    }

    #[test]
    fn concurrent_waves_both_complete() {
        let mut r = system(3);
        r.process_mut(p(0)).request_broadcast(10);
        r.process_mut(p(1)).request_broadcast(11);
        r.run_until(300_000, |r| {
            r.process(p(0)).request() == RequestState::Done
                && r.process(p(1)).request() == RequestState::Done
        })
        .unwrap();
        assert!(r.process(p(1)).app().brd_seen.contains(&(p(0), 10)));
        assert!(r.process(p(0)).app().brd_seen.contains(&(p(1), 11)));
        assert!(r.process(p(2)).app().brd_seen.contains(&(p(0), 10)));
        assert!(r.process(p(2)).app().brd_seen.contains(&(p(1), 11)));
    }
}
