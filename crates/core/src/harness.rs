//! Convenience constructors for simulation experiments.
//!
//! These helpers standardize the setup used across the examples, tests and
//! benches: a fully-connected single-message-capacity network, a fair
//! scheduler, and seeded corruption into an arbitrary initial
//! configuration.

use snapstab_sim::{
    ArbitraryState, Capacity, CorruptionPlan, NetworkBuilder, ProcessId, Protocol, RandomScheduler,
    RoundRobin, Runner, SimError, SimRng,
};

use crate::idl::IdlProcess;
use crate::me::MeProcess;
use crate::pif::{PifApp, PifProcess};
use crate::request::RequestState;

/// Protocols that expose the paper's three-valued request interface.
pub trait HasRequest {
    /// The protocol's current request state.
    fn request_state(&self) -> RequestState;
}

impl<B, F, A> HasRequest for PifProcess<B, F, A>
where
    B: Clone + std::fmt::Debug + PartialEq + 'static,
    F: Clone + std::fmt::Debug + PartialEq + 'static,
    A: PifApp<B, F>,
{
    fn request_state(&self) -> RequestState {
        self.request()
    }
}

impl HasRequest for IdlProcess {
    fn request_state(&self) -> RequestState {
        self.request()
    }
}

impl HasRequest for MeProcess {
    fn request_state(&self) -> RequestState {
        self.request()
    }
}

/// Builds a runner over a fully-connected network with the paper's §4
/// single-message channel capacity and a deterministic round-robin
/// scheduler. `make(i)` constructs process `i`.
pub fn pif_system<P: Protocol>(
    n: usize,
    make: impl FnMut(usize) -> P,
    seed: u64,
) -> Runner<P, RoundRobin> {
    system(n, Capacity::Bounded(1), make, seed)
}

/// Builds a runner with an explicit channel capacity (round-robin
/// scheduler).
pub fn system<P: Protocol>(
    n: usize,
    capacity: Capacity,
    mut make: impl FnMut(usize) -> P,
    seed: u64,
) -> Runner<P, RoundRobin> {
    let processes = (0..n).map(&mut make).collect();
    let network = NetworkBuilder::new(n).capacity(capacity).build();
    Runner::new(processes, network, RoundRobin::new(), seed)
}

/// Builds a runner with a uniformly random (fair w.p. 1) scheduler.
pub fn random_system<P: Protocol>(
    n: usize,
    capacity: Capacity,
    mut make: impl FnMut(usize) -> P,
    seed: u64,
) -> Runner<P, RandomScheduler> {
    let processes = (0..n).map(&mut make).collect();
    let network = NetworkBuilder::new(n).capacity(capacity).build();
    Runner::new(processes, network, RandomScheduler::new(), seed)
}

/// Corrupts every process's variables (channels untouched) with a seeded
/// draw — a transient fault burst hitting memories only.
pub fn corrupt_processes<P: Protocol, S: snapstab_sim::Scheduler>(
    runner: &mut Runner<P, S>,
    seed: u64,
) {
    let mut rng = SimRng::seed_from(seed);
    runner.corrupt_all_processes(&mut rng);
}

/// Draws a full arbitrary initial configuration: every variable of every
/// process and every channel's contents (capacity-respecting).
pub fn corrupt_everything<P, S>(runner: &mut Runner<P, S>, seed: u64)
where
    P: Protocol,
    P::Msg: ArbitraryState,
    S: snapstab_sim::Scheduler,
{
    let mut rng = SimRng::seed_from(seed);
    CorruptionPlan::full().apply(runner, &mut rng);
}

/// Runs until process `p`'s request state is `Done` (the decision /
/// service point).
///
/// # Errors
///
/// Returns [`SimError::StepBudgetExhausted`] if the decision does not
/// happen within `max_steps`.
pub fn run_to_decision<P, S>(
    runner: &mut Runner<P, S>,
    p: ProcessId,
    max_steps: u64,
) -> Result<u64, SimError>
where
    P: Protocol + HasRequest,
    S: snapstab_sim::Scheduler,
{
    let out = runner.run_until(max_steps, |r| {
        r.process(p).request_state() == RequestState::Done
    })?;
    if runner.process(p).request_state() == RequestState::Done {
        Ok(out.steps)
    } else {
        Err(SimError::StepBudgetExhausted { budget: max_steps })
    }
}

/// Runs until every process's request state is `Done`.
///
/// # Errors
///
/// Returns [`SimError::StepBudgetExhausted`] on budget exhaustion.
pub fn run_to_all_decisions<P, S>(
    runner: &mut Runner<P, S>,
    max_steps: u64,
) -> Result<u64, SimError>
where
    P: Protocol + HasRequest,
    S: snapstab_sim::Scheduler,
{
    let n = runner.n();
    let out = runner.run_until(max_steps, |r| {
        (0..n).all(|i| r.process(ProcessId::new(i)).request_state() == RequestState::Done)
    })?;
    let all_done =
        (0..n).all(|i| runner.process(ProcessId::new(i)).request_state() == RequestState::Done);
    if all_done {
        Ok(out.steps)
    } else {
        Err(SimError::StepBudgetExhausted { budget: max_steps })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::idl::IdlProcess;

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn idl_roundtrip_via_harness() {
        let mut r = pif_system(3, |i| IdlProcess::new(p(i), 3, 10 + i as u64), 1);
        corrupt_everything(&mut r, 2);
        // Drain corrupted computations, then request.
        let _ = r.run_until(100_000, |r| {
            (0..3).all(|i| r.process(p(i)).request_state() != RequestState::Wait)
        });
        r.process_mut(p(0)).request_learning();
        // A corrupted Request may be In; wait for Done first then re-request.
        if r.process(p(0)).request_state() != RequestState::Wait {
            run_to_decision(&mut r, p(0), 200_000).unwrap();
            r.process_mut(p(0)).request_learning();
        }
        run_to_decision(&mut r, p(0), 200_000).unwrap();
        assert_eq!(r.process(p(0)).idl().min_id(), 10);
    }

    #[test]
    fn run_to_all_decisions_works() {
        let mut r = random_system(
            3,
            Capacity::Bounded(1),
            |i| IdlProcess::new(p(i), 3, 10 + i as u64),
            3,
        );
        for i in 0..3 {
            r.process_mut(p(i)).request_learning();
        }
        run_to_all_decisions(&mut r, 500_000).unwrap();
        for i in 0..3 {
            assert_eq!(r.process(p(i)).idl().min_id(), 10);
        }
    }

    #[test]
    fn run_to_decision_budget_error() {
        let mut r = pif_system(2, |i| IdlProcess::new(p(i), 2, i as u64), 0);
        r.process_mut(p(0)).request_learning();
        let err = run_to_decision(&mut r, p(0), 2).unwrap_err();
        assert!(matches!(err, SimError::StepBudgetExhausted { .. }));
    }
}
