//! Snap-stabilizing end-to-end message forwarding — the communication
//! *application* the snap-stabilization literature builds on top of this
//! paper (Cournier–Dubois–Villain's *Snap-Stabilizing Linear Message
//! Forwarding* and the tree-topology follow-up, both in PAPERS.md).
//!
//! A client at process `src` injects a [`Payload`] addressed to `dst`;
//! the protocol routes it hop by hop along the process line (`i → i+1`
//! toward larger indices, `i → i-1` toward smaller) through bounded
//! per-process message buffers, and must deliver it to `dst` **exactly
//! once** — no duplication, no loss of accepted payloads — starting from
//! *any* initial configuration: arbitrary handshake flags, arbitrary
//! channel contents, and buffers adversarially pre-filled with stale
//! entries. That end-to-end promise is executable Specification 4
//! ([`crate::spec::analyze_forwarding_trace`]).
//!
//! ## Why each hop is a PIF handshake
//!
//! The dangerous moves in message forwarding are the *copy* (receiver
//! takes the payload into its buffer) and the *erase* (sender frees its
//! buffer slot). A stale acknowledgment must not trigger an erase (that
//! loses the payload) and a replayed transfer must not trigger a second
//! copy (that duplicates it). Both are exactly the problem Algorithm 1
//! solves per neighbor: this module runs the paper's five-valued flag
//! handshake (generalized to `2c + 3` values for capacity-`c` channels,
//! [`crate::flag::FlagDomain::for_capacity`]) **per directed hop**:
//!
//! * the receiver copies the payload at the `receive-brd` edge — the
//!   first sight of the sender's flag at the broadcast value — and
//!   stores its acknowledgment ([`HopAck`]) in the same atomic action,
//!   exactly as `PifCore` stores `F-Mes[q]` (the Lemma 5 argument);
//! * the sender erases only at the `receive-fck` edge — the flag
//!   completing its climb — and only if the acknowledgment names the
//!   payload being transferred; any mismatch (stale ack, receiver-full
//!   refusal) restarts the handshake instead.
//!
//! Theorem 2's counting argument then guarantees per-hop exactly-once:
//! stale artifacts can drive at most `2c + 1` of the `2c + 2` required
//! flag increments, so the completing acknowledgment causally depends on
//! the started transfer.
//!
//! ## Why the bounded buffers cannot deadlock
//!
//! Each process keeps two direction *lanes* of capacity
//! [`ForwardConfig::buffer_cap`]: the up lane holds payloads routed
//! toward larger indices, the down lane toward smaller. Traffic never
//! changes direction (a payload accepted at `i` with `dst > i` rides the
//! up lane, and only entries whose destination lies strictly beyond the
//! next hop are ever re-buffered), so the buffer-wait graph is acyclic:
//! the up lane at `n-2` drains unconditionally (process `n-1` *delivers*
//! — delivery consumes no buffer slot), which frees the up lane at
//! `n-3`, and so on by induction; symmetrically for the down lanes.
//! The direction domain is enforced at **both** ends of a hop: a
//! corrupted lane entry violating its lane's domain (`dst ≤ me` in an
//! up lane) is dropped at transfer-start, and a *wrong-way* offer — a
//! stale entry planted in a neighbor's transfer slot that would be
//! routed straight back where it came from — is accepted-and-flushed at
//! the receiver instead of re-buffered. Without the second check a
//! single misdirected slot entry can knit the two lane systems into a
//! buffer-wait cycle and deadlock the line (caught by the live bench at
//! scale; `wrong_way_slot_garbage_cannot_deadlock_the_line` is the
//! regression).
//!
//! ## Stale entries
//!
//! Specification 4's delivery guarantee attaches at the
//! [`ForwardEvent::Injected`] event — the forwarding analogue of the
//! paper's footnote-1 genuine requests. An injected payload's hop
//! handshakes always *start from flag 0* (injection, transfer-start and
//! every restart reset the flag), which is the precondition of
//! Theorem 2's counting argument. Entries already sitting in buffers,
//! transfer slots or channels at start carry no such guarantee: they
//! are flushed toward their destinations (or dropped when
//! out-of-domain), and a transfer *slot* corrupted next to a mid-climb
//! flag can even complete its handshake on stale increments, restart,
//! and flush its stale payload twice — the checker reports such cases
//! (`stale_duplicates`) without failing the verdict. The adversarial
//! generators here stamp stale entries with [`STALE_ID_BIT`] so checker
//! and benchmarks can always tell guaranteed traffic from flushed
//! garbage (the forwarding papers' copy-counting reading: one stale
//! buffer cell = one message copy).

use std::collections::VecDeque;

use snapstab_sim::{
    ArbitraryState, Capacity, Context, LossModel, NetworkBuilder, ProcessId, Protocol,
    RandomScheduler, Runner, SimRng, Trace,
};

use crate::flag::{Flag, FlagDomain};

/// Ids with this bit set mark *stale* payloads planted by the
/// adversarial generators ([`ForwardProcess::prefill_stale`],
/// [`Payload::arbitrary`]); genuine injections ([`payload_id`]) keep it
/// clear, so spurious deliveries of flushed garbage are distinguishable
/// from guaranteed traffic.
pub const STALE_ID_BIT: u64 = 1 << 63;

/// The globally unique id of the `k`-th payload injected at process
/// `src` ([`STALE_ID_BIT`] clear).
pub fn payload_id(src: usize, k: u64) -> u64 {
    assert!(k < (1 << 32), "per-process injection counter overflow");
    ((src as u64) << 32) | k
}

/// One client message in flight: source, destination, unique id, data.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Payload {
    /// Injecting process index.
    pub src: u16,
    /// Destination process index.
    pub dst: u16,
    /// Globally unique id ([`payload_id`] for genuine injections; the
    /// [`STALE_ID_BIT`] space for adversarial stale entries).
    pub id: u64,
    /// Opaque client data.
    pub data: u64,
}

impl ArbitraryState for Payload {
    /// Arbitrary *stale* payload: endpoints drawn from a small fixed
    /// range (`ArbitraryState` cannot see the system size; for `n < 12`
    /// this yields a mix of in- and out-of-range destinations, and
    /// [`ForwardProcess::prefill_stale`] — which does know `n` — forces
    /// out-of-range coverage at every size) and an id in the
    /// [`STALE_ID_BIT`] space — distinct stale copies carry distinct
    /// ids with overwhelming probability, matching the forwarding
    /// papers' one-copy-per-cell message model.
    fn arbitrary(rng: &mut SimRng) -> Self {
        Payload {
            src: rng.gen_range(0..12) as u16,
            dst: rng.gen_range(0..12) as u16,
            id: STALE_ID_BIT | rng.gen_u64(),
            data: rng.gen_u64(),
        }
    }
}

/// The receiver-side acknowledgment of a hop transfer, stored per
/// incoming hop and echoed in every outgoing message on that hop — the
/// forwarding analogue of `F-Mes[q]`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum HopAck {
    /// The named payload was copied (buffered or delivered); the sender
    /// may erase it.
    Accepted(u64),
    /// The receiver's lane was full (or the offer carried no payload);
    /// the sender must keep the payload and retry.
    Refused,
}

impl ArbitraryState for HopAck {
    fn arbitrary(rng: &mut SimRng) -> Self {
        if rng.gen_bool(0.5) {
            HopAck::Accepted(rng.gen_u64())
        } else {
            HopAck::Refused
        }
    }
}

/// The single message type of the forwarding protocol, one per directed
/// hop — structurally a [`crate::pif::PifMsg`] whose broadcast is the
/// offered payload and whose feedback is the hop acknowledgment.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ForwardMsg {
    /// The payload the sender is currently transferring on this hop
    /// (`B-Mes`), if any.
    pub payload: Option<Payload>,
    /// The sender's acknowledgment for the *reverse* transfer on this
    /// neighbor pair (`F-Mes[receiver]`).
    pub ack: HopAck,
    /// The sender's handshake flag toward the receiver
    /// (`State_sender[receiver]`).
    pub sender_state: Flag,
    /// The receiver's flag as last seen by the sender
    /// (`NeigState_sender[receiver]`), the echo driving increments.
    pub echoed_state: Flag,
}

impl ArbitraryState for ForwardMsg {
    fn arbitrary(rng: &mut SimRng) -> Self {
        ForwardMsg {
            payload: rng.gen_bool(0.7).then(|| Payload::arbitrary(rng)),
            ack: HopAck::arbitrary(rng),
            sender_state: Flag::arbitrary(rng),
            echoed_state: Flag::arbitrary(rng),
        }
    }
}

/// Protocol-level events of a forwarding process, consumed by the
/// Specification 4 checker ([`crate::spec::analyze_forwarding_trace`]).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ForwardEvent {
    /// A client payload entered the system at its source — the point
    /// where Specification 4's exactly-once guarantee attaches.
    Injected {
        /// The injected payload.
        payload: Payload,
    },
    /// A payload was copied into this process's lane from a neighbor
    /// (one relay hop).
    Accepted {
        /// The relayed payload.
        payload: Payload,
        /// The offering neighbor.
        from: ProcessId,
    },
    /// The neighbor confirmed the copy; this process erased its slot.
    Forwarded {
        /// The transferred payload.
        payload: Payload,
        /// The accepting neighbor.
        to: ProcessId,
    },
    /// A payload reached its destination — Specification 4's delivery
    /// event.
    Delivered {
        /// The delivered payload.
        payload: Payload,
        /// The last-hop neighbor.
        from: ProcessId,
    },
    /// A stale entry with an out-of-domain destination was flushed.
    DroppedInvalid {
        /// The dropped entry.
        payload: Payload,
    },
}

/// Construction-time configuration of a forwarding process.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ForwardConfig {
    /// Capacity of each direction lane (bounded per-process buffering).
    pub buffer_cap: usize,
    /// Flag domain of the per-hop handshakes. Channels of capacity `c`
    /// need [`FlagDomain::for_capacity`]`(c)`; the default is the
    /// paper's five values (single-message channels).
    pub flag_domain: FlagDomain,
}

impl Default for ForwardConfig {
    fn default() -> Self {
        ForwardConfig {
            buffer_cap: 4,
            flag_domain: FlagDomain::PAPER,
        }
    }
}

/// Instrumentation counters; not protocol state.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct ForwardCounters {
    /// Client payloads injected (the [`ForwardEvent::Injected`] count).
    pub injected: u64,
    /// Payloads copied in from a neighbor (relay hops).
    pub accepted: u64,
    /// Transfers confirmed and erased (per-hop completions).
    pub forwarded: u64,
    /// Payloads delivered at this destination.
    pub delivered: u64,
    /// Offers refused because the lane was full.
    pub refused_full: u64,
    /// Handshakes restarted (refused or stale acknowledgment).
    pub restarts: u64,
    /// Out-of-domain stale entries flushed.
    pub dropped_invalid: u64,
}

/// One directed hop's handshake state (sender role toward the neighbor,
/// plus the acknowledgment owed for the reverse direction).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
struct Hop {
    /// The payload being transferred to this neighbor, if any.
    outgoing: Option<Payload>,
    /// `State[q]` — this process's handshake flag toward the neighbor.
    state: Flag,
    /// `NeigState[q]` — the neighbor's flag as last received.
    neig_state: Flag,
    /// The acknowledgment for the neighbor's transfers toward us,
    /// computed at our `receive-brd` edge and echoed in every message.
    ack: HopAck,
}

impl Hop {
    fn idle(domain: FlagDomain) -> Self {
        Hop {
            outgoing: None,
            state: domain.max(),
            neig_state: domain.max(),
            ack: HopAck::Refused,
        }
    }
}

/// The two routing directions of the process line.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Direction {
    /// Toward larger indices (`me + 1`).
    Up,
    /// Toward smaller indices (`me - 1`).
    Down,
}

impl Direction {
    const BOTH: [Direction; 2] = [Direction::Up, Direction::Down];

    fn index(self) -> usize {
        match self {
            Direction::Up => 0,
            Direction::Down => 1,
        }
    }
}

/// One hop's state projection: `(outgoing, state, neig_state, ack)`.
pub type HopSnapshot = (Option<Payload>, Flag, Flag, HopAck);

/// The state projection of a forwarding process (per-hop flags and
/// slots, lane contents, the pending client request).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ForwardState {
    /// Pending client injection (the user-side request slot).
    pub pending: Option<Payload>,
    /// Lane contents, `[up, down]`, front first.
    pub lanes: [Vec<Payload>; 2],
    /// Per-direction hop state `[up, down]`; `None` where the line
    /// ends.
    pub hops: [Option<HopSnapshot>; 2],
}

/// One process of the snap-stabilizing forwarding protocol.
///
/// See the module docs for the mechanism; [`run_sim_forwarding`] for the
/// simulator harness and `snapstab_runtime::run_forwarding_service` for
/// the live front-end.
#[derive(Clone, Debug)]
pub struct ForwardProcess {
    me: ProcessId,
    n: usize,
    config: ForwardConfig,
    /// The client's one-slot injection request (Hypothesis 1 discipline:
    /// at most one outstanding injection per process).
    pending: Option<Payload>,
    /// Direction lanes `[up, down]`, bounded by `config.buffer_cap`.
    lanes: [VecDeque<Payload>; 2],
    /// Hop handshakes `[up, down]`; `None` where the line ends.
    hops: [Option<Hop>; 2],
    /// Delivered payloads awaiting collection by the application — an
    /// inbox, not protocol state.
    delivered: Vec<Payload>,
    counters: ForwardCounters,
}

impl ForwardProcess {
    /// Creates a correctly-initialized (quiescent) process.
    ///
    /// # Panics
    ///
    /// Panics if the system has fewer than two processes or the buffer
    /// capacity is zero.
    pub fn new(me: ProcessId, n: usize, config: ForwardConfig) -> Self {
        assert!(n >= 2, "a forwarding line needs at least two processes");
        assert!(config.buffer_cap >= 1, "lanes need at least one slot");
        let domain = config.flag_domain;
        ForwardProcess {
            me,
            n,
            config,
            pending: None,
            lanes: [VecDeque::new(), VecDeque::new()],
            hops: [
                (me.index() + 1 < n).then(|| Hop::idle(domain)),
                (me.index() > 0).then(|| Hop::idle(domain)),
            ],
            delivered: Vec::new(),
            counters: ForwardCounters::default(),
        }
    }

    /// This process's id.
    pub fn me(&self) -> ProcessId {
        self.me
    }

    /// System size.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The configuration.
    pub fn config(&self) -> ForwardConfig {
        self.config
    }

    /// Instrumentation counters.
    pub fn counters(&self) -> ForwardCounters {
        self.counters
    }

    /// True if a new client injection would be accepted now (no pending
    /// injection — the Hypothesis 1 user discipline).
    pub fn can_inject(&self) -> bool {
        self.pending.is_none()
    }

    /// Externally requests the injection of `payload`. Refused (returning
    /// `false`, payload untouched) while a previous injection is pending
    /// or the destination is not another process of this system.
    pub fn request_send(&mut self, payload: Payload) -> bool {
        let dst = payload.dst as usize;
        if self.pending.is_some() || dst == self.me.index() || dst >= self.n {
            return false;
        }
        self.pending = Some(payload);
        true
    }

    /// Drains the inbox of payloads delivered at this process.
    pub fn take_delivered(&mut self) -> Vec<Payload> {
        std::mem::take(&mut self.delivered)
    }

    /// Number of payloads buffered in the direction lanes (stale entries
    /// included).
    pub fn buffered(&self) -> usize {
        self.lanes.iter().map(VecDeque::len).sum()
    }

    /// Adversarially pre-fills both lanes (and hop slots) with distinct
    /// stale entries — the arbitrary-initial-buffer configuration
    /// Specification 4 is judged against. About half the entries carry
    /// in-domain destinations (they will be flushed end-to-end as
    /// spurious deliveries), the rest are out-of-domain garbage the
    /// protocol must drop without wedging.
    pub fn prefill_stale(&mut self, rng: &mut SimRng) {
        // `Payload::arbitrary` draws endpoints from a fixed small range
        // (it cannot see `n`); re-aiming a quarter of the entries just
        // past the line keeps the out-of-domain drop path exercised at
        // every system size.
        let n = self.n;
        let stale = |rng: &mut SimRng| {
            let mut m = Payload::arbitrary(rng);
            if rng.gen_bool(0.25) {
                m.dst = (n + rng.gen_range(0..4)) as u16;
            }
            m
        };
        for lane in &mut self.lanes {
            lane.clear();
            for _ in 0..rng.gen_range(0..self.config.buffer_cap + 1) {
                lane.push_back(stale(rng));
            }
        }
        for hop in self.hops.iter_mut().flatten() {
            if rng.gen_bool(0.5) {
                hop.outgoing = Some(stale(rng));
            }
        }
    }

    /// The direction that routes `dst` from this process, or `None` for
    /// an out-of-domain destination (`dst == me` included: a payload for
    /// `me` is delivered, never routed).
    fn direction_of(&self, dst: usize) -> Option<Direction> {
        if dst >= self.n || dst == self.me.index() {
            None
        } else if dst > self.me.index() {
            Some(Direction::Up)
        } else {
            Some(Direction::Down)
        }
    }

    fn neighbor(&self, d: Direction) -> ProcessId {
        match d {
            Direction::Up => ProcessId::new(self.me.index() + 1),
            Direction::Down => ProcessId::new(self.me.index() - 1),
        }
    }

    /// The direction `from` sits in, if `from` is a line neighbor.
    fn direction_from(&self, from: ProcessId) -> Option<Direction> {
        if from.index() == self.me.index() + 1 {
            Some(Direction::Up)
        } else if self.me.index() > 0 && from.index() == self.me.index() - 1 {
            Some(Direction::Down)
        } else {
            None
        }
    }

    /// The current wire message on hop `d` (everything this process has
    /// to say to that neighbor, like `PifCore::wave_message`).
    fn hop_message(&self, d: Direction) -> ForwardMsg {
        let hop = self.hops[d.index()].as_ref().expect("hop exists");
        ForwardMsg {
            payload: hop.outgoing,
            ack: hop.ack,
            sender_state: hop.state,
            echoed_state: hop.neig_state,
        }
    }

    /// The injection action: a pending client payload enters its
    /// direction lane when a slot is free.
    fn action_inject(&mut self, ctx: &mut Context<'_, ForwardMsg, ForwardEvent>) -> bool {
        let Some(payload) = self.pending else {
            return false;
        };
        let Some(d) = self.direction_of(payload.dst as usize) else {
            // Unreachable through `request_send`; a corrupted pending
            // slot is flushed like any other stale entry.
            self.pending = None;
            self.counters.dropped_invalid += 1;
            ctx.emit(ForwardEvent::DroppedInvalid { payload });
            return true;
        };
        if self.lanes[d.index()].len() >= self.config.buffer_cap {
            return false;
        }
        self.lanes[d.index()].push_back(payload);
        self.pending = None;
        self.counters.injected += 1;
        ctx.emit(ForwardEvent::Injected { payload });
        true
    }

    /// The transfer-start action for direction `d`: pop the lane front
    /// into the free hop slot (dropping out-of-domain stale entries) and
    /// reset the handshake.
    fn action_start_transfer(
        &mut self,
        d: Direction,
        ctx: &mut Context<'_, ForwardMsg, ForwardEvent>,
    ) -> bool {
        let has_hop = self.hops[d.index()].is_some();
        let mut acted = false;
        // A lane on a line end (or holding wrong-direction garbage) can
        // only contain stale entries; flush them so the deadlock-freedom
        // induction never waits on garbage.
        while let Some(&front) = self.lanes[d.index()].front() {
            let valid = self.direction_of(front.dst as usize) == Some(d) && has_hop;
            if valid {
                break;
            }
            self.lanes[d.index()].pop_front();
            self.counters.dropped_invalid += 1;
            ctx.emit(ForwardEvent::DroppedInvalid { payload: front });
            acted = true;
        }
        let Some(hop) = self.hops[d.index()].as_mut() else {
            return acted;
        };
        if hop.outgoing.is_none() {
            if let Some(payload) = self.lanes[d.index()].pop_front() {
                hop.outgoing = Some(payload);
                hop.state = Flag::ZERO;
                acted = true;
            }
        }
        acted
    }

    /// The retransmission action for direction `d` (Algorithm 1's A2
    /// shape): while a transfer is in progress, restart a
    /// corruption-completed handshake and offer the payload again.
    fn action_retransmit(
        &mut self,
        d: Direction,
        ctx: &mut Context<'_, ForwardMsg, ForwardEvent>,
    ) -> bool {
        let domain = self.config.flag_domain;
        let Some(hop) = self.hops[d.index()].as_mut() else {
            return false;
        };
        if hop.outgoing.is_none() {
            return false;
        }
        if hop.state.is_complete(domain) {
            // Only an arbitrary initial configuration can park a loaded
            // slot on a complete flag; restart the handshake.
            hop.state = Flag::ZERO;
            self.counters.restarts += 1;
        }
        let to = self.neighbor(d);
        let msg = self.hop_message(d);
        ctx.send(to, msg);
        true
    }

    /// The receive action for a message arriving on hop `d` — the
    /// pairwise Algorithm 1 A3, with copy-at-brd and erase-at-fck.
    fn handle_hop_receive(
        &mut self,
        d: Direction,
        from: ProcessId,
        msg: ForwardMsg,
        ctx: &mut Context<'_, ForwardMsg, ForwardEvent>,
    ) {
        let domain = self.config.flag_domain;
        let cap = self.config.buffer_cap;
        let me = self.me.index();
        // Defensive clamp, as in `PifCore::handle_receive`: forged
        // initial messages may carry out-of-domain flags.
        let sender_state = domain.clamp(msg.sender_state);
        let echoed_state = domain.clamp(msg.echoed_state);

        // receive-brd: first sight of the neighbor's flag at the
        // broadcast value — the unique copy point of this transfer. The
        // acknowledgment is computed and stored in the same atomic
        // action (the Lemma 5 discipline), so the reply sent below
        // already carries it.
        let brd = {
            let hop = self.hops[d.index()].as_ref().expect("receiving hop");
            hop.neig_state != domain.broadcast_value() && sender_state == domain.broadcast_value()
        };
        if brd {
            let ack = match msg.payload {
                None => HopAck::Refused,
                Some(payload) if payload.dst as usize == me => {
                    self.delivered.push(payload);
                    self.counters.delivered += 1;
                    ctx.emit(ForwardEvent::Delivered { payload, from });
                    HopAck::Accepted(payload.id)
                }
                Some(payload) => match self.direction_of(payload.dst as usize) {
                    None => {
                        // Out-of-domain garbage: accept (so the sender
                        // erases it) and flush.
                        self.counters.dropped_invalid += 1;
                        ctx.emit(ForwardEvent::DroppedInvalid { payload });
                        HopAck::Accepted(payload.id)
                    }
                    // Wrong-way garbage: the payload would be routed
                    // straight back where it came from. Only a stale
                    // entry planted in the neighbor's transfer slot can
                    // travel against its direction (genuine traffic is
                    // direction-checked at injection and transfer-start),
                    // and re-buffering it would let buffer-wait cycles
                    // form across the two lane systems — the one way the
                    // acyclicity argument can break. Accept (freeing the
                    // sender's slot) and flush.
                    Some(route) if route == d => {
                        self.counters.dropped_invalid += 1;
                        ctx.emit(ForwardEvent::DroppedInvalid { payload });
                        HopAck::Accepted(payload.id)
                    }
                    Some(route) => {
                        if self.lanes[route.index()].len() < cap {
                            self.lanes[route.index()].push_back(payload);
                            self.counters.accepted += 1;
                            ctx.emit(ForwardEvent::Accepted { payload, from });
                            HopAck::Accepted(payload.id)
                        } else {
                            self.counters.refused_full += 1;
                            HopAck::Refused
                        }
                    }
                },
            };
            self.hops[d.index()].as_mut().expect("receiving hop").ack = ack;
        }

        let hop = self.hops[d.index()].as_mut().expect("receiving hop");
        hop.neig_state = sender_state;

        // Echo check: increment `State[q]` when the neighbor echoes it;
        // at completion, erase-or-restart — the unique erase point.
        if hop.state == echoed_state && !hop.state.is_complete(domain) {
            hop.state = hop.state.incremented(domain);
            if hop.state.is_complete(domain) {
                if let Some(out) = hop.outgoing {
                    if msg.ack == HopAck::Accepted(out.id) {
                        hop.outgoing = None;
                        self.counters.forwarded += 1;
                        ctx.emit(ForwardEvent::Forwarded {
                            payload: out,
                            to: from,
                        });
                    } else {
                        // Refused (receiver full) or a stale ack that
                        // cannot name this transfer: keep the payload,
                        // run a fresh handshake.
                        hop.state = Flag::ZERO;
                        self.counters.restarts += 1;
                    }
                }
            }
        }

        // Reply while the neighbor is still waving (its own climb needs
        // our echoes); a complete sender flag needs no answer, which is
        // what lets the protocol quiesce.
        if !sender_state.is_complete(domain) {
            let reply = self.hop_message(d);
            ctx.send(from, reply);
        }
    }
}

impl Protocol for ForwardProcess {
    type Msg = ForwardMsg;
    type Event = ForwardEvent;
    type State = ForwardState;

    fn activate(&mut self, ctx: &mut Context<'_, ForwardMsg, ForwardEvent>) -> bool {
        let mut acted = self.action_inject(ctx);
        for d in Direction::BOTH {
            acted |= self.action_start_transfer(d, ctx);
            acted |= self.action_retransmit(d, ctx);
        }
        acted
    }

    fn on_receive(
        &mut self,
        from: ProcessId,
        msg: ForwardMsg,
        ctx: &mut Context<'_, ForwardMsg, ForwardEvent>,
    ) {
        // Messages from off-line processes can only be initial-channel
        // garbage (the protocol never sends on those links); dropping
        // them is the §4-faithful reaction.
        if let Some(d) = self.direction_from(from) {
            self.handle_hop_receive(d, from, msg, ctx);
        }
    }

    fn has_enabled_action(&self) -> bool {
        self.pending.is_some()
            || self.lanes.iter().any(|l| !l.is_empty())
            || self.hops.iter().flatten().any(|h| h.outgoing.is_some())
    }

    fn corrupt(&mut self, rng: &mut SimRng) {
        // The pending slot is the user-side request variable (Hypothesis
        // 1): like `MeProcess`'s CS occupancy, transient faults do not
        // forge client intent — Specification 4's guarantee attaches at
        // the Injected event, and stale traffic is modeled by the lane,
        // slot and channel corruption below.
        self.pending = None;
        let domain = self.config.flag_domain;
        self.prefill_stale(rng);
        for hop in self.hops.iter_mut().flatten() {
            hop.state = domain.arbitrary_flag(rng);
            hop.neig_state = domain.arbitrary_flag(rng);
            hop.ack = HopAck::arbitrary(rng);
        }
    }

    fn snapshot(&self) -> ForwardState {
        ForwardState {
            pending: self.pending,
            lanes: [
                self.lanes[0].iter().copied().collect(),
                self.lanes[1].iter().copied().collect(),
            ],
            hops: [0, 1].map(|i| {
                self.hops[i]
                    .as_ref()
                    .map(|h| (h.outgoing, h.state, h.neig_state, h.ack))
            }),
        }
    }

    fn restore(&mut self, state: ForwardState) {
        self.pending = state.pending;
        for (lane, contents) in self.lanes.iter_mut().zip(state.lanes) {
            lane.clear();
            lane.extend(contents);
        }
        for (hop, snap) in self.hops.iter_mut().zip(state.hops) {
            match (hop, snap) {
                (Some(h), Some((outgoing, s, ns, ack))) => {
                    h.outgoing = outgoing;
                    h.state = s;
                    h.neig_state = ns;
                    h.ack = ack;
                }
                (None, None) => {}
                _ => panic!("hop topology mismatch in restored state"),
            }
        }
    }
}

/// The deterministic client workload both forwarding substrates share:
/// `payloads_per_process` payloads per process, destinations drawn
/// uniformly among the *other* processes, ids from [`payload_id`]. The
/// sim-vs-live conformance tests rest on both substrates injecting this
/// same stream.
pub fn forward_workload(n: usize, payloads_per_process: u64, seed: u64) -> Vec<Vec<Payload>> {
    let mut rng = SimRng::seed_from(seed ^ 0xF0D_1CE);
    (0..n)
        .map(|i| {
            (0..payloads_per_process)
                .map(|k| {
                    let mut dst = rng.gen_range(0..n - 1);
                    if dst >= i {
                        dst += 1;
                    }
                    Payload {
                        src: i as u16,
                        dst: dst as u16,
                        id: payload_id(i, k),
                        data: rng.gen_u64(),
                    }
                })
                .collect()
        })
        .collect()
}

/// Configuration of a simulated forwarding run ([`run_sim_forwarding`]).
#[derive(Clone, Copy, Debug)]
pub struct SimForwardConfig {
    /// Number of processes on the line.
    pub n: usize,
    /// Client payloads injected per process.
    pub payloads_per_process: u64,
    /// Per-lane buffer capacity.
    pub buffer_cap: usize,
    /// Per-message in-transit loss probability in `[0, 1)`.
    pub loss: f64,
    /// Scheduler / workload / adversary seed.
    pub seed: u64,
    /// Start from an adversarial initial configuration: corrupted
    /// handshake state, stale-pre-filled lanes and hop slots, arbitrary
    /// channel contents.
    pub corrupt: bool,
    /// Step budget; the run stops early once every injected payload is
    /// delivered.
    pub max_steps: u64,
}

impl Default for SimForwardConfig {
    fn default() -> Self {
        SimForwardConfig {
            n: 4,
            payloads_per_process: 3,
            buffer_cap: 4,
            loss: 0.0,
            seed: 1,
            corrupt: false,
            max_steps: 4_000_000,
        }
    }
}

/// Outcome of a simulated forwarding run.
#[derive(Clone, Debug)]
pub struct SimForwardReport {
    /// Every genuine payload the workload asked to inject.
    pub workload: Vec<Payload>,
    /// Payloads injected within the budget (equals the workload on a
    /// completed run).
    pub injected: u64,
    /// Genuine (workload) payloads collected from destination inboxes.
    pub delivered: u64,
    /// Spurious deliveries (stale pre-start entries flushed end-to-end);
    /// allowed by Specification 4, reported for visibility.
    pub spurious: u64,
    /// The trace, ready for
    /// [`crate::spec::analyze_forwarding_trace`].
    pub trace: Trace<ForwardMsg, ForwardEvent>,
    /// Steps executed.
    pub steps: u64,
}

/// Runs the forwarding protocol in the deterministic simulator — the
/// mirror of `snapstab_runtime::run_forwarding_service`, and the harness
/// behind the Specification 4 acceptance sweeps.
///
/// ```
/// use snapstab_core::forward::{run_sim_forwarding, SimForwardConfig};
/// use snapstab_core::spec::analyze_forwarding_trace;
///
/// let cfg = SimForwardConfig { n: 4, seed: 7, corrupt: true, ..SimForwardConfig::default() };
/// let report = run_sim_forwarding(&cfg);
/// assert_eq!(report.delivered, 12, "3 payloads × 4 processes");
/// let spec = analyze_forwarding_trace(&report.trace, 4);
/// assert!(spec.holds(), "{spec:?}");
/// ```
pub fn run_sim_forwarding(cfg: &SimForwardConfig) -> SimForwardReport {
    let config = ForwardConfig {
        buffer_cap: cfg.buffer_cap,
        flag_domain: FlagDomain::PAPER, // capacity-1 simulator channels
    };
    let processes: Vec<ForwardProcess> = (0..cfg.n)
        .map(|i| ForwardProcess::new(ProcessId::new(i), cfg.n, config))
        .collect();
    let network = NetworkBuilder::new(cfg.n)
        .capacity(Capacity::Bounded(1))
        .build();
    let mut runner = Runner::new(processes, network, RandomScheduler::new(), cfg.seed);
    if cfg.loss > 0.0 {
        runner.set_loss(LossModel::probabilistic(cfg.loss));
    }
    if cfg.corrupt {
        let mut rng = SimRng::seed_from(cfg.seed ^ 0xF0E_BAD);
        snapstab_sim::CorruptionPlan::full().apply(&mut runner, &mut rng);
    }

    let workload = forward_workload(cfg.n, cfg.payloads_per_process, cfg.seed);
    let all: Vec<Payload> = workload.iter().flatten().copied().collect();
    let total = all.len() as u64;
    let mut queues: Vec<VecDeque<Payload>> = workload.into_iter().map(VecDeque::from).collect();

    let mut injected = 0u64;
    let mut delivered = 0u64;
    let mut spurious = 0u64;
    let mut executed = 0u64;
    while delivered < total && executed < cfg.max_steps {
        executed += runner.run_steps(500).expect("sim forwarding run").steps;
        for (i, queue) in queues.iter_mut().enumerate() {
            let p = ProcessId::new(i);
            for payload in runner.process_mut(p).take_delivered() {
                if payload.id & STALE_ID_BIT == 0 {
                    delivered += 1;
                } else {
                    spurious += 1;
                }
            }
            if runner.process(p).can_inject() {
                if let Some(payload) = queue.pop_front() {
                    assert!(runner.process_mut(p).request_send(payload));
                    injected += 1;
                }
            }
        }
    }
    SimForwardReport {
        workload: all,
        injected,
        delivered,
        spurious,
        trace: runner.take_trace(),
        steps: executed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::analyze_forwarding_trace;
    use snapstab_sim::{Capacity, Move, NetworkBuilder, RoundRobin, Runner};

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    fn payload(src: usize, dst: usize, id: u64) -> Payload {
        Payload {
            src: src as u16,
            dst: dst as u16,
            id,
            data: 0xDA7A_0000 + id,
        }
    }

    fn system(n: usize) -> Runner<ForwardProcess, RoundRobin> {
        let processes = (0..n)
            .map(|i| ForwardProcess::new(p(i), n, ForwardConfig::default()))
            .collect();
        let network = NetworkBuilder::new(n)
            .capacity(Capacity::Bounded(1))
            .build();
        Runner::new(processes, network, RoundRobin::new(), 42)
    }

    #[test]
    fn initial_state_is_quiescent() {
        let r = system(3);
        assert!(r.is_quiescent());
        assert!(r.process(p(0)).can_inject());
        assert_eq!(r.process(p(1)).buffered(), 0);
    }

    #[test]
    fn line_ends_have_one_hop() {
        let r = system(3);
        assert!(r.process(p(0)).hops[0].is_some(), "P0 has an up hop");
        assert!(r.process(p(0)).hops[1].is_none(), "P0 has no down hop");
        assert!(r.process(p(2)).hops[0].is_none(), "P2 has no up hop");
        assert!(r.process(p(2)).hops[1].is_some(), "P2 has a down hop");
        assert!(r.process(p(1)).hops.iter().all(Option::is_some));
    }

    #[test]
    fn request_send_enforces_discipline_and_domain() {
        let mut r = system(3);
        assert!(!r.process_mut(p(0)).request_send(payload(0, 0, 1)), "self");
        assert!(!r.process_mut(p(0)).request_send(payload(0, 9, 1)), "range");
        assert!(r.process_mut(p(0)).request_send(payload(0, 2, 1)));
        assert!(
            !r.process_mut(p(0)).request_send(payload(0, 1, 2)),
            "one outstanding injection per process"
        );
    }

    #[test]
    fn single_hop_transfer_delivers_exactly_once() {
        let mut r = system(2);
        r.process_mut(p(0)).request_send(payload(0, 1, 7));
        // Quiescence: the transfer confirms, the slot erases, and nothing
        // is left to say.
        let out = r.run_until_quiescent(10_000).unwrap();
        assert!(out.is_quiescent());
        assert_eq!(r.process_mut(p(1)).take_delivered(), vec![payload(0, 1, 7)]);
        assert_eq!(r.process(p(0)).counters().forwarded, 1, "slot erased");
        assert_eq!(r.process(p(1)).counters().delivered, 1);
    }

    #[test]
    fn multi_hop_relay_crosses_the_line() {
        let mut r = system(4);
        r.process_mut(p(0)).request_send(payload(0, 3, 1));
        let out = r.run_until_quiescent(100_000).unwrap();
        assert!(out.is_quiescent());
        // Two relays (P1, P2), three hop completions (P0, P1, P2).
        assert_eq!(r.process(p(1)).counters().accepted, 1);
        assert_eq!(r.process(p(2)).counters().accepted, 1);
        for i in 0..3 {
            assert_eq!(r.process(p(i)).counters().forwarded, 1, "P{i}");
        }
        assert_eq!(r.process_mut(p(3)).take_delivered(), vec![payload(0, 3, 1)]);
    }

    #[test]
    fn downward_traffic_uses_the_down_lane() {
        let mut r = system(3);
        r.process_mut(p(2)).request_send(payload(2, 0, 5));
        r.run_until(100_000, |r| r.process(p(0)).counters().delivered == 1)
            .unwrap();
        assert_eq!(r.process(p(1)).counters().accepted, 1);
        assert_eq!(r.process_mut(p(0)).take_delivered(), vec![payload(2, 0, 5)]);
    }

    #[test]
    fn full_lane_refuses_then_drains() {
        // Capacity-1 lanes; P1's up lane *and* its outgoing slot start
        // occupied by traffic for P3, so P0's concurrent offer must be
        // refused at least once, retried, and still delivered — the
        // bounded-buffer backpressure path, with no payload lost.
        let config = ForwardConfig {
            buffer_cap: 1,
            flag_domain: FlagDomain::PAPER,
        };
        let n = 4;
        let processes = (0..n)
            .map(|i| ForwardProcess::new(p(i), n, config))
            .collect();
        let network = NetworkBuilder::new(n)
            .capacity(Capacity::Bounded(1))
            .build();
        let mut r = Runner::new(processes, network, RoundRobin::new(), 7);
        // Four payloads already in the P1/P2 pipeline: P1's lane cannot
        // free before two chained downstream handshakes complete, which
        // is strictly slower than P0's single climb to the copy point.
        let mut expect = vec![payload(0, 3, payload_id(0, 0))];
        for i in [1usize, 2] {
            let queued = payload(i, 3, payload_id(i, 0));
            let in_slot = payload(i, 3, payload_id(i, 1));
            expect.extend([queued, in_slot]);
            let proc = r.process_mut(p(i));
            proc.lanes[0].push_back(queued);
            let hop = proc.hops[0].as_mut().unwrap();
            hop.outgoing = Some(in_slot);
            hop.state = Flag::ZERO;
        }
        r.process_mut(p(0))
            .request_send(payload(0, 3, payload_id(0, 0)));
        let out = r.run_until_quiescent(200_000).unwrap();
        assert!(out.is_quiescent());
        let refusals: u64 = (0..n)
            .map(|i| r.process(p(i)).counters().refused_full)
            .sum();
        let restarts: u64 = (0..n).map(|i| r.process(p(i)).counters().restarts).sum();
        assert_eq!(refusals, restarts, "every refusal restarts a handshake");
        assert!(
            r.process(p(1)).counters().refused_full > 0,
            "P1's full lane must refuse P0 at least once: {:?}",
            r.process(p(1)).counters()
        );
        let mut got = r.process_mut(p(3)).take_delivered();
        got.sort_unstable_by_key(|m| m.id);
        expect.sort_unstable_by_key(|m| m.id);
        assert_eq!(got, expect, "backpressure must not lose payloads");
        let spec = analyze_forwarding_trace(r.trace(), n);
        assert!(spec.holds(), "{spec:?}");
    }

    /// Regression for a live-bench deadlock: a stale payload planted in
    /// a transfer *slot* pointing against its own routing direction
    /// (here: a down-hop slot holding up-bound traffic) used to be
    /// re-buffered at the receiver, knitting the up and down lane
    /// systems into a buffer-wait cycle under saturation. It must
    /// instead be accepted-and-flushed, freeing the sender's slot, with
    /// every genuine payload still delivered.
    #[test]
    fn wrong_way_slot_garbage_cannot_deadlock_the_line() {
        let config = ForwardConfig {
            buffer_cap: 1,
            flag_domain: FlagDomain::PAPER,
        };
        let n = 3;
        let processes = (0..n)
            .map(|i| ForwardProcess::new(p(i), n, config))
            .collect();
        let network = NetworkBuilder::new(n)
            .capacity(Capacity::Bounded(1))
            .build();
        let mut r = Runner::new(processes, network, RoundRobin::new(), 5);
        // P0's capacity-1 up lane is full of genuine up traffic, and
        // P1's *down* slot offers P0 an up-bound stale payload — the
        // wrong way. Re-buffering it at P0 would wait on P0's full up
        // lane, which waits on P1's lane system, which the stale slot
        // keeps busy: the cycle.
        let wrong_way = payload(1, 2, STALE_ID_BIT | 7);
        {
            let proc = r.process_mut(p(1));
            let hop = proc.hops[Direction::Down.index()].as_mut().unwrap();
            hop.outgoing = Some(wrong_way);
            hop.state = Flag::ZERO;
        }
        r.process_mut(p(0)).lanes[0].push_back(payload(0, 2, payload_id(0, 0)));
        let out = r.run_until_quiescent(200_000).unwrap();
        assert!(out.is_quiescent(), "the line must not wedge");
        assert_eq!(
            r.process(p(0)).counters().dropped_invalid,
            1,
            "the wrong-way offer is flushed at P0: {:?}",
            r.process(p(0)).counters()
        );
        assert_eq!(
            r.process(p(1)).counters().forwarded,
            2,
            "P1's slot freed (stale flush) and the genuine relay ran"
        );
        assert_eq!(
            r.process_mut(p(2)).take_delivered(),
            vec![payload(0, 2, payload_id(0, 0))],
            "the genuine payload still crosses the line exactly once"
        );
        let spec = analyze_forwarding_trace(r.trace(), n);
        assert!(spec.holds(), "{spec:?}");
    }

    #[test]
    fn stale_lane_entry_with_invalid_destination_is_flushed() {
        let mut r = system(3);
        // Plant garbage: P1's up lane holds an entry destined below it.
        let junk = payload(0, 0, STALE_ID_BIT | 9);
        r.process_mut(p(1)).lanes[0].push_back(junk);
        r.execute_move(Move::Activate(p(1))).unwrap();
        assert_eq!(r.process(p(1)).buffered(), 0, "garbage flushed");
        assert_eq!(r.process(p(1)).counters().dropped_invalid, 1);
        let dropped: Vec<_> = r
            .trace()
            .protocol_events_of(p(1))
            .filter(|(_, e)| matches!(e, ForwardEvent::DroppedInvalid { .. }))
            .collect();
        assert_eq!(dropped.len(), 1);
    }

    #[test]
    fn stale_in_domain_entry_is_delivered_at_most_once() {
        let mut r = system(3);
        let stale = payload(0, 2, STALE_ID_BIT | 4);
        r.process_mut(p(0)).lanes[0].push_back(stale);
        let out = r.run_until_quiescent(200_000).unwrap();
        assert!(out.is_quiescent());
        assert_eq!(r.process_mut(p(2)).take_delivered(), vec![stale]);
        let spec = analyze_forwarding_trace(r.trace(), 3);
        assert!(spec.holds(), "{spec:?}");
        assert_eq!(spec.spurious, 1, "stale flush is spurious, not genuine");
    }

    #[test]
    fn forged_completion_cannot_erase_the_payload() {
        // Pre-load the reply channel with a forged "handshake complete +
        // accepted" message. The five-valued climb must not let it erase
        // P0's slot: delivery still happens exactly once, at P1.
        let mut r = system(2);
        let m = payload(0, 1, 3);
        r.network_mut()
            .channel_mut(p(1), p(0))
            .unwrap()
            .preload([ForwardMsg {
                payload: None,
                ack: HopAck::Accepted(m.id),
                sender_state: FlagDomain::PAPER.max(),
                echoed_state: Flag::new(3),
            }]);
        r.process_mut(p(0)).request_send(m);
        r.run_until(100_000, |r| r.process(p(1)).counters().delivered == 1)
            .unwrap();
        let spec = analyze_forwarding_trace(r.trace(), 2);
        assert!(spec.holds(), "{spec:?}");
        assert_eq!(r.process_mut(p(1)).take_delivered(), vec![m]);
    }

    #[test]
    fn corrupt_clears_pending_and_respects_domains() {
        let mut proc = ForwardProcess::new(p(1), 3, ForwardConfig::default());
        let mut rng = SimRng::seed_from(11);
        for _ in 0..50 {
            proc.corrupt(&mut rng);
            assert!(proc.pending.is_none(), "no forged client intent");
            assert!(proc.buffered() <= 2 * proc.config.buffer_cap);
            for hop in proc.hops.iter().flatten() {
                assert!(hop.state.value() <= 4);
                assert!(hop.neig_state.value() <= 4);
                if let Some(out) = hop.outgoing {
                    assert!(out.id & STALE_ID_BIT != 0, "stale slots marked stale");
                }
            }
        }
    }

    #[test]
    fn snapshot_restore_roundtrip() {
        let mut proc = ForwardProcess::new(p(1), 3, ForwardConfig::default());
        let mut rng = SimRng::seed_from(21);
        proc.corrupt(&mut rng);
        let snap = proc.snapshot();
        proc.corrupt(&mut rng);
        proc.restore(snap.clone());
        assert_eq!(proc.snapshot(), snap);
    }

    #[test]
    fn off_line_garbage_messages_are_ignored() {
        let mut r = system(4);
        // The protocol never uses the 0 -> 3 link; preloaded garbage
        // there must be consumed without any reaction.
        r.network_mut()
            .channel_mut(p(0), p(3))
            .unwrap()
            .preload([ForwardMsg {
                payload: Some(payload(0, 3, STALE_ID_BIT | 1)),
                ack: HopAck::Refused,
                sender_state: Flag::new(3),
                echoed_state: Flag::new(0),
            }]);
        r.execute_move(Move::Deliver {
            from: p(0),
            to: p(3),
        })
        .unwrap();
        assert_eq!(r.process(p(3)).counters().delivered, 0);
        assert_eq!(r.process(p(3)).counters().accepted, 0);
        assert!(r.network().is_quiescent() || r.network().messages_in_flight() == 0);
    }

    #[test]
    fn workload_is_deterministic_and_in_domain() {
        let a = forward_workload(5, 4, 9);
        let b = forward_workload(5, 4, 9);
        assert_eq!(a, b, "same seed, same stream");
        for (i, stream) in a.iter().enumerate() {
            assert_eq!(stream.len(), 4);
            for (k, m) in stream.iter().enumerate() {
                assert_eq!(m.src as usize, i);
                assert_ne!(m.dst as usize, i, "no self-addressed payloads");
                assert!((m.dst as usize) < 5);
                assert_eq!(m.id, payload_id(i, k as u64));
                assert_eq!(m.id & STALE_ID_BIT, 0, "genuine ids are not stale");
            }
        }
        assert_ne!(forward_workload(5, 4, 10), a, "seed matters");
    }

    #[test]
    fn sim_forwarding_clean_run_satisfies_spec4() {
        let cfg = SimForwardConfig {
            n: 5,
            payloads_per_process: 4,
            seed: 3,
            ..SimForwardConfig::default()
        };
        let report = run_sim_forwarding(&cfg);
        assert_eq!(report.injected, 20);
        assert_eq!(report.delivered, 20);
        assert_eq!(report.spurious, 0);
        let spec = analyze_forwarding_trace(&report.trace, cfg.n);
        assert!(spec.holds(), "{spec:?}");
        assert_eq!(spec.injected.len(), 20);
        assert!(spec.latencies().iter().all(|&l| l > 0));
    }

    #[test]
    fn sim_forwarding_corrupted_runs_satisfy_spec4() {
        for seed in 0..8 {
            let cfg = SimForwardConfig {
                n: 4,
                payloads_per_process: 3,
                buffer_cap: 2,
                loss: 0.1,
                seed,
                corrupt: true,
                ..SimForwardConfig::default()
            };
            let report = run_sim_forwarding(&cfg);
            assert_eq!(report.delivered, 12, "seed {seed}: all delivered");
            let spec = analyze_forwarding_trace(&report.trace, cfg.n);
            assert!(spec.holds(), "seed {seed}: {spec:?}");
        }
    }

    #[test]
    fn arbitrary_payloads_are_stale_marked() {
        let mut rng = SimRng::seed_from(0);
        for _ in 0..100 {
            let m = Payload::arbitrary(&mut rng);
            assert!(m.id & STALE_ID_BIT != 0);
        }
    }
}
