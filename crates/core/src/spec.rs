//! Executable specifications: trace predicates for Specifications 1–4 and
//! Property 1.
//!
//! The paper defines a specification as "a predicate defined on the
//! executions"; snap-stabilization (Definition 1) demands that *every*
//! execution from *every* initial configuration satisfies it. This module
//! turns each specification into a checkable verdict over the typed traces
//! produced by `snapstab-sim`, so the experiment harness can evaluate
//! thousands of corrupted-start executions mechanically.
//!
//! Specifications 1–3 are the paper's own (PIF, IDs-Learning, mutual
//! exclusion). **Specification 4** is this repo's executable rendering of
//! the snap-stabilizing *message forwarding* specification from the
//! follow-up literature (see [`crate::forward`]): every payload injected
//! after the protocol starts is delivered to its destination exactly
//! once — no duplication, no loss of accepted payloads — even when the
//! initial buffers were adversarially pre-filled with stale entries.

use std::collections::HashMap;

use snapstab_sim::{Message, Network, ProcessId, Trace};

use crate::forward::{ForwardEvent, Payload};
use crate::idl::IdlCore;
use crate::me::MeEvent;
use crate::pif::{PifEvent, PifMsg};
use crate::probe::{MonitorEvent, MonitorEventView, ProbeDigest};

/// Verdict of the Specification 1 (PIF-Execution) checker for one
/// requested wave.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct PifVerdict {
    /// Start: the requested broadcast was started (A1 executed after the
    /// request).
    pub started: bool,
    /// Termination: the started computation decided.
    pub decided: bool,
    /// Correctness (broadcast half): every other process generated
    /// `receive-brd` with the broadcast data during the computation.
    pub broadcasts_received: bool,
    /// Correctness (feedback half): the initiator generated `receive-fck`
    /// from every other process with that process's expected feedback.
    pub feedbacks_received: bool,
    /// Decision: the decision took exactly the `n − 1` acknowledgments of
    /// the last broadcast into account — one `receive-fck` per neighbor
    /// between start and decision, all carrying expected data.
    pub decision_exact: bool,
    /// Step at which the wave started, if it did.
    pub start_step: Option<u64>,
    /// Step at which the wave decided, if it did.
    pub decision_step: Option<u64>,
}

impl PifVerdict {
    /// True if every property of Specification 1 holds for this wave.
    pub fn holds(&self) -> bool {
        self.started
            && self.decided
            && self.broadcasts_received
            && self.feedbacks_received
            && self.decision_exact
    }

    /// Steps from start to decision, if both occurred.
    pub fn wave_steps(&self) -> Option<u64> {
        Some(self.decision_step? - self.start_step?)
    }
}

/// Checks Specification 1 for a wave requested at `initiator` at
/// `request_step`, over a trace whose event type `E` embeds PIF events
/// (extracted by `as_pif`; use the identity for bare [`PifEvent`] traces).
///
/// `expected_b` is the broadcast data of the requested wave and
/// `expected_f(q)` the feedback process `q` is expected to produce.
pub fn check_pif_wave<M, E, B, F>(
    trace: &Trace<M, E>,
    initiator: ProcessId,
    n: usize,
    request_step: u64,
    expected_b: &B,
    mut expected_f: impl FnMut(ProcessId) -> F,
    mut as_pif: impl FnMut(&E) -> Option<&PifEvent<B, F>>,
) -> PifVerdict
where
    M: Message,
    E: Clone + std::fmt::Debug + PartialEq,
    B: Clone + std::fmt::Debug + PartialEq,
    F: Clone + std::fmt::Debug + PartialEq,
{
    // Start: first A1 at the initiator at or after the request.
    let start_step = trace
        .protocol_events_of(initiator)
        .filter(|(s, _)| *s >= request_step)
        .find(|(_, e)| matches!(as_pif(e), Some(PifEvent::Started)))
        .map(|(s, _)| s);

    let mut verdict = PifVerdict {
        started: start_step.is_some(),
        decided: false,
        broadcasts_received: false,
        feedbacks_received: false,
        decision_exact: false,
        start_step,
        decision_step: None,
    };
    let Some(start) = start_step else {
        return verdict;
    };

    // Termination/Decision step: first Decided after the start.
    let decision_step = trace
        .protocol_events_of(initiator)
        .filter(|(s, _)| *s > start)
        .find(|(_, e)| matches!(as_pif(e), Some(PifEvent::Decided)))
        .map(|(s, _)| s);
    verdict.decided = decision_step.is_some();
    verdict.decision_step = decision_step;
    let Some(decision) = decision_step else {
        return verdict;
    };

    // Correctness, broadcast half: every q ≠ initiator saw receive-brd with
    // the requested data inside (start, decision].
    verdict.broadcasts_received = (0..n).filter(|&i| i != initiator.index()).all(|i| {
        trace
            .protocol_events_of(ProcessId::new(i))
            .filter(|(s, _)| *s > start && *s <= decision)
            .any(|(_, e)| {
                matches!(
                    as_pif(e),
                    Some(PifEvent::ReceiveBrd { from, data })
                        if *from == initiator && data == expected_b
                )
            })
    });

    // Correctness, feedback half + Decision exactness: receive-fck events
    // at the initiator inside (start, decision].
    let fcks: Vec<(ProcessId, F)> = trace
        .protocol_events_of(initiator)
        .filter(|(s, _)| *s > start && *s <= decision)
        .filter_map(|(_, e)| match as_pif(e) {
            Some(PifEvent::ReceiveFck { from, data }) => Some((*from, data.clone())),
            _ => None,
        })
        .collect();

    verdict.feedbacks_received = (0..n).filter(|&i| i != initiator.index()).all(|i| {
        let q = ProcessId::new(i);
        let want = expected_f(q);
        fcks.iter().any(|(from, data)| *from == q && *data == want)
    });

    let mut froms: Vec<usize> = fcks.iter().map(|(from, _)| from.index()).collect();
    froms.sort_unstable();
    froms.dedup();
    verdict.decision_exact =
        fcks.len() == n - 1 && froms.len() == n - 1 && verdict.feedbacks_received;

    verdict
}

/// Convenience wrapper of [`check_pif_wave`] for traces of the standalone
/// PIF process (event type = [`PifEvent`]).
pub fn check_bare_pif_wave<B, F>(
    trace: &Trace<PifMsg<B, F>, PifEvent<B, F>>,
    initiator: ProcessId,
    n: usize,
    request_step: u64,
    expected_b: &B,
    expected_f: impl FnMut(ProcessId) -> F,
) -> PifVerdict
where
    B: Clone + std::fmt::Debug + PartialEq + 'static,
    F: Clone + std::fmt::Debug + PartialEq + 'static,
{
    check_pif_wave(
        trace,
        initiator,
        n,
        request_step,
        expected_b,
        expected_f,
        |e| Some(e),
    )
}

/// Verdict of the Specification 2 (IDs-Learning-Execution) checker.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct IdlVerdict {
    /// Start: the computation started after the request.
    pub started: bool,
    /// Termination: the computation decided.
    pub decided: bool,
    /// Correctness: `minID` equals the true minimum at the decision.
    pub min_id_correct: bool,
    /// Correctness: `ID-Tab[q]` equals `ID_q` for every neighbor.
    pub id_tab_correct: bool,
}

impl IdlVerdict {
    /// True if every property of Specification 2 holds.
    pub fn holds(&self) -> bool {
        self.started && self.decided && self.min_id_correct && self.id_tab_correct
    }
}

/// Checks Specification 2 against the learner's final [`IdlCore`] state:
/// `true_ids[i]` must be the identity of process `i`.
pub fn check_idl_result(
    core: &IdlCore,
    me: ProcessId,
    true_ids: &[crate::idl::Id],
    started: bool,
    decided: bool,
) -> IdlVerdict {
    let true_min = *true_ids.iter().min().expect("non-empty system");
    IdlVerdict {
        started,
        decided,
        min_id_correct: core.min_id() == true_min,
        id_tab_correct: (0..true_ids.len())
            .filter(|&i| i != me.index())
            .all(|i| core.id_of(ProcessId::new(i)) == true_ids[i]),
    }
}

/// One critical-section execution interval extracted from a trace.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CsInterval {
    /// The executing process.
    pub p: ProcessId,
    /// Step of `CsEnter`.
    pub enter: u64,
    /// Step of `CsExit` (equal to `enter` for the paper's atomic CS).
    pub exit: u64,
    /// True if this CS execution served a *genuine* external request: a
    /// `request` marker, then A0's `Started`, with no `Served` in between.
    /// Footnote 1 of the paper: only genuine executions carry guarantees.
    pub genuine: bool,
}

impl CsInterval {
    /// Closed-interval overlap test.
    pub fn overlaps(&self, other: &CsInterval) -> bool {
        self.enter.max(other.enter) <= self.exit.min(other.exit)
    }
}

/// Report of the Specification 3 (ME-Execution) analysis of a trace.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct MeReport {
    /// Every CS interval, chronological by entry.
    pub intervals: Vec<CsInterval>,
    /// Pairs of *genuine* intervals that overlap — Correctness violations
    /// (must be empty for a snap-stabilizing protocol).
    pub genuine_overlaps: Vec<(CsInterval, CsInterval)>,
    /// Overlapping pairs involving at least one non-genuine interval —
    /// allowed by the specification (footnote 1), reported for visibility.
    pub spurious_overlaps: Vec<(CsInterval, CsInterval)>,
    /// `(process, request step, service step)` for every served request.
    pub served: Vec<(ProcessId, u64, u64)>,
    /// `(process, request step)` of requests not served within the trace —
    /// Start violations if the run budget was generous.
    pub unserved: Vec<(ProcessId, u64)>,
}

impl MeReport {
    /// True if no two genuine CS executions overlapped.
    pub fn exclusivity_holds(&self) -> bool {
        self.genuine_overlaps.is_empty()
    }

    /// True if every observed request was served.
    pub fn all_served(&self) -> bool {
        self.unserved.is_empty()
    }

    /// Service latencies in steps.
    pub fn latencies(&self) -> Vec<u64> {
        self.served.iter().map(|(_, req, srv)| srv - req).collect()
    }
}

/// Analyzes a mutual-exclusion trace for Specification 3: extracts CS
/// intervals, classifies them genuine/spurious, finds overlaps and service
/// latencies. Requests are recognized by `request` markers
/// ([`snapstab_sim::Runner::mark`] with label `"request"`).
pub fn analyze_me_trace<M: Message>(trace: &Trace<M, MeEvent>, n: usize) -> MeReport {
    let mut report = MeReport::default();

    for i in 0..n {
        let p = ProcessId::new(i);
        // Merge markers and protocol events for this process, by step (the
        // trace is chronological; markers and events interleave correctly
        // because both are pushed in order).
        #[derive(Debug)]
        enum Obs {
            Request(u64),
            Started,
            CsEnter(u64),
            CsExit(u64),
            Served(u64),
        }
        let mut obs: Vec<(u64, Obs)> = Vec::new();
        for (step, q, label) in trace.markers() {
            if q == p && label == "request" {
                obs.push((step, Obs::Request(step)));
            }
        }
        for (step, e) in trace.protocol_events_of(p) {
            match e {
                MeEvent::Started => obs.push((step, Obs::Started)),
                MeEvent::CsEnter => obs.push((step, Obs::CsEnter(step))),
                MeEvent::CsExit => obs.push((step, Obs::CsExit(step))),
                MeEvent::Served => obs.push((step, Obs::Served(step))),
                MeEvent::Pif(_) => {}
            }
        }
        obs.sort_by_key(|(step, o)| {
            // Markers sort before events at the same step: a request marker
            // recorded "between steps" precedes the next step's events.
            (*step, !matches!(o, Obs::Request(_)) as u8)
        });

        let mut pending_request: Option<u64> = None;
        let mut started_genuine = false;
        let mut open_enter: Option<(u64, bool)> = None;
        for (_, o) in obs {
            match o {
                Obs::Request(step) => {
                    pending_request = Some(step);
                    started_genuine = false;
                }
                Obs::Started => {
                    if pending_request.is_some() {
                        started_genuine = true;
                    }
                }
                Obs::CsEnter(step) => {
                    open_enter = Some((step, started_genuine));
                }
                Obs::CsExit(step) => {
                    if let Some((enter, genuine)) = open_enter.take() {
                        report.intervals.push(CsInterval {
                            p,
                            enter,
                            exit: step,
                            genuine,
                        });
                    }
                }
                Obs::Served(step) => {
                    if let Some(req) = pending_request.take() {
                        report.served.push((p, req, step));
                    }
                    started_genuine = false;
                }
            }
        }
        // Trace ended mid-CS: close the interval at its entry step.
        if let Some((enter, genuine)) = open_enter {
            report.intervals.push(CsInterval {
                p,
                enter,
                exit: enter,
                genuine,
            });
        }
        if let Some(req) = pending_request {
            report.unserved.push((p, req));
        }
    }

    report.intervals.sort_by_key(|iv| iv.enter);
    for i in 0..report.intervals.len() {
        for j in i + 1..report.intervals.len() {
            let (a, b) = (report.intervals[i], report.intervals[j]);
            if a.p != b.p && a.overlaps(&b) {
                if a.genuine && b.genuine {
                    report.genuine_overlaps.push((a, b));
                } else {
                    report.spurious_overlaps.push((a, b));
                }
            }
        }
    }
    report
}

/// Report of the Specification 4 (Forwarding-Execution) analysis of a
/// trace — see [`analyze_forwarding_trace`].
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct ForwardingReport {
    /// Every injection observed: `(step, payload)`, chronological. The
    /// exactly-once guarantee attaches to these.
    pub injected: Vec<(u64, Payload)>,
    /// `(payload, injection step, delivery step)` for every injected
    /// payload delivered correctly.
    pub delivered: Vec<(Payload, u64, u64)>,
    /// Injected payloads never delivered within the trace — **loss**
    /// violations (if the run budget was generous).
    pub lost: Vec<Payload>,
    /// Injected ids delivered more than once — **duplication**
    /// violations. The exactly-once guarantee covers injected payloads
    /// (their hop handshakes always start from flag 0, so Theorem 2's
    /// stale-increment budget protects both the copy and the erase);
    /// the adversarial generators in [`crate::forward`] stamp stale
    /// copies with pairwise-distinct [`crate::forward::STALE_ID_BIT`]
    /// ids, so an id can never be both.
    pub duplicate_ids: Vec<u64>,
    /// Never-injected (stale) ids flushed to a destination more than
    /// once. A transfer slot corrupted to a non-zero flag mid-handshake
    /// can complete on stale increments and restart, re-offering its
    /// stale payload — the window footnote 1 leaves open for
    /// non-genuine computations. Reported for visibility; not a
    /// violation.
    pub stale_duplicates: Vec<u64>,
    /// Deliveries claiming an injected id but corrupting it: wrong
    /// process (≠ `payload.dst`), wrong endpoints, or wrong data —
    /// **integrity** violations.
    pub corrupt_deliveries: Vec<Payload>,
    /// Deliveries of never-injected ids (stale pre-start entries flushed
    /// end-to-end). Allowed — at most once each — and reported for
    /// visibility.
    pub spurious: usize,
}

impl ForwardingReport {
    /// True if every property of Specification 4 holds: every injected
    /// payload delivered exactly once at its destination with intact
    /// data — i.e. no [`ForwardingReport::lost`], no
    /// [`ForwardingReport::duplicate_ids`], no
    /// [`ForwardingReport::corrupt_deliveries`]. Stale pre-start
    /// entries are *not* judged here: their flushes land in
    /// [`ForwardingReport::spurious`] /
    /// [`ForwardingReport::stale_duplicates`] for the caller to
    /// inspect.
    pub fn holds(&self) -> bool {
        self.lost.is_empty() && self.duplicate_ids.is_empty() && self.corrupt_deliveries.is_empty()
    }

    /// End-to-end latencies (injection step to delivery step) of the
    /// correctly delivered payloads.
    pub fn latencies(&self) -> Vec<u64> {
        self.delivered
            .iter()
            .map(|(_, inj, del)| del - inj)
            .collect()
    }
}

/// Analyzes a forwarding trace for Specification 4.
///
/// Injections are recognized by [`ForwardEvent::Injected`] (the protocol
/// emits it only for payloads accepted from the client *after* the
/// protocol started — the forwarding analogue of footnote 1's genuine
/// requests) and deliveries by [`ForwardEvent::Delivered`]. The verdict
/// demands, for every injected payload: exactly one delivery of its id,
/// at the destination process, carrying the injected endpoints and data,
/// at a step past the injection. Deliveries of never-injected ids are
/// the flushing of stale pre-start entries — allowed, and counted
/// (multiple flushes of one stale id land in
/// [`ForwardingReport::stale_duplicates`], also without failing the
/// verdict: the guarantee attaches at injection, footnote-1 style).
pub fn analyze_forwarding_trace<M: Message>(
    trace: &Trace<M, ForwardEvent>,
    n: usize,
) -> ForwardingReport {
    let mut report = ForwardingReport::default();
    // (step, delivering process, payload) of every delivery, in order.
    let mut deliveries: Vec<(u64, ProcessId, Payload)> = Vec::new();
    for (step, p, event) in trace.protocol_events() {
        match event {
            ForwardEvent::Injected { payload } => report.injected.push((step, *payload)),
            ForwardEvent::Delivered { payload, .. } => deliveries.push((step, p, *payload)),
            _ => {}
        }
    }
    // An injection naming endpoints outside the system is itself an
    // integrity violation — `ForwardProcess::request_send` never admits
    // one, so only a forged trace can contain it. Like every other
    // checker in this module, the reaction is a failing verdict, never
    // a panic.
    for (_, m) in &report.injected {
        if (m.src as usize) >= n || (m.dst as usize) >= n {
            report.corrupt_deliveries.push(*m);
        }
    }

    let mut per_id: HashMap<u64, Vec<(u64, ProcessId, Payload)>> = HashMap::new();
    for d in &deliveries {
        per_id.entry(d.2.id).or_default().push(*d);
    }

    let mut injected_ids: HashMap<u64, (u64, Payload)> = HashMap::new();
    for (step, m) in &report.injected {
        injected_ids.insert(m.id, (*step, *m));
    }
    for (id, ds) in &per_id {
        if ds.len() > 1 {
            if injected_ids.contains_key(id) {
                report.duplicate_ids.push(*id);
            } else {
                report.stale_duplicates.push(*id);
            }
        }
    }
    report.duplicate_ids.sort_unstable();
    report.stale_duplicates.sort_unstable();
    for (step, m) in injected_ids.values() {
        match per_id.get(&m.id) {
            None => report.lost.push(*m),
            Some(ds) => {
                for (del_step, at, got) in ds {
                    let intact = at.index() == m.dst as usize && got == m && *del_step > *step;
                    if intact {
                        report.delivered.push((*m, *step, *del_step));
                    } else {
                        report.corrupt_deliveries.push(*got);
                    }
                }
            }
        }
    }
    report.lost.sort_unstable_by_key(|m| m.id);
    report.delivered.sort_unstable_by_key(|(m, _, _)| m.id);
    // Deterministic order despite the HashMap walks above, so reports
    // on the same trace always compare equal.
    report
        .corrupt_deliveries
        .sort_unstable_by_key(|m| (m.id, m.data, m.src, m.dst));
    report.spurious = per_id
        .iter()
        .filter(|(id, _)| !injected_ids.contains_key(id))
        .map(|(_, ds)| ds.len())
        .sum();
    report
}

/// The marker-label prefix reserved for *authoritative* transient-fault
/// injections (mid-run state corruption by the chaos engine or the
/// supervisor's adversarial restarts). Epoch segmentation splits traces at
/// these marks; any marker carrying this prefix at a step the harness did
/// not vouch for is a *forged* fault mark and fails the epoch verdict —
/// otherwise a buggy protocol could excuse its violations by planting
/// fault marks around them.
pub const CHAOS_MARK_PREFIX: &str = "chaos:";

/// Sorted, deduplicated copy of an authoritative fault-step list.
fn normalize_faults(faults: &[u64]) -> Vec<u64> {
    let mut f = faults.to_vec();
    f.sort_unstable();
    f.dedup();
    f
}

/// Markers carrying [`CHAOS_MARK_PREFIX`] at steps *not* in the
/// authoritative fault list: forged fault marks.
fn forged_chaos_marks<M, E>(trace: &Trace<M, E>, faults: &[u64]) -> Vec<(ProcessId, u64, String)> {
    let mut forged: Vec<(ProcessId, u64, String)> = trace
        .markers()
        .filter(|(step, _, label)| {
            label.starts_with(CHAOS_MARK_PREFIX) && faults.binary_search(step).is_err()
        })
        .map(|(step, q, label)| (q, step, label.to_string()))
        .collect();
    forged.sort_unstable_by_key(|(q, step, _)| (*step, q.index()));
    forged
}

/// Splits a merged trace into *fault epochs* at the given authoritative
/// fault steps (mid-run transient-fault injections): epoch `k` holds every
/// entry whose step is at least the `k`-th fault step and below the next
/// one. The fault mark itself opens its epoch, so everything *caused* by
/// the corrupted state (stamped at later steps) is judged inside the new
/// epoch. With no faults the whole trace is one epoch.
///
/// This is the executable rendering of the paper's footnote-1 semantics
/// extended to faults landing mid-run: guarantees re-attach to every
/// request started after the last transient fault, so each epoch is judged
/// as a fresh snap-stabilizing run whose "arbitrary initial configuration"
/// is whatever the fault left behind.
pub fn split_at_faults<M: Clone, E: Clone>(
    trace: &Trace<M, E>,
    faults: &[u64],
) -> Vec<Trace<M, E>> {
    let faults = normalize_faults(faults);
    let mut parts: Vec<Trace<M, E>> = (0..=faults.len()).map(|_| Trace::new()).collect();
    for te in trace.iter() {
        let k = faults.partition_point(|&f| f <= te.step);
        parts[k].push(te.step, te.event.clone());
    }
    parts
}

/// One epoch's Specification 3 verdict — see [`analyze_me_epochs`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct MeEpochVerdict {
    /// First step of the epoch: 0, or the fault step that opened it.
    pub start: u64,
    /// The plain Specification 3 report over this epoch's sub-trace.
    /// In non-final epochs its `unserved` list has been emptied into
    /// [`MeEpochVerdict::interrupted`].
    pub report: MeReport,
    /// Requests pending when the epoch's closing fault landed: in-flight
    /// at a fault boundary, so footnote 1 voids their guarantee. They are
    /// *classified* here — visible, counted — rather than silently
    /// excused, exactly like stale forwarding entries.
    pub interrupted: Vec<(ProcessId, u64)>,
}

/// Epoch-segmented Specification 3 verdict — see [`analyze_me_epochs`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct MeEpochReport {
    /// Per-epoch verdicts, chronological; always at least one.
    pub epochs: Vec<MeEpochVerdict>,
    /// `(process, step, label)` of chaos-prefixed markers at steps the
    /// harness did not vouch for. Non-empty ⇒ the trace is untrustworthy
    /// and the verdict fails.
    pub forged_marks: Vec<(ProcessId, u64, String)>,
}

impl MeEpochReport {
    /// True if the epoch-segmented Specification 3 holds: no forged fault
    /// marks, and within every epoch no two genuine CS executions overlap
    /// and every request *started in that epoch and not interrupted by
    /// its closing fault* was served in it.
    pub fn holds(&self) -> bool {
        self.forged_marks.is_empty()
            && self
                .epochs
                .iter()
                .all(|e| e.report.exclusivity_holds() && e.report.all_served())
    }

    /// Number of epochs judged.
    pub fn epochs_checked(&self) -> usize {
        self.epochs.len()
    }

    /// Requests served across all epochs.
    pub fn served_total(&self) -> usize {
        self.epochs.iter().map(|e| e.report.served.len()).sum()
    }

    /// Requests interrupted at fault boundaries across all epochs.
    pub fn interrupted_total(&self) -> usize {
        self.epochs.iter().map(|e| e.interrupted.len()).sum()
    }
}

/// Epoch-segmented Specification 3: splits the trace at the authoritative
/// fault steps ([`split_at_faults`]) and runs [`analyze_me_trace`] per
/// epoch. Requests started after the last fault of an epoch must satisfy
/// the specification exactly; requests in flight when a fault lands are
/// reclassified from `unserved` to [`MeEpochVerdict::interrupted`]
/// (classified, not excused — footnote 1 voids only *their* guarantee).
/// A CS interval crossing a boundary is judged non-genuine in the new
/// epoch (its request marker belongs to the old one), so it can never
/// mask a post-fault exclusivity violation. Chaos-prefixed markers not in
/// `faults` are collected as [`MeEpochReport::forged_marks`] and fail the
/// verdict.
pub fn analyze_me_epochs<M: Message>(
    trace: &Trace<M, MeEvent>,
    n: usize,
    faults: &[u64],
) -> MeEpochReport {
    let faults = normalize_faults(faults);
    let forged_marks = forged_chaos_marks(trace, &faults);
    let parts = split_at_faults(trace, &faults);
    let last = parts.len() - 1;
    let epochs = parts
        .iter()
        .enumerate()
        .map(|(k, part)| {
            let mut report = analyze_me_trace(part, n);
            let interrupted = if k < last {
                std::mem::take(&mut report.unserved)
            } else {
                Vec::new()
            };
            MeEpochVerdict {
                start: if k == 0 { 0 } else { faults[k - 1] },
                report,
                interrupted,
            }
        })
        .collect();
    MeEpochReport {
        epochs,
        forged_marks,
    }
}

/// One epoch's Specification 4 verdict — see
/// [`analyze_forwarding_epochs`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ForwardingEpochVerdict {
    /// First step of the epoch: 0, or the fault step that opened it.
    pub start: u64,
    /// The plain Specification 4 report over this epoch's sub-trace. In
    /// non-final epochs its `lost` list has been emptied into
    /// [`ForwardingEpochVerdict::interrupted`].
    pub report: ForwardingReport,
    /// Payloads injected in this epoch but still in flight when its
    /// closing fault landed — classified, not silently excused.
    pub interrupted: Vec<Payload>,
}

/// Epoch-segmented Specification 4 verdict — see
/// [`analyze_forwarding_epochs`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ForwardingEpochReport {
    /// Per-epoch verdicts, chronological; always at least one.
    pub epochs: Vec<ForwardingEpochVerdict>,
    /// Forged chaos marks (see [`MeEpochReport::forged_marks`]).
    pub forged_marks: Vec<(ProcessId, u64, String)>,
    /// Ids injected in one epoch and delivered in a *later* one: the
    /// fault between voids their exactly-once guarantee (their deliveries
    /// land in the later epoch's `spurious`/`stale_duplicates` counts),
    /// but they are classified here so boundary-crossers stay visible.
    pub crossing: Vec<u64>,
}

impl ForwardingEpochReport {
    /// True if the epoch-segmented Specification 4 holds: no forged fault
    /// marks, and within every epoch no duplicated injected id, no
    /// corrupted delivery, and every payload injected after the epoch's
    /// opening fault and not interrupted by its closing one delivered in
    /// it.
    pub fn holds(&self) -> bool {
        self.forged_marks.is_empty()
            && self.epochs.iter().all(|e| {
                e.report.duplicate_ids.is_empty()
                    && e.report.corrupt_deliveries.is_empty()
                    && e.report.lost.is_empty()
            })
    }

    /// Number of epochs judged.
    pub fn epochs_checked(&self) -> usize {
        self.epochs.len()
    }

    /// Payloads delivered intact within their own epoch, across epochs.
    pub fn delivered_total(&self) -> usize {
        self.epochs.iter().map(|e| e.report.delivered.len()).sum()
    }

    /// Payloads interrupted at fault boundaries across all epochs.
    pub fn interrupted_total(&self) -> usize {
        self.epochs.iter().map(|e| e.interrupted.len()).sum()
    }
}

/// Epoch-segmented Specification 4: splits the trace at the authoritative
/// fault steps and runs [`analyze_forwarding_trace`] per epoch. Payloads
/// injected after the last fault of an epoch must be delivered exactly
/// once within it; payloads in flight at a fault boundary are reclassified
/// from `lost` to [`ForwardingEpochVerdict::interrupted`], and deliveries
/// of pre-fault ids landing after the fault are classified in
/// [`ForwardingEpochReport::crossing`]. Forged chaos marks fail the
/// verdict.
pub fn analyze_forwarding_epochs<M: Message>(
    trace: &Trace<M, ForwardEvent>,
    n: usize,
    faults: &[u64],
) -> ForwardingEpochReport {
    let faults = normalize_faults(faults);
    let forged_marks = forged_chaos_marks(trace, &faults);
    let parts = split_at_faults(trace, &faults);
    let last = parts.len() - 1;

    // Classify boundary-crossing ids from the whole trace: injection
    // epoch per id, then any delivery of it in a strictly later epoch.
    let epoch_of = |step: u64| faults.partition_point(|&f| f <= step);
    let mut inject_epoch: HashMap<u64, usize> = HashMap::new();
    for (step, _, event) in trace.protocol_events() {
        if let ForwardEvent::Injected { payload } = event {
            inject_epoch.entry(payload.id).or_insert(epoch_of(step));
        }
    }
    let mut crossing: Vec<u64> = trace
        .protocol_events()
        .filter_map(|(step, _, event)| match event {
            ForwardEvent::Delivered { payload, .. } => inject_epoch
                .get(&payload.id)
                .filter(|&&inj| epoch_of(step) > inj)
                .map(|_| payload.id),
            _ => None,
        })
        .collect();
    crossing.sort_unstable();
    crossing.dedup();

    let epochs = parts
        .iter()
        .enumerate()
        .map(|(k, part)| {
            let mut report = analyze_forwarding_trace(part, n);
            let interrupted = if k < last {
                std::mem::take(&mut report.lost)
            } else {
                Vec::new()
            };
            ForwardingEpochVerdict {
                start: if k == 0 { 0 } else { faults[k - 1] },
                report,
                interrupted,
            }
        })
        .collect();
    ForwardingEpochReport {
        epochs,
        forged_marks,
        crossing,
    }
}

/// Property 1: after a complete PIF from `p`, no initial-configuration
/// message survives in the channels from and to `p`. `is_junk` identifies
/// the pre-loaded messages (tests use sentinel payloads).
pub fn channels_flushed<M: Message>(
    network: &Network<M>,
    p: ProcessId,
    mut is_junk: impl FnMut(&M) -> bool,
) -> bool {
    for i in 0..network.n() {
        if i == p.index() {
            continue;
        }
        let q = ProcessId::new(i);
        for (a, b) in [(p, q), (q, p)] {
            let ch = network.channel(a, b).expect("valid link");
            if ch.iter().any(&mut is_junk) {
                return false;
            }
        }
    }
    true
}

/// One decided monitoring cut extracted from a trace — see
/// [`analyze_snapshot_trace`] (Specification 5).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SnapshotCut {
    /// The process whose monitor initiated the wave.
    pub initiator: ProcessId,
    /// Requester-assigned wave id (from the matching `CutStarted`).
    pub cut: u64,
    /// Step of the matching [`MonitorEvent::CutStarted`].
    pub started: u64,
    /// Step of the [`MonitorEvent::CutDecided`].
    pub decided: u64,
    /// The collected global cut, `values[i]` reported by process `i`.
    pub values: Vec<ProbeDigest>,
    /// True when an authoritative fault step lands inside
    /// `started..=decided`: footnote 1 voids this cut's consistency
    /// guarantee, so the causal and liveness checks are skipped for it
    /// (classified, not excused — it stays visible in the report).
    pub interrupted: bool,
}

/// Specification 5 verdict — see [`analyze_snapshot_trace`].
///
/// Decided cuts land in [`SnapshotReport::cuts`]; refused and pending
/// waves are *recorded* (they are always legal — a corrupted monitor
/// must refuse rather than invent a cut) while the four violation lists
/// plus forged fault marks fail [`SnapshotReport::holds`].
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct SnapshotReport {
    /// Every decided cut, in decision order.
    pub cuts: Vec<SnapshotCut>,
    /// `(initiator, cut)` waves explicitly refused. Always legal.
    pub refused: Vec<(ProcessId, u64)>,
    /// `(initiator, cut)` waves started but still undecided at trace
    /// end. Always legal (the run simply stopped first).
    pub pending: Vec<(ProcessId, u64)>,
    /// `(initiator, cut)` decisions with **no matching earlier start**
    /// (or a second decision for an already-consumed wave): a cut the
    /// monitor fabricated out of corrupted state instead of refusing.
    pub fabricated: Vec<(ProcessId, u64)>,
    /// `(initiator, cut)` decided cuts that do not report **exactly one
    /// value per process** (wrong arity, or `values[i].proc != i` —
    /// which covers two values for one process at the cost of a
    /// missing one).
    pub torn: Vec<(ProcessId, u64)>,
    /// `(initiator, cut, reporter)` values in clean cuts attributed to
    /// a process that was crashed for the wave's **entire** interval —
    /// a dead process cannot have answered, so the value is invented.
    pub crashed_values: Vec<(ProcessId, u64, ProcessId)>,
    /// `(initiator, cut, reporter)` values in clean cuts whose `served`
    /// gauge is causally impossible against the surrounding service
    /// trace: below the reporter's `"served"`-marker count before the
    /// wave started, or above its count at decision. The former is the
    /// "unserved at p / already granted earlier in merged order"
    /// inconsistency; the latter reports a serve from the future.
    pub causal_violations: Vec<(ProcessId, u64, ProcessId)>,
    /// Chaos-prefixed markers at steps the harness did not vouch for —
    /// same trust rule as the epoch checkers ([`CHAOS_MARK_PREFIX`]).
    pub forged_marks: Vec<(ProcessId, u64, String)>,
}

impl SnapshotReport {
    /// True if Specification 5 holds: no fabricated or torn cuts, no
    /// values from crashed processes, no causal violations, and no
    /// forged fault marks. Refused and pending waves never fail it.
    pub fn holds(&self) -> bool {
        self.fabricated.is_empty()
            && self.torn.is_empty()
            && self.crashed_values.is_empty()
            && self.causal_violations.is_empty()
            && self.forged_marks.is_empty()
    }

    /// Number of decided cuts (clean and interrupted).
    pub fn cuts_decided(&self) -> usize {
        self.cuts.len()
    }

    /// Decided cuts whose interval contained no authoritative fault.
    pub fn clean_cuts(&self) -> usize {
        self.cuts.iter().filter(|c| !c.interrupted).count()
    }

    /// Decided cuts voided by a mid-wave fault (classified, not hidden).
    pub fn interrupted_total(&self) -> usize {
        self.cuts.iter().filter(|c| c.interrupted).count()
    }

    /// Decided cuts attributed to `initiator`'s ledger.
    pub fn cuts_of(&self, initiator: ProcessId) -> usize {
        self.cuts
            .iter()
            .filter(|c| c.initiator == initiator)
            .count()
    }

    /// Refused waves attributed to `initiator`'s ledger.
    pub fn refused_of(&self, initiator: ProcessId) -> usize {
        self.refused
            .iter()
            .filter(|&&(p, _)| p == initiator)
            .count()
    }

    /// Every initiator with at least one wave in the trace — decided,
    /// refused, or pending — ascending by process id. In a K-initiator
    /// run this recovers which ledgers were actually active.
    pub fn initiators(&self) -> Vec<ProcessId> {
        let mut ids: Vec<ProcessId> = self
            .cuts
            .iter()
            .map(|c| c.initiator)
            .chain(self.refused.iter().map(|&(p, _)| p))
            .chain(self.pending.iter().map(|&(p, _)| p))
            .collect();
        ids.sort_by_key(|p| p.index());
        ids.dedup();
        ids
    }

    /// Longest run of consecutive refusals on `initiator`'s ledger, in
    /// request (cut-id) order — cut ids are requester-assigned and
    /// monotone per ledger, so this is the order the waves were asked
    /// in. This is the signal the runtime's telemetry refusal-streak
    /// alert thresholds; pending waves neither extend nor reset a run.
    pub fn max_refusal_streak_of(&self, initiator: ProcessId) -> usize {
        let mut outcomes: Vec<(u64, bool)> = self
            .refused
            .iter()
            .filter(|&&(p, _)| p == initiator)
            .map(|&(_, c)| (c, true))
            .chain(
                self.cuts
                    .iter()
                    .filter(|c| c.initiator == initiator)
                    .map(|c| (c.cut, false)),
            )
            .collect();
        outcomes.sort_unstable_by_key(|&(c, _)| c);
        let (mut best, mut run) = (0usize, 0usize);
        for (_, refused) in outcomes {
            if refused {
                run += 1;
                best = best.max(run);
            } else {
                run = 0;
            }
        }
        best
    }
}

/// **Specification 5** (observability): judges the monitoring cuts a
/// live run's merged trace contains. Works over any event type that
/// embeds [`MonitorEvent`] via [`MonitorEventView`] — the runtime's
/// composite `MonitoredEvent<E>`, or bare [`MonitorEvent`] in crafted
/// adversarial traces.
///
/// Per initiator, waves are paired by id: a `CutStarted` opens the
/// wave, and the matching `CutDecided`/`CutRefused` consumes it. The
/// checks, in the order they gate each other:
///
/// 1. **No fabrication** — a decision with no open matching wave (or a
///    duplicate decision) is [`SnapshotReport::fabricated`]. Corrupted
///    monitor state may *refuse* a wave; it may never invent one.
/// 2. **One value per live process** — every decided cut must carry
///    exactly `n` values with `values[i].proc == i`, else it is
///    [`SnapshotReport::torn`]. Checked even on interrupted cuts: the
///    monitor locally validates collections before deciding, so a
///    malformed vector is always a monitor bug, never a fault artifact.
/// 3. **No values from the dead** — on clean cuts, a value from a
///    process whose `"crash"`/`"restart"` marker window covers the
///    whole wave interval is [`SnapshotReport::crashed_values`].
/// 4. **Causal consistency** — on clean cuts, each reporter's `served`
///    gauge must lie between that process's `"served"`-marker count
///    just before the wave started and its count at decision
///    (responder digests are captured at broadcast-receive time, which
///    falls inside the interval). A cut reporting a request as still
///    unserved at `p` after the merged trace shows it granted — or as
///    served before it happened — is [`SnapshotReport::causal_violations`].
///
/// Cuts whose interval `started..=decided` contains an authoritative
/// fault step are marked [`SnapshotCut::interrupted`] and exempted from
/// checks 3–4 (footnote-1 semantics, exactly like the epoch checkers);
/// forged chaos marks fail the verdict on the same trust rule.
pub fn analyze_snapshot_trace<M, E>(trace: &Trace<M, E>, n: usize, faults: &[u64]) -> SnapshotReport
where
    M: Message,
    E: MonitorEventView + Clone + std::fmt::Debug + PartialEq + 'static,
{
    let faults = normalize_faults(faults);
    let mut report = SnapshotReport {
        forged_marks: forged_chaos_marks(trace, &faults),
        ..SnapshotReport::default()
    };

    // Crash windows and serve counters per process, from the runtime's
    // standard markers ("crash"/"restart" from the harness, "served"
    // from the service drivers).
    let mut crash_windows: Vec<Vec<(u64, u64)>> = vec![Vec::new(); n];
    let mut open_crash: Vec<Option<u64>> = vec![None; n];
    let mut serves: Vec<Vec<u64>> = vec![Vec::new(); n];
    for (step, q, label) in trace.markers() {
        if q.index() >= n {
            continue;
        }
        match label {
            "crash" if open_crash[q.index()].is_none() => {
                open_crash[q.index()] = Some(step);
            }
            "restart" => {
                if let Some(c) = open_crash[q.index()].take() {
                    crash_windows[q.index()].push((c, step));
                }
            }
            "served" => serves[q.index()].push(step),
            _ => {}
        }
    }
    for (i, c) in open_crash.into_iter().enumerate() {
        if let Some(c) = c {
            crash_windows[i].push((c, u64::MAX));
        }
    }
    for s in &mut serves {
        s.sort_unstable();
    }

    for i in 0..n {
        let p = ProcessId::new(i);
        // Open waves at this initiator: cut id → start step.
        let mut open: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
        for (step, e) in trace.protocol_events_of(p) {
            let Some(me) = e.as_monitor() else { continue };
            match me {
                MonitorEvent::CutStarted { cut } => {
                    open.insert(*cut, step);
                }
                MonitorEvent::CutRefused { cut } => {
                    open.remove(cut);
                    report.refused.push((p, *cut));
                }
                MonitorEvent::CutDecided { cut, values } => {
                    let Some(started) = open.remove(cut) else {
                        report.fabricated.push((p, *cut));
                        continue;
                    };
                    let interrupted = faults.iter().any(|f| (started..=step).contains(f));
                    let well_formed = values.len() == n
                        && values.iter().enumerate().all(|(j, v)| v.proc as usize == j);
                    if !well_formed {
                        report.torn.push((p, *cut));
                    }
                    if well_formed && !interrupted {
                        for (j, v) in values.iter().enumerate() {
                            let q = ProcessId::new(j);
                            if crash_windows[j]
                                .iter()
                                .any(|&(c, r)| c <= started && step <= r)
                            {
                                report.crashed_values.push((p, *cut, q));
                                continue;
                            }
                            let lo = serves[j].partition_point(|&s| s < started) as u64;
                            let hi = serves[j].partition_point(|&s| s <= step) as u64;
                            if v.served < lo || v.served > hi {
                                report.causal_violations.push((p, *cut, q));
                            }
                        }
                    }
                    report.cuts.push(SnapshotCut {
                        initiator: p,
                        cut: *cut,
                        started,
                        decided: step,
                        values: values.clone(),
                        interrupted,
                    });
                }
            }
        }
        let mut left: Vec<u64> = open.into_keys().collect();
        left.sort_unstable();
        report.pending.extend(left.into_iter().map(|c| (p, c)));
    }
    report
        .cuts
        .sort_by_key(|c| (c.decided, c.initiator.index(), c.cut));
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forward::ForwardMsg;
    use snapstab_sim::TraceEvent;

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    type PTrace = Trace<PifMsg<u32, u32>, PifEvent<u32, u32>>;

    /// Hand-builds the trace of a perfect 2-process wave and checks the
    /// verdict.
    #[test]
    fn pif_verdict_happy_path() {
        let mut t = PTrace::new();
        t.push_marker(0, p(0), "request");
        t.push(
            1,
            TraceEvent::Protocol {
                p: p(0),
                event: PifEvent::Started,
            },
        );
        t.push(
            5,
            TraceEvent::Protocol {
                p: p(1),
                event: PifEvent::ReceiveBrd {
                    from: p(0),
                    data: 7,
                },
            },
        );
        t.push(
            6,
            TraceEvent::Protocol {
                p: p(0),
                event: PifEvent::ReceiveFck {
                    from: p(1),
                    data: 101,
                },
            },
        );
        t.push(
            7,
            TraceEvent::Protocol {
                p: p(0),
                event: PifEvent::Decided,
            },
        );
        let v = check_bare_pif_wave(&t, p(0), 2, 0, &7, |_| 101);
        assert!(v.holds(), "{v:?}");
        assert_eq!(v.wave_steps(), Some(6));
    }

    #[test]
    fn pif_verdict_detects_missing_broadcast() {
        let mut t = PTrace::new();
        t.push(
            1,
            TraceEvent::Protocol {
                p: p(0),
                event: PifEvent::Started,
            },
        );
        t.push(
            6,
            TraceEvent::Protocol {
                p: p(0),
                event: PifEvent::ReceiveFck {
                    from: p(1),
                    data: 101,
                },
            },
        );
        t.push(
            7,
            TraceEvent::Protocol {
                p: p(0),
                event: PifEvent::Decided,
            },
        );
        let v = check_bare_pif_wave(&t, p(0), 2, 0, &7, |_| 101);
        assert!(!v.broadcasts_received);
        assert!(!v.holds());
    }

    #[test]
    fn pif_verdict_detects_wrong_feedback_data() {
        let mut t = PTrace::new();
        t.push(
            1,
            TraceEvent::Protocol {
                p: p(0),
                event: PifEvent::Started,
            },
        );
        t.push(
            2,
            TraceEvent::Protocol {
                p: p(1),
                event: PifEvent::ReceiveBrd {
                    from: p(0),
                    data: 7,
                },
            },
        );
        t.push(
            3,
            TraceEvent::Protocol {
                p: p(0),
                event: PifEvent::ReceiveFck {
                    from: p(1),
                    data: 666,
                },
            },
        );
        t.push(
            4,
            TraceEvent::Protocol {
                p: p(0),
                event: PifEvent::Decided,
            },
        );
        let v = check_bare_pif_wave(&t, p(0), 2, 0, &7, |_| 101);
        assert!(!v.feedbacks_received);
        assert!(!v.decision_exact);
    }

    #[test]
    fn pif_verdict_detects_duplicate_feedbacks() {
        let mut t = PTrace::new();
        t.push(
            1,
            TraceEvent::Protocol {
                p: p(0),
                event: PifEvent::Started,
            },
        );
        for q in [1usize, 2] {
            t.push(
                2 + q as u64,
                TraceEvent::Protocol {
                    p: p(q),
                    event: PifEvent::ReceiveBrd {
                        from: p(0),
                        data: 7,
                    },
                },
            );
        }
        for (s, from) in [(5, 1usize), (6, 2), (7, 1)] {
            t.push(
                s,
                TraceEvent::Protocol {
                    p: p(0),
                    event: PifEvent::ReceiveFck {
                        from: p(from),
                        data: 101,
                    },
                },
            );
        }
        t.push(
            9,
            TraceEvent::Protocol {
                p: p(0),
                event: PifEvent::Decided,
            },
        );
        let v = check_bare_pif_wave(&t, p(0), 3, 0, &7, |_| 101);
        assert!(v.feedbacks_received);
        assert!(!v.decision_exact, "three fck events for two neighbors");
    }

    #[test]
    fn pif_verdict_unstarted() {
        let t = PTrace::new();
        let v = check_bare_pif_wave(&t, p(0), 2, 0, &7, |_| 101);
        assert!(!v.started && !v.holds());
    }

    #[test]
    fn idl_verdict_checks_values() {
        let mut core = IdlCore::new(p(0), 3, 30);
        core.on_feedback_id(p(1), 10);
        core.on_feedback_id(p(2), 20);
        let v = check_idl_result(&core, p(0), &[30, 10, 20], true, true);
        assert!(v.holds());
        let v = check_idl_result(&core, p(0), &[30, 11, 20], true, true);
        assert!(!v.id_tab_correct);
        let mut wrong = IdlCore::new(p(0), 3, 30);
        wrong.on_feedback_id(p(1), 10);
        wrong.on_feedback_id(p(2), 20);
        let v = check_idl_result(&wrong, p(0), &[30, 10, 5], true, true);
        assert!(!v.min_id_correct);
    }

    #[test]
    fn cs_interval_overlap_geometry() {
        let a = CsInterval {
            p: p(0),
            enter: 5,
            exit: 9,
            genuine: true,
        };
        let b = CsInterval {
            p: p(1),
            enter: 9,
            exit: 12,
            genuine: true,
        };
        let c = CsInterval {
            p: p(2),
            enter: 10,
            exit: 10,
            genuine: true,
        };
        assert!(a.overlaps(&b), "shared endpoint counts");
        assert!(!a.overlaps(&c));
        assert!(b.overlaps(&c));
    }

    type MTrace = Trace<crate::me::MeMsg, MeEvent>;

    #[test]
    fn me_report_classifies_genuine_and_spurious() {
        let mut t = MTrace::new();
        // P0: genuine request -> started -> CS [10, 12] -> served.
        t.push_marker(1, p(0), "request");
        t.push(
            2,
            TraceEvent::Protocol {
                p: p(0),
                event: MeEvent::Started,
            },
        );
        t.push(
            10,
            TraceEvent::Protocol {
                p: p(0),
                event: MeEvent::CsEnter,
            },
        );
        t.push(
            12,
            TraceEvent::Protocol {
                p: p(0),
                event: MeEvent::CsExit,
            },
        );
        t.push(
            12,
            TraceEvent::Protocol {
                p: p(0),
                event: MeEvent::Served,
            },
        );
        // P1: spurious CS (no request, corrupted Request=In) at [11, 11].
        t.push(
            11,
            TraceEvent::Protocol {
                p: p(1),
                event: MeEvent::CsEnter,
            },
        );
        t.push(
            11,
            TraceEvent::Protocol {
                p: p(1),
                event: MeEvent::CsExit,
            },
        );
        let r = analyze_me_trace(&t, 3);
        assert_eq!(r.intervals.len(), 2);
        assert!(r.exclusivity_holds(), "spurious overlap is not a violation");
        assert_eq!(r.spurious_overlaps.len(), 1);
        assert_eq!(r.served, vec![(p(0), 1, 12)]);
        assert!(r.all_served());
        assert_eq!(r.latencies(), vec![11]);
    }

    #[test]
    fn me_report_flags_genuine_overlap() {
        let mut t = MTrace::new();
        for (i, enter, exit) in [(0usize, 10u64, 14u64), (1, 12, 13)] {
            t.push_marker(1, p(i), "request");
            t.push(
                2,
                TraceEvent::Protocol {
                    p: p(i),
                    event: MeEvent::Started,
                },
            );
            t.push(
                enter,
                TraceEvent::Protocol {
                    p: p(i),
                    event: MeEvent::CsEnter,
                },
            );
            t.push(
                exit,
                TraceEvent::Protocol {
                    p: p(i),
                    event: MeEvent::CsExit,
                },
            );
            t.push(
                exit,
                TraceEvent::Protocol {
                    p: p(i),
                    event: MeEvent::Served,
                },
            );
        }
        let r = analyze_me_trace(&t, 2);
        assert_eq!(r.genuine_overlaps.len(), 1);
        assert!(!r.exclusivity_holds());
    }

    #[test]
    fn me_report_tracks_unserved() {
        let mut t = MTrace::new();
        t.push_marker(3, p(1), "request");
        let r = analyze_me_trace(&t, 2);
        assert_eq!(r.unserved, vec![(p(1), 3)]);
        assert!(!r.all_served());
    }

    #[test]
    fn me_report_closes_interval_at_trace_end() {
        let mut t = MTrace::new();
        t.push(
            4,
            TraceEvent::Protocol {
                p: p(0),
                event: MeEvent::CsEnter,
            },
        );
        let r = analyze_me_trace(&t, 1);
        assert_eq!(r.intervals.len(), 1);
        assert_eq!(r.intervals[0].exit, 4);
        assert!(!r.intervals[0].genuine);
    }

    type FTrace = Trace<ForwardMsg, ForwardEvent>;

    fn fwd_payload(src: usize, dst: usize, id: u64) -> Payload {
        Payload {
            src: src as u16,
            dst: dst as u16,
            id,
            data: 0xF00D_0000 + id,
        }
    }

    fn push_injected(t: &mut FTrace, step: u64, m: Payload) {
        t.push(
            step,
            TraceEvent::Protocol {
                p: p(m.src as usize),
                event: ForwardEvent::Injected { payload: m },
            },
        );
    }

    fn push_delivered(t: &mut FTrace, step: u64, at: usize, m: Payload) {
        t.push(
            step,
            TraceEvent::Protocol {
                p: p(at),
                event: ForwardEvent::Delivered {
                    payload: m,
                    from: p(if at > 0 { at - 1 } else { at + 1 }),
                },
            },
        );
    }

    /// Hand-builds the trace of a perfect two-payload run and checks the
    /// verdict, including latencies.
    #[test]
    fn forwarding_verdict_happy_path() {
        let mut t = FTrace::new();
        let a = fwd_payload(0, 2, 1);
        let b = fwd_payload(2, 0, 2);
        push_injected(&mut t, 1, a);
        push_injected(&mut t, 2, b);
        push_delivered(&mut t, 9, 2, a);
        push_delivered(&mut t, 12, 0, b);
        let r = analyze_forwarding_trace(&t, 3);
        assert!(r.holds(), "{r:?}");
        assert_eq!(r.injected.len(), 2);
        assert_eq!(r.delivered.len(), 2);
        assert_eq!(r.latencies(), vec![8, 10]);
        assert_eq!(r.spurious, 0);
    }

    /// A duplicated delivery of an injected payload must be rejected.
    #[test]
    fn forwarding_verdict_rejects_duplicated_delivery() {
        let mut t = FTrace::new();
        let m = fwd_payload(0, 2, 7);
        push_injected(&mut t, 1, m);
        push_delivered(&mut t, 5, 2, m);
        push_delivered(&mut t, 9, 2, m);
        let r = analyze_forwarding_trace(&t, 3);
        assert_eq!(r.duplicate_ids, vec![7]);
        assert!(!r.holds());
    }

    /// A lost accepted payload (injected, never delivered) must be
    /// rejected.
    #[test]
    fn forwarding_verdict_rejects_lost_payload() {
        let mut t = FTrace::new();
        let m = fwd_payload(1, 0, 3);
        push_injected(&mut t, 4, m);
        let r = analyze_forwarding_trace(&t, 3);
        assert_eq!(r.lost, vec![m]);
        assert!(!r.holds());
    }

    /// A stale pre-filled buffer entry masquerading as an injected
    /// payload — same id, corrupted data — must be rejected; and even a
    /// purely stale id flushed twice is a duplication violation.
    #[test]
    fn forwarding_verdict_rejects_stale_prefilled_entry() {
        // Forged data under a genuine id.
        let mut t = FTrace::new();
        let m = fwd_payload(0, 2, 5);
        push_injected(&mut t, 1, m);
        push_delivered(&mut t, 6, 2, Payload { data: 0xBAD, ..m });
        let r = analyze_forwarding_trace(&t, 3);
        assert_eq!(r.corrupt_deliveries.len(), 1);
        assert!(!r.holds());

        // A stale id (never injected) flushed twice: reported as a stale
        // duplicate but not a violation — the guarantee attaches at
        // injection (footnote 1), and injected handshakes always start
        // from flag 0 where Theorem 2's budget protects them.
        let mut t = FTrace::new();
        let stale = fwd_payload(0, 2, crate::forward::STALE_ID_BIT | 9);
        push_delivered(&mut t, 3, 2, stale);
        push_delivered(&mut t, 8, 2, stale);
        let r = analyze_forwarding_trace(&t, 3);
        assert_eq!(r.stale_duplicates, vec![stale.id]);
        assert!(r.duplicate_ids.is_empty());
        assert!(r.holds(), "{r:?}");

        // Delivered once: spurious, allowed.
        let mut t = FTrace::new();
        push_delivered(&mut t, 3, 2, stale);
        let r = analyze_forwarding_trace(&t, 3);
        assert!(r.holds(), "{r:?}");
        assert_eq!(r.spurious, 1);
        assert!(r.stale_duplicates.is_empty());
    }

    /// An injection naming endpoints outside the system yields a
    /// failing verdict — not a panic — matching every other checker's
    /// contract.
    #[test]
    fn forwarding_verdict_rejects_out_of_system_injection() {
        let mut t = FTrace::new();
        let m = Payload {
            src: 99,
            dst: 1,
            id: 13,
            data: 0,
        };
        t.push(
            1,
            TraceEvent::Protocol {
                p: p(0),
                event: ForwardEvent::Injected { payload: m },
            },
        );
        push_delivered(&mut t, 5, 1, m);
        let r = analyze_forwarding_trace(&t, 3);
        assert!(!r.holds(), "{r:?}");
        assert!(r.corrupt_deliveries.contains(&m));
    }

    /// Delivery at the wrong process, or "delivered" before injection
    /// (a causality forgery), is an integrity violation.
    #[test]
    fn forwarding_verdict_rejects_misdelivery_and_time_travel() {
        let mut t = FTrace::new();
        let m = fwd_payload(0, 2, 11);
        push_injected(&mut t, 4, m);
        push_delivered(&mut t, 9, 1, m); // wrong process
        let r = analyze_forwarding_trace(&t, 3);
        assert_eq!(r.corrupt_deliveries.len(), 1);
        assert!(!r.holds());

        let mut t = FTrace::new();
        push_delivered(&mut t, 2, 2, m); // before the injection
        push_injected(&mut t, 4, m);
        let r = analyze_forwarding_trace(&t, 3);
        assert!(!r.holds(), "{r:?}");
    }

    /// Pushes the full genuine service pattern for one request at `p_i`:
    /// request marker, Started, CS `[enter, enter]`, Served.
    fn push_served_request(t: &mut MTrace, p_i: usize, req: u64, enter: u64) {
        t.push_marker(req, p(p_i), "request");
        for (step, event) in [
            (req + 1, MeEvent::Started),
            (enter, MeEvent::CsEnter),
            (enter, MeEvent::CsExit),
            (enter, MeEvent::Served),
        ] {
            t.push(step, TraceEvent::Protocol { p: p(p_i), event });
        }
    }

    #[test]
    fn split_at_faults_opens_epoch_at_fault_step() {
        let mut t = MTrace::new();
        t.push_marker(3, p(0), "request");
        t.push_marker(5, p(1), "chaos:corrupt");
        t.push_marker(7, p(0), "request");
        let parts = split_at_faults(&t, &[5]);
        assert_eq!(parts.len(), 2);
        assert_eq!(parts[0].len(), 1, "pre-fault entries only");
        // The fault mark itself opens the new epoch.
        let steps: Vec<u64> = parts[1].iter().map(|te| te.step).collect();
        assert_eq!(steps, vec![5, 7]);
        // No faults: one epoch, the whole trace.
        assert_eq!(split_at_faults(&t, &[]).len(), 1);
    }

    /// Fault mid-wave: the pre-fault request is classified `interrupted`
    /// (exempt from the epoch verdict), and the post-fault epoch is
    /// judged on its own.
    #[test]
    fn me_epochs_classify_prefault_request_as_interrupted() {
        let mut t = MTrace::new();
        // P0's request is in flight when the fault lands at step 10 —
        // never served.
        t.push_marker(4, p(0), "request");
        t.push(
            5,
            TraceEvent::Protocol {
                p: p(0),
                event: MeEvent::Started,
            },
        );
        t.push_marker(10, p(1), "chaos:corrupt");
        // P1's post-fault request runs the full genuine pattern.
        push_served_request(&mut t, 1, 12, 20);
        let r = analyze_me_epochs(&t, 2, &[10]);
        assert_eq!(r.epochs_checked(), 2);
        assert!(r.holds(), "{r:?}");
        assert_eq!(r.epochs[0].interrupted, vec![(p(0), 4)]);
        assert!(r.epochs[0].report.unserved.is_empty(), "moved, not kept");
        assert_eq!(r.epochs[1].start, 10);
        assert_eq!(r.served_total(), 1);
        assert_eq!(r.interrupted_total(), 1);
        // The same trace WITHOUT epoch segmentation fails: the plain
        // checker has no license to excuse the interrupted request.
        assert!(!analyze_me_trace(&t, 2).all_served());
    }

    /// A post-fault violation is NOT excused by the fault: two genuine
    /// overlapping CS executions inside the new epoch still fail.
    #[test]
    fn me_epochs_post_fault_violation_still_fails() {
        let mut t = MTrace::new();
        t.push_marker(5, p(0), "chaos:corrupt");
        // Both requests start after the fault; their CS intervals overlap.
        for (i, req, enter) in [(0usize, 10u64, 20u64), (1, 11, 20)] {
            push_served_request(&mut t, i, req, enter);
        }
        let r = analyze_me_epochs(&t, 2, &[5]);
        assert!(!r.holds());
        assert_eq!(r.epochs[1].report.genuine_overlaps.len(), 1);
        assert!(r.forged_marks.is_empty());
    }

    /// A CS interval crossing the fault boundary is non-genuine in the
    /// new epoch (its request belongs to the old one) — it cannot mask a
    /// violation, and it cannot count as service of the old request.
    #[test]
    fn me_epochs_boundary_crossing_interval_is_not_genuine() {
        let mut t = MTrace::new();
        t.push_marker(2, p(0), "request");
        t.push(
            3,
            TraceEvent::Protocol {
                p: p(0),
                event: MeEvent::Started,
            },
        );
        t.push(
            4,
            TraceEvent::Protocol {
                p: p(0),
                event: MeEvent::CsEnter,
            },
        );
        t.push_marker(6, p(1), "chaos:corrupt");
        // Exit + Served land after the fault.
        for event in [MeEvent::CsExit, MeEvent::Served] {
            t.push(8, TraceEvent::Protocol { p: p(0), event });
        }
        let r = analyze_me_epochs(&t, 2, &[6]);
        assert!(r.holds(), "{r:?}");
        // Old epoch: the request is interrupted, its interval closed at
        // the boundary. New epoch: no genuine interval, no served.
        assert_eq!(r.epochs[0].interrupted, vec![(p(0), 2)]);
        assert!(r.epochs[1].report.intervals.iter().all(|iv| !iv.genuine));
        assert_eq!(r.served_total(), 0);
    }

    /// Forged fault marks — chaos-prefixed markers at steps the harness
    /// did not vouch for — fail the verdict even on an otherwise clean
    /// trace.
    #[test]
    fn me_epochs_reject_forged_fault_marks() {
        let mut t = MTrace::new();
        push_served_request(&mut t, 0, 2, 8);
        // A protocol (or adversary) planting its own fault mark to buy an
        // excuse: not in the authoritative list.
        t.push_marker(5, p(0), "chaos:corrupt");
        let r = analyze_me_epochs(&t, 1, &[]);
        assert!(!r.holds());
        assert_eq!(r.forged_marks.len(), 1);
        assert_eq!(r.forged_marks[0].1, 5);
        // The same mark, vouched for, is fine.
        assert!(analyze_me_epochs(&t, 1, &[5]).holds());
        // Non-chaos markers are never forged marks.
        let mut clean = MTrace::new();
        push_served_request(&mut clean, 0, 2, 8);
        clean.push_marker(5, p(0), "crash");
        assert!(analyze_me_epochs(&clean, 1, &[]).holds());
    }

    #[test]
    fn me_epochs_with_no_faults_match_plain_checker() {
        let mut t = MTrace::new();
        push_served_request(&mut t, 0, 2, 8);
        push_served_request(&mut t, 1, 3, 12);
        let plain = analyze_me_trace(&t, 2);
        let epochs = analyze_me_epochs(&t, 2, &[]);
        assert_eq!(epochs.epochs_checked(), 1);
        assert_eq!(epochs.epochs[0].report, plain);
        assert!(epochs.holds());
    }

    /// Forwarding: a payload in flight at the fault boundary is
    /// interrupted; its post-fault delivery is classified `crossing`; a
    /// post-fault injected payload still gets the strict verdict.
    #[test]
    fn forwarding_epochs_classify_interrupted_and_crossing() {
        let mut t = FTrace::new();
        let a = fwd_payload(0, 2, 1); // in flight at the fault
        let b = fwd_payload(2, 0, 2); // injected + delivered post-fault
        push_injected(&mut t, 2, a);
        t.push_marker(5, p(1), "chaos:corrupt");
        push_injected(&mut t, 6, b);
        push_delivered(&mut t, 8, 2, a); // crosses the boundary
        push_delivered(&mut t, 9, 0, b);
        let r = analyze_forwarding_epochs(&t, 3, &[5]);
        assert!(r.holds(), "{r:?}");
        assert_eq!(r.epochs_checked(), 2);
        assert_eq!(r.epochs[0].interrupted, vec![a]);
        assert_eq!(r.crossing, vec![1]);
        assert_eq!(r.delivered_total(), 1, "only b counts in-epoch");
        // Without segmentation the same trace is simply clean (a was
        // delivered) — segmentation is *stricter* bookkeeping, looser
        // only about what the fault itself voided.
        assert!(analyze_forwarding_trace(&t, 3).holds());
    }

    /// A post-fault duplicate delivery of a post-fault injection still
    /// fails: the fault cannot excuse violations inside the new epoch.
    #[test]
    fn forwarding_epochs_post_fault_duplicate_fails() {
        let mut t = FTrace::new();
        t.push_marker(3, p(0), "chaos:corrupt");
        let m = fwd_payload(0, 2, 7);
        push_injected(&mut t, 4, m);
        push_delivered(&mut t, 6, 2, m);
        push_delivered(&mut t, 8, 2, m);
        let r = analyze_forwarding_epochs(&t, 3, &[3]);
        assert!(!r.holds());
        assert_eq!(r.epochs[1].report.duplicate_ids, vec![7]);
    }

    /// Forwarding: a lost payload in the FINAL epoch is a real loss —
    /// only a closing fault excuses in-flight payloads.
    #[test]
    fn forwarding_epochs_final_epoch_loss_fails() {
        let mut t = FTrace::new();
        t.push_marker(3, p(0), "chaos:corrupt");
        push_injected(&mut t, 5, fwd_payload(0, 2, 9));
        let r = analyze_forwarding_epochs(&t, 3, &[3]);
        assert!(!r.holds());
        assert_eq!(r.epochs[1].report.lost.len(), 1);
        assert_eq!(r.interrupted_total(), 0);
    }

    #[test]
    fn forwarding_epochs_reject_forged_marks() {
        let mut t = FTrace::new();
        let m = fwd_payload(0, 2, 4);
        push_injected(&mut t, 1, m);
        push_delivered(&mut t, 3, 2, m);
        t.push_marker(2, p(1), "chaos:restart-corrupt");
        let r = analyze_forwarding_epochs(&t, 3, &[]);
        assert!(!r.holds());
        assert_eq!(r.forged_marks.len(), 1);
        assert!(analyze_forwarding_epochs(&t, 3, &[2]).holds());
    }

    #[test]
    fn flush_checker_sees_junk() {
        use snapstab_sim::{Capacity, NetworkBuilder};
        let mut net: Network<u32> = NetworkBuilder::new(3)
            .capacity(Capacity::Bounded(1))
            .build();
        assert!(channels_flushed(&net, p(0), |m| *m == 666));
        net.channel_mut(p(1), p(0)).unwrap().preload([666]);
        assert!(!channels_flushed(&net, p(0), |m| *m == 666));
        // Junk on a link not incident to p is invisible to p's property.
        net.channel_mut(p(1), p(0)).unwrap().clear();
        net.channel_mut(p(1), p(2)).unwrap().preload([666]);
        assert!(channels_flushed(&net, p(0), |m| *m == 666));
    }

    // ---- Specification 5: crafted adversarial monitoring traces ----

    type STrace = Trace<(), MonitorEvent>;

    fn digest(proc_: usize, served: u64) -> ProbeDigest {
        ProbeDigest {
            proc: proc_ as u16,
            served,
            ..ProbeDigest::default()
        }
    }

    fn push_cut_started(t: &mut STrace, step: u64, init: usize, cut: u64) {
        t.push(
            step,
            TraceEvent::Protocol {
                p: p(init),
                event: MonitorEvent::CutStarted { cut },
            },
        );
    }

    fn push_cut_decided(
        t: &mut STrace,
        step: u64,
        init: usize,
        cut: u64,
        values: Vec<ProbeDigest>,
    ) {
        t.push(
            step,
            TraceEvent::Protocol {
                p: p(init),
                event: MonitorEvent::CutDecided { cut, values },
            },
        );
    }

    /// A clean wave at p0 over n=3 with causally possible values holds.
    #[test]
    fn snapshot_verdict_happy_path() {
        let mut t = STrace::new();
        t.push_marker(1, p(1), "served"); // before the wave: lo = 1 at p1
        push_cut_started(&mut t, 2, 0, 0);
        t.push_marker(4, p(2), "served"); // inside the wave: 0 or 1 legal at p2
        push_cut_decided(
            &mut t,
            6,
            0,
            0,
            vec![digest(0, 0), digest(1, 1), digest(2, 0)],
        );
        let r = analyze_snapshot_trace(&t, 3, &[]);
        assert!(r.holds(), "{r:?}");
        assert_eq!(r.cuts_decided(), 1);
        assert_eq!(r.clean_cuts(), 1);
        assert_eq!(r.cuts[0].started, 2);
        assert_eq!(r.cuts[0].decided, 6);
    }

    /// A decision with no matching started wave is fabricated, as is a
    /// duplicate decision for an already-consumed wave id.
    #[test]
    fn snapshot_rejects_fabricated_cut() {
        let mut t = STrace::new();
        push_cut_decided(&mut t, 4, 0, 7, vec![digest(0, 0), digest(1, 0)]);
        let r = analyze_snapshot_trace(&t, 2, &[]);
        assert!(!r.holds());
        assert_eq!(r.fabricated, vec![(p(0), 7)]);

        let mut t = STrace::new();
        push_cut_started(&mut t, 1, 0, 3);
        push_cut_decided(&mut t, 2, 0, 3, vec![digest(0, 0), digest(1, 0)]);
        push_cut_decided(&mut t, 5, 0, 3, vec![digest(0, 0), digest(1, 0)]);
        let r = analyze_snapshot_trace(&t, 2, &[]);
        assert!(!r.holds());
        assert_eq!(r.fabricated, vec![(p(0), 3)]);
        assert_eq!(r.cuts_decided(), 1, "the first decision is legitimate");
    }

    /// Torn cuts — wrong arity, or two values claiming one process (and
    /// hence a missing one) — are rejected even when a fault interrupts
    /// the wave: malformed vectors are monitor bugs, never fault debris.
    #[test]
    fn snapshot_rejects_torn_cut() {
        // Two values for p0, none for p1.
        let mut t = STrace::new();
        push_cut_started(&mut t, 1, 0, 0);
        push_cut_decided(&mut t, 4, 0, 0, vec![digest(0, 0), digest(0, 0)]);
        let r = analyze_snapshot_trace(&t, 2, &[]);
        assert!(!r.holds());
        assert_eq!(r.torn, vec![(p(0), 0)]);

        // Wrong arity: n-1 values.
        let mut t = STrace::new();
        push_cut_started(&mut t, 1, 1, 9);
        push_cut_decided(&mut t, 4, 1, 9, vec![digest(0, 0)]);
        let r = analyze_snapshot_trace(&t, 2, &[]);
        assert_eq!(r.torn, vec![(p(1), 9)]);

        // Still torn when a vouched fault lands mid-wave.
        let mut t = STrace::new();
        push_cut_started(&mut t, 1, 0, 0);
        t.push_marker(2, p(1), "chaos:corrupt");
        push_cut_decided(&mut t, 4, 0, 0, vec![digest(0, 0), digest(0, 0)]);
        let r = analyze_snapshot_trace(&t, 2, &[2]);
        assert!(!r.holds());
        assert_eq!(r.torn, vec![(p(0), 0)]);
        assert_eq!(r.interrupted_total(), 1);
    }

    /// A clean cut may not report a value from a process that was
    /// crashed for the wave's entire interval.
    #[test]
    fn snapshot_rejects_value_from_crashed_process() {
        let mut t = STrace::new();
        t.push_marker(0, p(1), "crash");
        push_cut_started(&mut t, 2, 0, 0);
        push_cut_decided(&mut t, 6, 0, 0, vec![digest(0, 0), digest(1, 0)]);
        t.push_marker(9, p(1), "restart"); // restarts only after the wave
        let r = analyze_snapshot_trace(&t, 2, &[]);
        assert!(!r.holds());
        assert_eq!(r.crashed_values, vec![(p(0), 0, p(1))]);

        // A process that restarts *during* the wave can have answered.
        let mut t = STrace::new();
        t.push_marker(0, p(1), "crash");
        push_cut_started(&mut t, 2, 0, 0);
        t.push_marker(4, p(1), "restart");
        push_cut_decided(&mut t, 6, 0, 0, vec![digest(0, 0), digest(1, 0)]);
        assert!(analyze_snapshot_trace(&t, 2, &[]).holds());
    }

    /// Causal consistency: a cut may not report a serve count below
    /// what the merged trace shows granted before the wave began
    /// (unserved-at-p vs already-granted-at-q), nor one from the future.
    #[test]
    fn snapshot_rejects_causally_inconsistent_cut() {
        // p1 served twice before the wave, but the cut claims 1.
        let mut t = STrace::new();
        t.push_marker(1, p(1), "served");
        t.push_marker(2, p(1), "served");
        push_cut_started(&mut t, 3, 0, 0);
        push_cut_decided(&mut t, 6, 0, 0, vec![digest(0, 0), digest(1, 1)]);
        let r = analyze_snapshot_trace(&t, 2, &[]);
        assert!(!r.holds());
        assert_eq!(r.causal_violations, vec![(p(0), 0, p(1))]);

        // A serve that only happens after decision cannot be in the cut.
        let mut t = STrace::new();
        push_cut_started(&mut t, 3, 0, 0);
        push_cut_decided(&mut t, 6, 0, 0, vec![digest(0, 0), digest(1, 1)]);
        t.push_marker(8, p(1), "served");
        let r = analyze_snapshot_trace(&t, 2, &[]);
        assert!(!r.holds());
        assert_eq!(r.causal_violations, vec![(p(0), 0, p(1))]);

        // But the same value is legal when that serve lands mid-wave.
        let mut t = STrace::new();
        push_cut_started(&mut t, 3, 0, 0);
        t.push_marker(4, p(1), "served");
        push_cut_decided(&mut t, 6, 0, 0, vec![digest(0, 0), digest(1, 1)]);
        assert!(analyze_snapshot_trace(&t, 2, &[]).holds());
    }

    /// Refusals and still-pending waves are recorded, never violations:
    /// refusal is the *required* behaviour for corrupted monitor state.
    #[test]
    fn snapshot_allows_refusal_and_pending() {
        let mut t = STrace::new();
        push_cut_started(&mut t, 1, 0, 0);
        t.push(
            3,
            TraceEvent::Protocol {
                p: p(0),
                event: MonitorEvent::CutRefused { cut: 0 },
            },
        );
        push_cut_started(&mut t, 5, 0, 1); // pending at trace end
        let r = analyze_snapshot_trace(&t, 2, &[]);
        assert!(r.holds(), "{r:?}");
        assert_eq!(r.refused, vec![(p(0), 0)]);
        assert_eq!(r.pending, vec![(p(0), 1)]);
        assert_eq!(r.cuts_decided(), 0);
    }

    /// A vouched mid-wave fault exempts the cut from the causal checks
    /// (classified interrupted), but the same garbage fails a clean run.
    #[test]
    fn snapshot_interrupted_cut_is_exempt_but_classified() {
        let build = |with_fault: bool| {
            let mut t = STrace::new();
            push_cut_started(&mut t, 2, 0, 0);
            if with_fault {
                t.push_marker(4, p(1), "chaos:corrupt");
            }
            // served=5 with no "served" markers anywhere: impossible
            // unless the wave was interrupted.
            push_cut_decided(&mut t, 6, 0, 0, vec![digest(0, 0), digest(1, 5)]);
            t
        };
        let clean = analyze_snapshot_trace(&build(false), 2, &[]);
        assert!(!clean.holds());
        assert_eq!(clean.causal_violations.len(), 1);

        let faulted = analyze_snapshot_trace(&build(true), 2, &[4]);
        assert!(faulted.holds(), "{faulted:?}");
        assert_eq!(faulted.interrupted_total(), 1);
        assert_eq!(faulted.clean_cuts(), 0);
    }

    /// The same forged-mark trust rule as the epoch checkers: a
    /// chaos-prefixed marker the harness did not vouch for fails Spec 5.
    #[test]
    fn snapshot_rejects_forged_marks() {
        let mut t = STrace::new();
        push_cut_started(&mut t, 2, 0, 0);
        t.push_marker(4, p(1), "chaos:corrupt");
        push_cut_decided(&mut t, 6, 0, 0, vec![digest(0, 0), digest(1, 0)]);
        let forged = analyze_snapshot_trace(&t, 2, &[]);
        assert!(!forged.holds());
        assert_eq!(forged.forged_marks.len(), 1);
        assert!(analyze_snapshot_trace(&t, 2, &[4]).holds());
    }

    fn push_cut_refused(t: &mut STrace, step: u64, init: usize, cut: u64) {
        t.push(
            step,
            TraceEvent::Protocol {
                p: p(init),
                event: MonitorEvent::CutRefused { cut },
            },
        );
    }

    /// Two initiators with overlapping waves: each decided cut lands on
    /// the ledger that requested it, and the per-initiator accessors
    /// recover the split.
    #[test]
    fn snapshot_attributes_cuts_per_initiator() {
        let mut t = STrace::new();
        push_cut_started(&mut t, 1, 0, 0);
        push_cut_started(&mut t, 2, 1, 0); // overlapping wave, other ledger
        push_cut_decided(&mut t, 4, 0, 0, vec![digest(0, 0), digest(1, 0)]);
        push_cut_decided(&mut t, 5, 1, 0, vec![digest(0, 0), digest(1, 0)]);
        push_cut_started(&mut t, 6, 1, 1);
        push_cut_refused(&mut t, 7, 1, 1);
        let r = analyze_snapshot_trace(&t, 2, &[]);
        assert!(r.holds(), "{r:?}");
        assert_eq!(r.initiators(), vec![p(0), p(1)]);
        assert_eq!(r.cuts_of(p(0)), 1);
        assert_eq!(r.cuts_of(p(1)), 1);
        assert_eq!(r.refused_of(p(0)), 0);
        assert_eq!(r.refused_of(p(1)), 1);
    }

    /// Refusal streaks run per ledger in cut-id order; a decision on
    /// the same ledger resets the run, other ledgers never touch it.
    #[test]
    fn snapshot_refusal_streak_is_per_ledger() {
        let mut t = STrace::new();
        // p0: refuse 0, refuse 1, decide 2, refuse 3 → max streak 2.
        for cut in 0..2u64 {
            push_cut_started(&mut t, 1 + 2 * cut, 0, cut);
            push_cut_refused(&mut t, 2 + 2 * cut, 0, cut);
        }
        push_cut_started(&mut t, 10, 0, 2);
        push_cut_decided(&mut t, 11, 0, 2, vec![digest(0, 0), digest(1, 0)]);
        push_cut_started(&mut t, 12, 0, 3);
        push_cut_refused(&mut t, 13, 0, 3);
        // p1: one long unbroken streak of 3.
        for cut in 0..3u64 {
            push_cut_started(&mut t, 20 + 2 * cut, 1, cut);
            push_cut_refused(&mut t, 21 + 2 * cut, 1, cut);
        }
        let r = analyze_snapshot_trace(&t, 2, &[]);
        assert!(r.holds(), "{r:?}");
        assert_eq!(r.max_refusal_streak_of(p(0)), 2);
        assert_eq!(r.max_refusal_streak_of(p(1)), 3);
        assert_eq!(r.max_refusal_streak_of(ProcessId::new(5)), 0);
    }
}
