//! Sharded multi-leader mutual exclusion: S independent Algorithm 3
//! instances over one transport, with batched grants.
//!
//! The live-runtime benchmarks showed end-to-end mutex throughput
//! collapsing as `n` grows while the transport sustains millions of
//! messages per second: Algorithm 3's leader grants **one** critical
//! section per `Value` rotation step, so the service is protocol-bound.
//! This module multiplies the req/s ceiling with two composable moves that
//! leave the paper's correctness argument untouched:
//!
//! * **Sharding** — the resource space is hash-partitioned
//!   ([`shard_of`]) across `S` independent [`MeProcess`] instances. Each
//!   instance is a complete, unmodified Algorithm 3 system with its *own*
//!   leader (placed round-robin: shard `s` is led by process `s mod n`),
//!   so `S` `Value` pointers rotate concurrently. Requests for one key
//!   always land in one shard, so per-key exclusivity is exactly that
//!   shard's Specification 3.
//! * **Batching** — one critical-section grant of a shard serves a whole
//!   batch of pairwise non-conflicting client requests
//!   ([`crate::request::BatchQueue`]) atomically inside the single CS
//!   interval. Conflicting requests (same [`ResourceKey`]) are split
//!   across grants in FIFO order.
//!
//! [`ShardedMe`] packages the `S` instances as **one**
//! [`Protocol`] whose messages and events carry a
//! shard tag, so a sharded fleet runs unchanged on *both* substrates: the
//! deterministic simulator (`snapstab_sim::Runner`) and the live runtime
//! (`snapstab_runtime::LiveRunner`) — which is what keeps sim-vs-live
//! conformance testable. [`project_shard_trace`] slices a sharded trace
//! back into `S` plain mutual-exclusion traces that
//! [`crate::spec::analyze_me_trace`] judges exactly as before, and
//! [`GrantLog`] records every batch grant for the service-level audit
//! ([`GrantLog::audit`]): batches conflict-free, requests routed to the
//! right shard, every injected request served exactly once.
//!
//! This mirrors how the snap-stabilizing message-forwarding line of work
//! composes independent snap-stabilizing instances to scale a service:
//! each shard's guarantees are per-instance, and the partition function is
//! the only glue.

use snapstab_sim::{
    Capacity, Context, NetworkBuilder, ProcessId, Protocol, RandomScheduler, Runner, SimRng, Trace,
    TraceEvent,
};

use crate::me::{MeConfig, MeEvent, MeMsg, MeProcess, MeState};
use crate::request::{BatchQueue, ClientRequest, RequestState, ResourceKey};

/// Hash-partitions a resource key onto one of `shards` shards
/// (SplitMix64 finalizer, so adjacent keys spread uniformly).
///
/// # Panics
///
/// Panics if `shards` is zero.
pub fn shard_of(key: ResourceKey, shards: usize) -> usize {
    assert!(shards >= 1, "at least one shard");
    let mut z = key.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z % shards as u64) as usize
}

/// The leader's process index for a shard: leaders are placed round-robin
/// so no single process serializes every shard's grants.
pub fn shard_leader(shard: usize, n: usize) -> ProcessId {
    ProcessId::new(shard % n)
}

/// Builds the marker label `"{label}@{shard}"` used to attribute harness
/// markers (e.g. `request`) to one shard of a sharded trace;
/// [`project_shard_trace`] strips the suffix back off.
pub fn shard_marker(label: &str, shard: usize) -> String {
    format!("{label}@{shard}")
}

/// A mutual-exclusion protocol message tagged with its shard.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ShardedMeMsg {
    /// The shard (protocol instance) this message belongs to.
    pub shard: u32,
    /// The underlying Algorithm 3 message.
    pub msg: MeMsg,
}

/// A mutual-exclusion protocol event tagged with its shard.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ShardedMeEvent {
    /// The shard (protocol instance) this event belongs to.
    pub shard: u32,
    /// The underlying Algorithm 3 event.
    pub event: MeEvent,
}

/// `S` independent [`MeProcess`] instances hosted by one process, exposed
/// as a single [`Protocol`] whose messages/events carry a shard tag.
///
/// Every activation runs each shard's enabled actions in shard order —
/// the composite is still one atomic step per substrate step, and each
/// sub-instance cannot tell it shares a process with the others. Shard
/// `s`'s identities are assigned so that process `s mod n` holds the
/// minimum id (the leader), spreading the leaders across the fleet.
#[derive(Clone, Debug)]
pub struct ShardedMe {
    me: ProcessId,
    n: usize,
    shards: Vec<MeProcess>,
    /// Per-activation scratch buffers: sub-instance sends/events land here
    /// and are re-emitted tagged, so the hot path does not allocate.
    scratch_sends: Vec<(ProcessId, MeMsg)>,
    scratch_events: Vec<MeEvent>,
}

impl ShardedMe {
    /// Creates the composite process for `me` in an `n`-process system
    /// with `shards` instances, every instance configured with `config`.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn new(me: ProcessId, n: usize, shards: usize, config: MeConfig) -> Self {
        assert!(shards >= 1, "at least one shard");
        let instances = (0..shards)
            .map(|s| {
                // Shard s's leader is process s % n: give it the minimum
                // identity, everyone else a distinct larger one.
                let id = if me == shard_leader(s, n) {
                    1
                } else {
                    2 + me.index() as u64
                };
                MeProcess::with_config(me, n, id, config)
            })
            .collect();
        ShardedMe {
            me,
            n,
            shards: instances,
            scratch_sends: Vec::new(),
            scratch_events: Vec::new(),
        }
    }

    /// This process's id.
    pub fn me(&self) -> ProcessId {
        self.me
    }

    /// System size.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of shards hosted.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The sub-instance of shard `s`.
    pub fn shard(&self, s: usize) -> &MeProcess {
        &self.shards[s]
    }

    /// Mutable access to the sub-instance of shard `s` (request
    /// injection).
    pub fn shard_mut(&mut self, s: usize) -> &mut MeProcess {
        &mut self.shards[s]
    }
}

impl Protocol for ShardedMe {
    type Msg = ShardedMeMsg;
    type Event = ShardedMeEvent;
    type State = Vec<MeState>;

    fn activate(&mut self, ctx: &mut Context<'_, ShardedMeMsg, ShardedMeEvent>) -> bool {
        let (me, n, step) = (self.me, self.n, ctx.step());
        let mut acted = false;
        for (s, proc) in self.shards.iter_mut().enumerate() {
            let sub_acted = {
                let mut inner = Context::new(
                    me,
                    n,
                    step,
                    ctx.rng(),
                    &mut self.scratch_sends,
                    &mut self.scratch_events,
                );
                proc.activate(&mut inner)
            };
            acted |= sub_acted;
            for (to, msg) in self.scratch_sends.drain(..) {
                ctx.send(
                    to,
                    ShardedMeMsg {
                        shard: s as u32,
                        msg,
                    },
                );
            }
            for event in self.scratch_events.drain(..) {
                ctx.emit(ShardedMeEvent {
                    shard: s as u32,
                    event,
                });
            }
        }
        acted
    }

    fn on_receive(
        &mut self,
        from: ProcessId,
        msg: ShardedMeMsg,
        ctx: &mut Context<'_, ShardedMeMsg, ShardedMeEvent>,
    ) {
        let s = msg.shard as usize;
        // A tag outside the shard range can only come from a corrupted
        // channel; dropping it is the §4-faithful reaction (channels are
        // unreliable anyway).
        if s >= self.shards.len() {
            return;
        }
        let (me, n, step) = (self.me, self.n, ctx.step());
        {
            let mut inner = Context::new(
                me,
                n,
                step,
                ctx.rng(),
                &mut self.scratch_sends,
                &mut self.scratch_events,
            );
            self.shards[s].on_receive(from, msg.msg, &mut inner);
        }
        for (to, msg) in self.scratch_sends.drain(..) {
            ctx.send(
                to,
                ShardedMeMsg {
                    shard: s as u32,
                    msg,
                },
            );
        }
        for event in self.scratch_events.drain(..) {
            ctx.emit(ShardedMeEvent {
                shard: s as u32,
                event,
            });
        }
    }

    fn has_enabled_action(&self) -> bool {
        self.shards.iter().any(|p| p.has_enabled_action())
    }

    fn corrupt(&mut self, rng: &mut SimRng) {
        for proc in &mut self.shards {
            proc.corrupt(rng);
        }
    }

    fn snapshot(&self) -> Vec<MeState> {
        self.shards.iter().map(|p| p.snapshot()).collect()
    }

    fn restore(&mut self, state: Vec<MeState>) {
        assert_eq!(state.len(), self.shards.len(), "shard count mismatch");
        for (proc, s) in self.shards.iter_mut().zip(state) {
            proc.restore(s);
        }
    }
}

/// One batched critical-section grant: shard `shard` granted its CS to
/// `grantee`, which served `requests` atomically inside it.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Grant {
    /// The granting shard.
    pub shard: usize,
    /// The process that executed the critical section.
    pub grantee: ProcessId,
    /// Per-shard monotone sequence number, assigned at record time.
    pub seq: u64,
    /// Global step stamp of the grant observation.
    pub step: u64,
    /// The batch served inside this grant.
    pub requests: Vec<ClientRequest>,
}

/// The per-shard grant log: every batched grant the service performed, in
/// observation order, auditable against the injected request set.
#[derive(Clone, Debug, Default)]
pub struct GrantLog {
    grants: Vec<Grant>,
    next_seq: Vec<u64>,
}

impl GrantLog {
    /// An empty log for `shards` shards.
    pub fn new(shards: usize) -> Self {
        GrantLog {
            grants: Vec::new(),
            next_seq: vec![0; shards],
        }
    }

    /// Records a grant and returns its per-shard sequence number.
    pub fn record(
        &mut self,
        shard: usize,
        grantee: ProcessId,
        step: u64,
        requests: Vec<ClientRequest>,
    ) -> u64 {
        if shard >= self.next_seq.len() {
            self.next_seq.resize(shard + 1, 0);
        }
        let seq = self.next_seq[shard];
        self.next_seq[shard] += 1;
        self.grants.push(Grant {
            shard,
            grantee,
            seq,
            step,
            requests,
        });
        seq
    }

    /// All grants, in observation order.
    pub fn grants(&self) -> &[Grant] {
        &self.grants
    }

    /// Number of grants recorded.
    pub fn len(&self) -> usize {
        self.grants.len()
    }

    /// True if nothing was granted.
    pub fn is_empty(&self) -> bool {
        self.grants.is_empty()
    }

    /// Total client requests served across all grants.
    pub fn served_requests(&self) -> u64 {
        self.grants.iter().map(|g| g.requests.len() as u64).sum()
    }

    /// Audits the log against the injected request set — the
    /// service-level acceptance check (see [`GrantAudit`]).
    pub fn audit(&self, shards: usize, injected: &[ClientRequest]) -> GrantAudit {
        let mut audit = GrantAudit::default();
        let mut seen_ids: std::collections::HashMap<u64, u32> = std::collections::HashMap::new();
        for (idx, grant) in self.grants.iter().enumerate() {
            let mut keys: Vec<ResourceKey> = grant.requests.iter().map(|r| r.key).collect();
            keys.sort_unstable();
            if keys.windows(2).any(|w| w[0] == w[1]) {
                audit.conflicting_grants.push(idx);
            }
            if grant
                .requests
                .iter()
                .any(|r| shard_of(r.key, shards) != grant.shard)
            {
                audit.misrouted_grants.push(idx);
            }
            for r in &grant.requests {
                *seen_ids.entry(r.id).or_insert(0) += 1;
            }
        }
        for req in injected {
            match seen_ids.get(&req.id) {
                None => audit.unserved_ids.push(req.id),
                Some(1) => {}
                Some(_) => audit.duplicate_ids.push(req.id),
            }
        }
        let injected_ids: std::collections::HashSet<u64> = injected.iter().map(|r| r.id).collect();
        for id in seen_ids.keys() {
            if !injected_ids.contains(id) {
                audit.unknown_ids.push(*id);
            }
        }
        audit.unserved_ids.sort_unstable();
        audit.duplicate_ids.sort_unstable();
        audit.unknown_ids.sort_unstable();
        audit
    }
}

/// Verdict of the grant-log audit: the sharded service's own executable
/// specification, checked on top of each shard's Specification 3.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct GrantAudit {
    /// Indices of grants whose batch contained two requests for the same
    /// key — a conflict served without serialization.
    pub conflicting_grants: Vec<usize>,
    /// Indices of grants containing a request whose key hashes to a
    /// different shard — a partition violation.
    pub misrouted_grants: Vec<usize>,
    /// Injected request ids never served (Start violations if the run
    /// budget was generous).
    pub unserved_ids: Vec<u64>,
    /// Injected request ids served more than once.
    pub duplicate_ids: Vec<u64>,
    /// Served request ids that were never injected.
    pub unknown_ids: Vec<u64>,
}

impl GrantAudit {
    /// True if every property holds: batches conflict-free, routing
    /// respected, every injected request served exactly once, nothing
    /// invented.
    pub fn holds(&self) -> bool {
        self.conflicting_grants.is_empty()
            && self.misrouted_grants.is_empty()
            && self.unserved_ids.is_empty()
            && self.duplicate_ids.is_empty()
            && self.unknown_ids.is_empty()
    }
}

/// Projects one shard out of a sharded trace: `Sent`/`Delivered`/
/// `Protocol` entries keep only shard `shard`'s payloads (untagged),
/// markers labelled `"{label}@{s}"` are kept (as `"{label}"`) iff
/// `s == shard`, and unsuffixed markers (e.g. `crash`) survive into every
/// projection. The result is a plain mutual-exclusion trace that
/// [`crate::spec::analyze_me_trace`] checks exactly as an unsharded one.
pub fn project_shard_trace(
    trace: &Trace<ShardedMeMsg, ShardedMeEvent>,
    shard: usize,
) -> Trace<MeMsg, MeEvent> {
    let mut out = Trace::new();
    for entry in trace.iter() {
        match &entry.event {
            TraceEvent::Activated { p, acted } => out.push(
                entry.step,
                TraceEvent::Activated {
                    p: *p,
                    acted: *acted,
                },
            ),
            TraceEvent::Sent {
                from,
                to,
                msg,
                fate,
            } if msg.shard as usize == shard => out.push(
                entry.step,
                TraceEvent::Sent {
                    from: *from,
                    to: *to,
                    msg: msg.msg.clone(),
                    fate: *fate,
                },
            ),
            TraceEvent::Delivered { from, to, msg } if msg.shard as usize == shard => out.push(
                entry.step,
                TraceEvent::Delivered {
                    from: *from,
                    to: *to,
                    msg: msg.msg.clone(),
                },
            ),
            TraceEvent::Protocol { p, event } if event.shard as usize == shard => out.push(
                entry.step,
                TraceEvent::Protocol {
                    p: *p,
                    event: event.event.clone(),
                },
            ),
            TraceEvent::Corrupted { p } => out.push(entry.step, TraceEvent::Corrupted { p: *p }),
            TraceEvent::Marker { p, label } => match label.rsplit_once('@') {
                Some((base, suffix)) => {
                    if suffix.parse::<usize>() == Ok(shard) {
                        out.push_marker(entry.step, *p, base);
                    }
                }
                None => out.push_marker(entry.step, *p, label.clone()),
            },
            _ => {}
        }
    }
    out
}

/// Configuration of the simulator-side sharded service mirror
/// ([`run_sim_sharded_service`]).
#[derive(Clone, Copy, Debug)]
pub struct SimShardedConfig {
    /// Number of processes.
    pub n: usize,
    /// Number of independent protocol instances (leaders).
    pub shards: usize,
    /// Maximum client requests per grant.
    pub batch: usize,
    /// Client requests injected per process.
    pub requests_per_process: u64,
    /// Resource keys are drawn uniformly from `0..key_space`; small
    /// spaces force intra-batch conflicts.
    pub key_space: u64,
    /// Scheduler / key-stream seed.
    pub seed: u64,
    /// Step budget; the run stops early once every request is served.
    pub max_steps: u64,
    /// Per-instance protocol configuration.
    pub config: MeConfig,
}

impl Default for SimShardedConfig {
    fn default() -> Self {
        SimShardedConfig {
            n: 3,
            shards: 2,
            batch: 2,
            requests_per_process: 2,
            key_space: 8,
            seed: 1,
            max_steps: 4_000_000,
            config: MeConfig::default(),
        }
    }
}

/// Outcome of a simulated sharded service run.
#[derive(Clone, Debug)]
pub struct SimShardedReport {
    /// Every injected client request (ids globally unique).
    pub injected: Vec<ClientRequest>,
    /// Requests served (batch members of observed grants).
    pub served: u64,
    /// The grant log, ready for [`GrantLog::audit`].
    pub grant_log: GrantLog,
    /// The sharded trace (project per shard for Specification 3).
    pub trace: Trace<ShardedMeMsg, ShardedMeEvent>,
    /// Steps executed.
    pub steps: u64,
}

/// Builds the deterministic client-request workload both service
/// substrates share: `requests_per_process` requests per process with
/// globally unique ids (`i·requests_per_process + k`) and keys drawn
/// uniformly from `0..key_space`, each routed into its process's
/// per-shard [`BatchQueue`] by [`shard_of`]. Returns `(all injected
/// requests, per-process per-shard queues)`.
///
/// The sim-vs-live conformance tests rest on both substrates running the
/// *same* workload — this helper is the single source of that stream, so
/// the two services cannot silently diverge.
pub fn inject_requests(
    n: usize,
    requests_per_process: u64,
    key_space: u64,
    seed: u64,
    shards: usize,
    batch: usize,
) -> (Vec<ClientRequest>, Vec<Vec<BatchQueue>>) {
    let mut key_rng = SimRng::seed_from(seed ^ 0x5AAD_ED01);
    let mut injected: Vec<ClientRequest> = Vec::new();
    let mut queues: Vec<Vec<BatchQueue>> = (0..n)
        .map(|_| (0..shards).map(|_| BatchQueue::new(batch)).collect())
        .collect();
    for (i, proc_queues) in queues.iter_mut().enumerate() {
        for k in 0..requests_per_process {
            let key = key_rng.gen_range(0..key_space.max(1) as usize) as ResourceKey;
            let req = ClientRequest {
                id: i as u64 * requests_per_process + k,
                key,
            };
            injected.push(req);
            proc_queues[shard_of(key, shards)].push(req);
        }
    }
    (injected, queues)
}

/// Runs the sharded, batching mutex service inside the deterministic
/// simulator — the mirror of `snapstab_runtime`'s live `ShardedService`,
/// used by the sim-vs-live conformance tests. Same partition function,
/// same batching queue, same grant log; only the substrate differs.
pub fn run_sim_sharded_service(cfg: &SimShardedConfig) -> SimShardedReport {
    // The simulator's channels are capacity-1 and shared by all shards:
    // per-shard occupancy can never exceed 1, so the paper's five-flag
    // domain stays sound, and a sibling shard occupying the slot just
    // reads as fair loss. (The live runtime instead runs one capacity
    // lane per shard inside each `LiveLink` — same per-shard channel
    // semantics, the sim being strictly more adversarial about drops.)
    let processes: Vec<ShardedMe> = (0..cfg.n)
        .map(|i| ShardedMe::new(ProcessId::new(i), cfg.n, cfg.shards, cfg.config))
        .collect();
    let network = NetworkBuilder::new(cfg.n)
        .capacity(Capacity::Bounded(1))
        .build();
    let mut runner = Runner::new(processes, network, RandomScheduler::new(), cfg.seed);

    // Inject everything upfront: per-process, per-shard batch queues.
    let (injected, mut queues) = inject_requests(
        cfg.n,
        cfg.requests_per_process,
        cfg.key_space,
        cfg.seed,
        cfg.shards,
        cfg.batch,
    );
    let total = injected.len() as u64;

    let mut grant_log = GrantLog::new(cfg.shards);
    let mut outstanding: Vec<Vec<Option<Vec<ClientRequest>>>> =
        (0..cfg.n).map(|_| vec![None; cfg.shards]).collect();
    let mut served = 0u64;
    let mut executed = 0u64;
    while served < total && executed < cfg.max_steps {
        executed += runner.run_steps(500).expect("sim sharded run").steps;
        for i in 0..cfg.n {
            let p = ProcessId::new(i);
            for s in 0..cfg.shards {
                let done = runner.process(p).shard(s).request() == RequestState::Done;
                if done {
                    if let Some(batch) = outstanding[i][s].take() {
                        served += batch.len() as u64;
                        runner.mark(p, shard_marker("grant", s));
                        grant_log.record(s, p, runner.step_count(), batch);
                    }
                    if !queues[i][s].is_empty() {
                        let batch = queues[i][s].take_batch();
                        runner.mark(p, shard_marker("request", s));
                        assert!(runner.process_mut(p).shard_mut(s).request_cs());
                        outstanding[i][s] = Some(batch);
                    }
                }
            }
        }
    }
    SimShardedReport {
        injected,
        served,
        grant_log,
        trace: runner.trace().clone(),
        steps: executed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::analyze_me_trace;

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn shard_of_is_stable_and_in_range() {
        for key in 0..1000u64 {
            let s = shard_of(key, 4);
            assert!(s < 4);
            assert_eq!(s, shard_of(key, 4), "deterministic");
        }
        // Rough uniformity: every shard gets a decent share of 1000 keys.
        let mut counts = [0usize; 4];
        for key in 0..1000u64 {
            counts[shard_of(key, 4)] += 1;
        }
        assert!(counts.iter().all(|&c| c > 150), "skewed: {counts:?}");
        assert_eq!(shard_of(42, 1), 0, "one shard takes everything");
    }

    #[test]
    fn leaders_are_spread_round_robin() {
        let n = 3;
        for s in 0..5 {
            let leader = shard_leader(s, n);
            assert_eq!(leader.index(), s % n);
            for i in 0..n {
                let proc = ShardedMe::new(p(i), n, 5, MeConfig::default());
                let id = proc.shard(s).my_id();
                if i == s % n {
                    assert_eq!(id, 1, "shard {s} leader holds the minimum id");
                } else {
                    assert!(id > 1, "non-leader ids exceed the leader's");
                }
            }
        }
        // Ids are pairwise distinct within a shard.
        let ids: Vec<u64> = (0..3)
            .map(|i| {
                ShardedMe::new(p(i), 3, 2, MeConfig::default())
                    .shard(1)
                    .my_id()
            })
            .collect();
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 3, "duplicate ids in a shard: {ids:?}");
    }

    #[test]
    fn activation_tags_sends_with_their_shard() {
        let mut proc = ShardedMe::new(p(0), 3, 2, MeConfig::default());
        let mut rng = SimRng::seed_from(0);
        let mut sends = Vec::new();
        let mut events = Vec::new();
        // Drive a few activations; both shards start their IDL waves and
        // send tagged PIF messages.
        for step in 0..6 {
            let mut ctx = Context::new(p(0), 3, step, &mut rng, &mut sends, &mut events);
            proc.activate(&mut ctx);
        }
        assert!(!sends.is_empty());
        let shards_seen: std::collections::HashSet<u32> =
            sends.iter().map(|(_, m)| m.shard).collect();
        assert!(shards_seen.contains(&0) && shards_seen.contains(&1));
        assert!(sends.iter().all(|(_, m)| m.shard < 2));
    }

    #[test]
    fn receive_routes_by_shard_and_drops_out_of_range() {
        let mut sender = ShardedMe::new(p(1), 2, 2, MeConfig::default());
        let mut rng = SimRng::seed_from(1);
        let mut sends = Vec::new();
        let mut events = Vec::new();
        {
            let mut ctx = Context::new(p(1), 2, 0, &mut rng, &mut sends, &mut events);
            sender.activate(&mut ctx);
        }
        let (_, tagged) = sends
            .iter()
            .find(|(to, m)| *to == p(0) && m.shard == 1)
            .expect("shard 1 sent something")
            .clone();
        let mut receiver = ShardedMe::new(p(0), 2, 2, MeConfig::default());
        let before_s0 = receiver.shard(0).snapshot();
        let mut r_sends = Vec::new();
        let mut r_events = Vec::new();
        {
            let mut ctx = Context::new(p(0), 2, 1, &mut rng, &mut r_sends, &mut r_events);
            receiver.on_receive(p(1), tagged.clone(), &mut ctx);
        }
        assert_eq!(
            receiver.shard(0).snapshot(),
            before_s0,
            "shard 0 untouched by a shard-1 message"
        );
        assert!(r_events.iter().all(|e| e.shard == 1));
        // Out-of-range tag: silently dropped, nothing changes.
        let snap = receiver.snapshot();
        let mut ctx = Context::new(p(0), 2, 2, &mut rng, &mut r_sends, &mut r_events);
        receiver.on_receive(
            p(1),
            ShardedMeMsg {
                shard: 99,
                msg: tagged.msg,
            },
            &mut ctx,
        );
        assert_eq!(receiver.snapshot(), snap);
    }

    #[test]
    fn snapshot_restore_and_corrupt_roundtrip() {
        let mut proc = ShardedMe::new(p(1), 3, 3, MeConfig::default());
        let mut rng = SimRng::seed_from(9);
        proc.corrupt(&mut rng);
        let snap = proc.snapshot();
        assert_eq!(snap.len(), 3);
        proc.corrupt(&mut rng);
        proc.restore(snap.clone());
        assert_eq!(proc.snapshot(), snap);
    }

    #[test]
    fn grant_log_audit_happy_path() {
        let injected = vec![
            ClientRequest { id: 0, key: 10 },
            ClientRequest { id: 1, key: 11 },
            ClientRequest { id: 2, key: 12 },
        ];
        let shards = 2;
        let mut log = GrantLog::new(shards);
        // Route each request to its true shard, conflict-free batches.
        let mut by_shard: Vec<Vec<ClientRequest>> = vec![Vec::new(); shards];
        for r in &injected {
            by_shard[shard_of(r.key, shards)].push(*r);
        }
        for (s, batch) in by_shard.into_iter().enumerate() {
            if !batch.is_empty() {
                let seq = log.record(s, p(0), 5, batch);
                assert_eq!(seq, 0);
            }
        }
        let audit = log.audit(shards, &injected);
        assert!(audit.holds(), "{audit:?}");
        assert_eq!(log.served_requests(), 3);
    }

    #[test]
    fn grant_log_audit_flags_violations() {
        let injected = vec![
            ClientRequest { id: 0, key: 10 },
            ClientRequest { id: 1, key: 10 },
            ClientRequest { id: 2, key: 11 },
        ];
        let shards = 1;
        let mut log = GrantLog::new(shards);
        // Conflict: ids 0 and 1 share key 10 inside one grant; id 2 never
        // served; id 7 invented.
        log.record(
            0,
            p(1),
            9,
            vec![
                ClientRequest { id: 0, key: 10 },
                ClientRequest { id: 1, key: 10 },
                ClientRequest { id: 7, key: 12 },
            ],
        );
        let audit = log.audit(shards, &injected);
        assert!(!audit.holds());
        assert_eq!(audit.conflicting_grants, vec![0]);
        assert_eq!(audit.unserved_ids, vec![2]);
        assert_eq!(audit.unknown_ids, vec![7]);
        // Duplicate service of id 0 in a later grant.
        let mut log2 = GrantLog::new(shards);
        log2.record(0, p(0), 1, vec![ClientRequest { id: 0, key: 10 }]);
        log2.record(0, p(0), 2, vec![ClientRequest { id: 0, key: 10 }]);
        let audit2 = log2.audit(shards, &injected[..1]);
        assert_eq!(audit2.duplicate_ids, vec![0]);
        // Misrouting: a key recorded against the wrong shard.
        let mut log3 = GrantLog::new(4);
        let key = 77u64;
        let wrong = (shard_of(key, 4) + 1) % 4;
        log3.record(wrong, p(0), 1, vec![ClientRequest { id: 0, key }]);
        let audit3 = log3.audit(4, &[ClientRequest { id: 0, key }]);
        assert_eq!(audit3.misrouted_grants, vec![0]);
    }

    #[test]
    fn grant_seq_is_per_shard_monotone() {
        let mut log = GrantLog::new(2);
        assert_eq!(log.record(0, p(0), 1, vec![]), 0);
        assert_eq!(log.record(1, p(1), 2, vec![]), 0);
        assert_eq!(log.record(0, p(2), 3, vec![]), 1);
        assert_eq!(log.record(1, p(0), 4, vec![]), 1);
        assert_eq!(log.len(), 4);
    }

    #[test]
    fn projection_splits_tagged_entries_and_markers() {
        let mut t: Trace<ShardedMeMsg, ShardedMeEvent> = Trace::new();
        t.push_marker(1, p(0), shard_marker("request", 0));
        t.push_marker(2, p(1), shard_marker("request", 1));
        t.push_marker(3, p(0), "crash");
        t.push(
            4,
            TraceEvent::Protocol {
                p: p(0),
                event: ShardedMeEvent {
                    shard: 0,
                    event: MeEvent::CsEnter,
                },
            },
        );
        t.push(
            5,
            TraceEvent::Protocol {
                p: p(1),
                event: ShardedMeEvent {
                    shard: 1,
                    event: MeEvent::CsEnter,
                },
            },
        );
        let t0 = project_shard_trace(&t, 0);
        let t1 = project_shard_trace(&t, 1);
        let m0: Vec<_> = t0.markers().map(|(_, q, l)| (q, l.to_string())).collect();
        assert_eq!(
            m0,
            vec![(p(0), "request".to_string()), (p(0), "crash".to_string())]
        );
        assert_eq!(t0.protocol_events_of(p(0)).count(), 1);
        assert_eq!(t0.protocol_events_of(p(1)).count(), 0);
        let m1: Vec<_> = t1.markers().map(|(_, q, l)| (q, l.to_string())).collect();
        assert_eq!(
            m1,
            vec![(p(1), "request".to_string()), (p(0), "crash".to_string())]
        );
        assert_eq!(t1.protocol_events_of(p(1)).count(), 1);
    }

    #[test]
    fn sim_sharded_service_serves_audits_and_satisfies_spec3_per_shard() {
        let cfg = SimShardedConfig {
            n: 3,
            shards: 2,
            batch: 2,
            requests_per_process: 2,
            key_space: 2, // force same-key conflicts across batches
            seed: 7,
            ..SimShardedConfig::default()
        };
        let report = run_sim_sharded_service(&cfg);
        assert_eq!(report.served, 6, "all requests served");
        let audit = report.grant_log.audit(cfg.shards, &report.injected);
        assert!(audit.holds(), "{audit:?}");
        // With key_space=2 and batch=2, some batch must have been split.
        assert!(
            report.grant_log.len() as u64 >= report.served / cfg.batch as u64,
            "grant count sanity"
        );
        for s in 0..cfg.shards {
            let shard_trace = project_shard_trace(&report.trace, s);
            let me = analyze_me_trace(&shard_trace, cfg.n);
            assert!(
                me.exclusivity_holds(),
                "shard {s} genuine CS overlap: {:?}",
                me.genuine_overlaps
            );
            assert!(me.all_served(), "shard {s} unserved: {:?}", me.unserved);
        }
    }
}
