//! Algorithm 2 — the snap-stabilizing IDs-Learning protocol.
//!
//! A thin application of the PIF: when requested, a process broadcasts an
//! `IDL` query; every neighbor feeds back its identity; at the decision the
//! initiator knows `ID-Tab[q]` for every neighbor `q` and the minimum ID of
//! the system (`minID`). Snap-stabilizing for Specification 2 (Theorem 3)
//! by construction on top of Theorem 2.
//!
//! [`IdlCore`] holds the variables and actions and is reused verbatim by
//! the mutual-exclusion protocol (Algorithm 3 embeds one IDL instance over
//! its own PIF); [`IdlProcess`] is the standalone protocol.

use snapstab_sim::{ArbitraryState, Context, PerNeighbor, ProcessId, Protocol, SimRng};

use crate::pif::{PifApp, PifCore, PifEvent, PifMsg, PifState};
use crate::request::RequestState;

/// The `IDL` broadcast message content (the query carries no data).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct IdlQuery;

impl ArbitraryState for IdlQuery {
    fn arbitrary(_rng: &mut SimRng) -> Self {
        IdlQuery
    }
}

/// A process identity. The paper assumes distinct integer IDs; they are
/// constants of the system (never corrupted by transient faults).
pub type Id = u64;

/// Protocol-level events of an IDs-Learning instance.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum IdlEvent {
    /// Action A1 executed (`Request`: `Wait → In`).
    Started,
    /// Action A2 executed (`Request`: `In → Done`); carries the learned
    /// minimum ID for the checker.
    Decided {
        /// `minID` at the decision.
        min_id: Id,
    },
    /// An event of the underlying PIF instance.
    Pif(PifEvent<IdlQuery, Id>),
}

impl From<PifEvent<IdlQuery, Id>> for IdlEvent {
    fn from(e: PifEvent<IdlQuery, Id>) -> Self {
        IdlEvent::Pif(e)
    }
}

/// The variables and actions of Algorithm 2 for one process, decoupled
/// from the PIF instance they drive (the caller lends the PIF, which lets
/// Algorithm 3 share a single PIF between its IDL layer and its own
/// waves).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct IdlCore {
    me: ProcessId,
    n: usize,
    my_id: Id,
    request: RequestState,
    min_id: Id,
    id_tab: PerNeighbor<Id>,
}

impl IdlCore {
    /// Creates a correctly-initialized instance for a process whose
    /// (constant) identity is `my_id`.
    pub fn new(me: ProcessId, n: usize, my_id: Id) -> Self {
        IdlCore {
            me,
            n,
            my_id,
            request: RequestState::Done,
            min_id: my_id,
            id_tab: PerNeighbor::new(me, n, 0),
        }
    }

    /// This process's constant identity.
    pub fn my_id(&self) -> Id {
        self.my_id
    }

    /// Current request state.
    pub fn request(&self) -> RequestState {
        self.request
    }

    /// The learned minimum ID (meaningful after a complete computation).
    pub fn min_id(&self) -> Id {
        self.min_id
    }

    /// The learned identity of neighbor `q` (meaningful after a complete
    /// computation).
    pub fn id_of(&self, q: ProcessId) -> Id {
        *self.id_tab.get(q)
    }

    /// Externally requests an IDs-Learning computation; refused while one
    /// is pending or in progress.
    pub fn try_request(&mut self) -> bool {
        self.request.try_request()
    }

    /// Upper-layer start (`IDL.Request_p ← Wait` in Algorithm 3's A0):
    /// unconditional.
    pub fn force_request(&mut self) {
        self.request = RequestState::Wait;
    }

    /// Action A1: `Request = Wait` → start; resets `minID` and launches the
    /// PIF wave with broadcast content `idl_broadcast`.
    pub fn action_a1<B, F>(&mut self, pif: &mut PifCore<B, F>, idl_broadcast: B) -> bool
    where
        B: Clone + std::fmt::Debug + PartialEq + 'static,
        F: Clone + std::fmt::Debug + PartialEq + 'static,
    {
        if self.request != RequestState::Wait {
            return false;
        }
        self.request = RequestState::In;
        self.min_id = self.my_id;
        pif.force_request(idl_broadcast);
        true
    }

    /// Action A2: the PIF decided → the IDs-Learning computation decides.
    pub fn action_a2<B, F>(&mut self, pif: &PifCore<B, F>) -> bool
    where
        B: Clone + std::fmt::Debug + PartialEq + 'static,
        F: Clone + std::fmt::Debug + PartialEq + 'static,
    {
        if self.request == RequestState::In && pif.request() == RequestState::Done {
            self.request = RequestState::Done;
            true
        } else {
            false
        }
    }

    /// Action A3 (`receive-brd⟨IDL⟩`): the feedback is this process's
    /// identity.
    pub fn broadcast_reply(&self) -> Id {
        self.my_id
    }

    /// Action A4 (`receive-fck⟨qID⟩ from q`): record the neighbor's
    /// identity and fold it into `minID`.
    pub fn on_feedback_id(&mut self, from: ProcessId, qid: Id) {
        self.id_tab.set(from, qid);
        self.min_id = self.min_id.min(qid);
    }

    /// True if A1 or A2 is enabled (given the PIF this instance drives).
    pub fn has_enabled_action<B, F>(&self, pif: &PifCore<B, F>) -> bool
    where
        B: Clone + std::fmt::Debug + PartialEq + 'static,
        F: Clone + std::fmt::Debug + PartialEq + 'static,
    {
        self.request == RequestState::Wait
            || (self.request == RequestState::In && pif.request() == RequestState::Done)
    }

    /// Overwrites the variables (`Request`, `minID`, `ID-Tab`) with
    /// arbitrary values; `my_id` is a constant and survives.
    pub fn corrupt(&mut self, rng: &mut SimRng) {
        self.request = RequestState::arbitrary(rng);
        self.min_id = Id::arbitrary(rng);
        self.id_tab.fill_with(|_| Id::arbitrary(rng));
    }

    /// The state projection of the IDL variables.
    pub fn snapshot(&self) -> IdlState {
        IdlState {
            request: self.request,
            min_id: self.min_id,
            id_tab: (0..self.n)
                .map(|i| {
                    if i == self.me.index() {
                        0
                    } else {
                        *self.id_tab.get(ProcessId::new(i))
                    }
                })
                .collect(),
        }
    }

    /// Restores a state projection.
    pub fn restore(&mut self, s: IdlState) {
        assert_eq!(s.id_tab.len(), self.n, "state projection size mismatch");
        self.request = s.request;
        self.min_id = s.min_id;
        for i in 0..self.n {
            if i != self.me.index() {
                self.id_tab.set(ProcessId::new(i), s.id_tab[i]);
            }
        }
    }
}

/// The state projection of [`IdlCore`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct IdlState {
    /// The request variable.
    pub request: RequestState,
    /// The learned minimum ID.
    pub min_id: Id,
    /// Per-neighbor learned identities (own slot unused).
    pub id_tab: Vec<Id>,
}

/// The standalone IDs-Learning process: an [`IdlCore`] over its own PIF.
#[derive(Clone, Debug)]
pub struct IdlProcess {
    pif: PifCore<IdlQuery, Id>,
    idl: IdlCore,
}

impl IdlProcess {
    /// Creates a correctly-initialized process with identity `my_id`.
    pub fn new(me: ProcessId, n: usize, my_id: Id) -> Self {
        IdlProcess {
            pif: PifCore::new(me, n, IdlQuery, 0),
            idl: IdlCore::new(me, n, my_id),
        }
    }

    /// Creates a process whose underlying PIF runs over a non-standard
    /// flag domain (capacity extension and ablations).
    pub fn with_domain(
        me: ProcessId,
        n: usize,
        my_id: Id,
        domain: crate::flag::FlagDomain,
    ) -> Self {
        IdlProcess {
            pif: PifCore::with_domain(me, n, IdlQuery, 0, domain),
            idl: IdlCore::new(me, n, my_id),
        }
    }

    /// Creates a process sized for channels of capacity `capacity`
    /// (`2·capacity + 3` flag values — see [`crate::capacity`]).
    pub fn for_capacity(me: ProcessId, n: usize, my_id: Id, capacity: usize) -> Self {
        Self::with_domain(
            me,
            n,
            my_id,
            crate::flag::FlagDomain::for_capacity(capacity),
        )
    }

    /// The IDL variables.
    pub fn idl(&self) -> &IdlCore {
        &self.idl
    }

    /// The underlying PIF.
    pub fn pif(&self) -> &PifCore<IdlQuery, Id> {
        &self.pif
    }

    /// Exclusive access to the underlying PIF (adversarial tests).
    pub fn pif_mut(&mut self) -> &mut PifCore<IdlQuery, Id> {
        &mut self.pif
    }

    /// Externally requests an IDs-Learning computation.
    pub fn request_learning(&mut self) -> bool {
        self.idl.try_request()
    }

    /// Current request state of the IDL layer.
    pub fn request(&self) -> RequestState {
        self.idl.request()
    }
}

/// `PifApp` adapter for the standalone IDL process.
impl PifApp<IdlQuery, Id> for IdlCore {
    fn on_broadcast(&mut self, _from: ProcessId, _data: &IdlQuery) -> Id {
        self.broadcast_reply()
    }

    fn on_feedback(&mut self, from: ProcessId, data: &Id) {
        self.on_feedback_id(from, *data);
    }
}

impl Protocol for IdlProcess {
    type Msg = PifMsg<IdlQuery, Id>;
    type Event = IdlEvent;
    type State = (IdlState, PifState<IdlQuery, Id>);

    fn activate(&mut self, ctx: &mut Context<'_, Self::Msg, Self::Event>) -> bool {
        let mut acted = false;
        if self.idl.action_a1(&mut self.pif, IdlQuery) {
            ctx.emit(IdlEvent::Started);
            acted = true;
        }
        if self.idl.action_a2(&self.pif) {
            ctx.emit(IdlEvent::Decided {
                min_id: self.idl.min_id(),
            });
            acted = true;
        }
        if self.pif.activate(ctx) {
            acted = true;
        }
        acted
    }

    fn on_receive(
        &mut self,
        from: ProcessId,
        msg: Self::Msg,
        ctx: &mut Context<'_, Self::Msg, Self::Event>,
    ) {
        self.pif.handle_receive(from, msg, &mut self.idl, ctx);
    }

    fn has_enabled_action(&self) -> bool {
        self.idl.has_enabled_action(&self.pif) || self.pif.has_enabled_action()
    }

    fn corrupt(&mut self, rng: &mut SimRng) {
        self.idl.corrupt(rng);
        self.pif.corrupt(rng);
    }

    fn snapshot(&self) -> Self::State {
        (self.idl.snapshot(), self.pif.snapshot())
    }

    fn restore(&mut self, state: Self::State) {
        self.idl.restore(state.0);
        self.pif.restore(state.1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snapstab_sim::{Capacity, CorruptionPlan, NetworkBuilder, RoundRobin, Runner};

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    /// Distinct, deliberately unordered identities.
    fn ids(n: usize) -> Vec<Id> {
        (0..n).map(|i| 1000 - 37 * i as Id).collect()
    }

    fn system(n: usize) -> Runner<IdlProcess, RoundRobin> {
        let idv = ids(n);
        let processes = (0..n).map(|i| IdlProcess::new(p(i), n, idv[i])).collect();
        let network = NetworkBuilder::new(n)
            .capacity(Capacity::Bounded(1))
            .build();
        Runner::new(processes, network, RoundRobin::new(), 5)
    }

    #[test]
    fn learning_from_clean_state() {
        let mut r = system(4);
        let idv = ids(4);
        let min = *idv.iter().min().unwrap();
        assert!(r.process_mut(p(0)).request_learning());
        r.run_until(100_000, |r| r.process(p(0)).request() == RequestState::Done)
            .unwrap();
        assert_eq!(r.process(p(0)).idl().min_id(), min);
        for (q, &id) in idv.iter().enumerate().skip(1) {
            assert_eq!(r.process(p(0)).idl().id_of(p(q)), id);
        }
    }

    #[test]
    fn learning_from_corrupted_configurations() {
        let idv = ids(3);
        let min = *idv.iter().min().unwrap();
        for seed in 0..25 {
            let mut r = system(3);
            let mut rng = SimRng::seed_from(seed);
            CorruptionPlan::full().apply(&mut r, &mut rng);
            // Let any corrupted-In computations flush, then genuinely request.
            let _ = r.run_until(100_000, |r| {
                (0..3).all(|i| r.process(p(i)).request() != RequestState::Wait)
            });
            r.process_mut(p(1)).idl.force_request();
            let out = r
                .run_until(300_000, |r| r.process(p(1)).request() == RequestState::Done)
                .unwrap();
            assert_eq!(
                out.stopped,
                snapstab_sim::StopCondition::Predicate,
                "seed {seed}"
            );
            assert_eq!(r.process(p(1)).idl().min_id(), min, "seed {seed}");
            assert_eq!(r.process(p(1)).idl().id_of(p(0)), idv[0], "seed {seed}");
            assert_eq!(r.process(p(1)).idl().id_of(p(2)), idv[2], "seed {seed}");
        }
    }

    #[test]
    fn my_id_survives_corruption() {
        let mut core = IdlCore::new(p(0), 3, 77);
        let mut rng = SimRng::seed_from(1);
        core.corrupt(&mut rng);
        assert_eq!(core.my_id(), 77);
        assert_eq!(core.broadcast_reply(), 77);
    }

    #[test]
    fn feedback_folds_min() {
        let mut core = IdlCore::new(p(0), 3, 50);
        core.on_feedback_id(p(1), 80);
        assert_eq!(core.min_id(), 50);
        core.on_feedback_id(p(2), 7);
        assert_eq!(core.min_id(), 7);
        assert_eq!(core.id_of(p(1)), 80);
        assert_eq!(core.id_of(p(2)), 7);
    }

    #[test]
    fn a1_resets_min_and_starts_pif() {
        let mut core = IdlCore::new(p(0), 2, 50);
        let mut pif: PifCore<IdlQuery, Id> = PifCore::new(p(0), 2, IdlQuery, 0);
        core.min_id = 1; // stale (e.g. corrupted) value
        core.force_request();
        assert!(core.action_a1(&mut pif, IdlQuery));
        assert_eq!(core.min_id(), 50, "minID reset to own id");
        assert_eq!(core.request(), RequestState::In);
        assert_eq!(pif.request(), RequestState::Wait);
        // A2 not yet enabled: PIF still to run.
        assert!(!core.action_a2(&pif));
    }

    #[test]
    fn concurrent_learners_all_decide_correctly() {
        let mut r = system(3);
        let idv = ids(3);
        let min = *idv.iter().min().unwrap();
        for i in 0..3 {
            assert!(r.process_mut(p(i)).request_learning());
        }
        r.run_until(300_000, |r| {
            (0..3).all(|i| r.process(p(i)).request() == RequestState::Done)
        })
        .unwrap();
        for i in 0..3 {
            assert_eq!(r.process(p(i)).idl().min_id(), min, "learner {i}");
        }
    }

    #[test]
    fn events_emitted_in_order() {
        let mut r = system(2);
        r.process_mut(p(0)).request_learning();
        r.run_until_quiescent(100_000).unwrap();
        let events: Vec<_> = r
            .trace()
            .protocol_events_of(p(0))
            .map(|(_, e)| e.clone())
            .collect();
        let started = events.iter().position(|e| matches!(e, IdlEvent::Started));
        let decided = events
            .iter()
            .position(|e| matches!(e, IdlEvent::Decided { .. }));
        assert!(started.is_some() && decided.is_some());
        assert!(started < decided);
    }

    #[test]
    fn snapshot_restore_roundtrip() {
        let mut proc = IdlProcess::new(p(0), 3, 9);
        let mut rng = SimRng::seed_from(4);
        proc.corrupt(&mut rng);
        let snap = proc.snapshot();
        proc.corrupt(&mut rng);
        proc.restore(snap.clone());
        assert_eq!(proc.snapshot(), snap);
    }

    #[test]
    fn idl_query_is_trivially_arbitrary() {
        let mut rng = SimRng::seed_from(0);
        assert_eq!(IdlQuery::arbitrary(&mut rng), IdlQuery);
    }
}
