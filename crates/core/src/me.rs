//! Algorithm 3 — the snap-stabilizing mutual exclusion protocol.
//!
//! The process with the smallest identity — the *leader* — arbitrates
//! access to the critical section through a `Value` pointer designating the
//! currently favoured process (Definition 7). Every process perpetually
//! cycles through five phases:
//!
//! * **Phase 0** (A0): start an IDs-Learning computation; take a pending
//!   request into account (`Request`: `Wait → In`).
//! * **Phase 1** (A1): when IDL decides, broadcast `ASK` — every process
//!   answers `YES` iff its `Value` designates the asker (A5); only the
//!   leader's answer will matter.
//! * **Phase 2** (A2): when the `ASK` wave decides, a winner broadcasts
//!   `EXIT`, forcing every other process back to phase 0 (A6) so that no
//!   stale belief of privilege survives.
//! * **Phase 3** (A3): when the `EXIT` wave decides, the winner executes
//!   the critical section (if requesting), then releases: the leader
//!   advances its own `Value`; a non-leader broadcasts `EXITCS`, on whose
//!   receipt the leader advances `Value` (A7).
//! * **Phase 4** (A4): when the last wave decides, return to phase 0.
//!
//! Snap-stabilizing for Specification 3 (Theorem 4): from any initial
//! configuration, every *requesting* process enters the critical section in
//! finite time (Start) and executes it alone (Correctness).
//!
//! Throughput of a *service* built on this protocol is bounded by the
//! leader's `Value` rotation — one critical-section grant per favoured
//! process per rotation step. The [`crate::shard`] module multiplies that
//! ceiling without touching the protocol: independent instances (one
//! leader each) own hash-partitioned slices of the resource space, and
//! each grant serves a whole batch of non-conflicting client requests
//! ([`crate::request::BatchQueue`]).
//!
//! ## Deviations (documented in DESIGN.md)
//!
//! * **D1** — the critical section may be given a duration
//!   ([`MeConfig::cs_duration`]) instead of being atomic inside A3; the
//!   leader-favour argument of Lemma 8 is insensitive to this, and the
//!   Theorem 1 reproduction needs overlapping CS intervals to exhibit.
//!   The default (0) is the paper-faithful atomic CS.
//! * **D2** — `Value` is a process index in `0..n`, "favour self" is
//!   `Value = me`, and the release increment is modulo `n`
//!   ([`ValueMode::Corrected`]). The paper's literal `mod (n+1)` is
//!   available as [`ValueMode::PaperLiteral`] and demonstrably livelocks
//!   (experiment A2).

use snapstab_sim::{ArbitraryState, Context, PerNeighbor, ProcessId, Protocol, SimRng};

use crate::idl::{Id, IdlCore, IdlState};
use crate::pif::{PifApp, PifCore, PifEvent, PifMsg, PifState};
use crate::request::RequestState;

/// Broadcast contents of the mutual-exclusion protocol's PIF waves.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MeBroadcast {
    /// The IDs-Learning query (Algorithm 2 embedded in phase 0).
    Idl,
    /// "Which process is favoured?" (phase 1).
    Ask,
    /// "Everyone restart to phase 0" (phase 2, winner only).
    Exit,
    /// "I release the critical section" (phase 3, non-leader winner).
    ExitCs,
}

impl ArbitraryState for MeBroadcast {
    fn arbitrary(rng: &mut SimRng) -> Self {
        match rng.gen_range(0..4) {
            0 => MeBroadcast::Idl,
            1 => MeBroadcast::Ask,
            2 => MeBroadcast::Exit,
            _ => MeBroadcast::ExitCs,
        }
    }
}

/// Feedback contents of the mutual-exclusion protocol's PIF waves.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MeFeedback {
    /// Identity reply to an [`MeBroadcast::Idl`] query.
    Id(Id),
    /// "My `Value` designates you" — reply to `ASK` (A5).
    Yes,
    /// "My `Value` designates someone else" — reply to `ASK` (A5).
    No,
    /// Neutral acknowledgment of `EXIT` / `EXITCS` (A6, A7).
    Ok,
}

impl ArbitraryState for MeFeedback {
    fn arbitrary(rng: &mut SimRng) -> Self {
        match rng.gen_range(0..4) {
            0 => MeFeedback::Id(Id::arbitrary(rng)),
            1 => MeFeedback::Yes,
            2 => MeFeedback::No,
            _ => MeFeedback::Ok,
        }
    }
}

/// The message type of the composed protocol: plain PIF messages over
/// [`MeBroadcast`] / [`MeFeedback`].
pub type MeMsg = PifMsg<MeBroadcast, MeFeedback>;

/// Protocol-level events of the mutual-exclusion protocol.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum MeEvent {
    /// A0 took a pending request into account (`Request`: `Wait → In`).
    Started,
    /// The process entered the critical section (in A3).
    CsEnter,
    /// The process left the critical section.
    CsExit,
    /// `Request` switched `In → Done`: the request is served.
    Served,
    /// An event of the shared PIF instance.
    Pif(PifEvent<MeBroadcast, MeFeedback>),
}

impl From<PifEvent<MeBroadcast, MeFeedback>> for MeEvent {
    fn from(e: PifEvent<MeBroadcast, MeFeedback>) -> Self {
        MeEvent::Pif(e)
    }
}

/// How the `Value` pointer advances on release (DESIGN.md D2).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum ValueMode {
    /// `Value ← (Value + 1) mod n`: every value of the domain favours some
    /// process, so the pointer rotates fairly (the erratum reading).
    #[default]
    Corrected,
    /// `Value ← (Value + 1) mod (n + 1)`, literally as printed: the value
    /// `n` favours nobody and, once reached, is never released — a
    /// livelock. Kept for the A2 ablation experiment.
    PaperLiteral,
}

/// Construction-time configuration of a mutual-exclusion process.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct MeConfig {
    /// Critical-section duration in activations: `0` is the paper's atomic
    /// CS; `k > 0` keeps the process inside the CS for `k` activations
    /// (deviation D1), which is what lets CS intervals overlap in the
    /// Theorem 1 reproduction.
    pub cs_duration: u64,
    /// Release-increment arithmetic (deviation D2).
    pub value_mode: ValueMode,
    /// Flag domain of the shared PIF. Default: the paper's five values
    /// (single-message channels). Systems with channels of capacity `c`
    /// must use [`crate::flag::FlagDomain::for_capacity`] — see
    /// [`crate::capacity`].
    pub flag_domain: crate::flag::FlagDomain,
}

/// Instrumentation counters (Lemmas 10 and 11); not protocol state.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct MeCounters {
    /// Visits to phase 0 (A4 wrap-arounds plus A6 resets) — Lemma 10.
    pub phase_zero_visits: u64,
    /// Advances of this process's `Value` pointer — Lemma 11 (meaningful
    /// at the leader).
    pub value_advances: u64,
    /// Critical-section executions.
    pub cs_entries: u64,
    /// `EXIT`-induced phase resets (A6 executions).
    pub exit_resets: u64,
}

/// Everything in a mutual-exclusion process except the shared PIF — split
/// out so the PIF's receive upcalls can borrow it mutably alongside the
/// PIF core.
#[derive(Clone, PartialEq, Eq, Debug)]
struct MeVars {
    me: ProcessId,
    n: usize,
    my_id: Id,
    config: MeConfig,
    request: RequestState,
    /// `Phase_p ∈ {0..4}`.
    phase: u8,
    /// The favour pointer, as a process index (D2). Domain `{0..n-1}`;
    /// only [`ValueMode::PaperLiteral`] can push it to `n`.
    value: usize,
    /// `Privileges_p[q]`: the recorded `YES`/`NO` answers.
    privileges: PerNeighbor<bool>,
    /// The embedded IDs-Learning layer.
    idl: IdlCore,
    /// Remaining CS activations (duration mode); `None` when outside the CS.
    in_cs: Option<u64>,
    counters: MeCounters,
}

impl MeVars {
    fn value_modulus(&self) -> usize {
        match self.config.value_mode {
            ValueMode::Corrected => self.n,
            ValueMode::PaperLiteral => self.n + 1,
        }
    }

    fn advance_value(&mut self) {
        self.value = (self.value + 1) % self.value_modulus();
        self.counters.value_advances += 1;
    }

    /// Definition 7 — does this process favour `q`?
    fn favours(&self, q: ProcessId) -> bool {
        self.value == q.index()
    }
}

impl PifApp<MeBroadcast, MeFeedback> for MeVars {
    fn on_broadcast(&mut self, from: ProcessId, data: &MeBroadcast) -> MeFeedback {
        match data {
            // IDL A3: feed back our identity.
            MeBroadcast::Idl => MeFeedback::Id(self.idl.broadcast_reply()),
            // A5: YES iff our Value designates the asker.
            MeBroadcast::Ask => {
                if self.favours(from) {
                    MeFeedback::Yes
                } else {
                    MeFeedback::No
                }
            }
            // A6: restart to phase 0.
            MeBroadcast::Exit => {
                if self.phase != 0 {
                    self.counters.phase_zero_visits += 1;
                }
                self.phase = 0;
                self.counters.exit_resets += 1;
                MeFeedback::Ok
            }
            // A7: the favoured process released; advance the pointer.
            MeBroadcast::ExitCs => {
                if self.favours(from) {
                    self.advance_value();
                }
                MeFeedback::Ok
            }
        }
    }

    fn on_feedback(&mut self, from: ProcessId, data: &MeFeedback) {
        match data {
            // IDL A4.
            MeFeedback::Id(qid) => self.idl.on_feedback_id(from, *qid),
            // A8 / A9.
            MeFeedback::Yes => self.privileges.set(from, true),
            MeFeedback::No => self.privileges.set(from, false),
            // A10: do nothing.
            MeFeedback::Ok => {}
        }
    }
}

/// The state projection of a mutual-exclusion process.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct MeState {
    /// The request variable.
    pub request: RequestState,
    /// The phase (`0..=4`).
    pub phase: u8,
    /// The favour pointer.
    pub value: usize,
    /// Recorded `YES`/`NO` answers (own slot unused).
    pub privileges: Vec<bool>,
    /// Remaining CS activations.
    pub in_cs: Option<u64>,
    /// The embedded IDL state.
    pub idl: IdlState,
    /// The shared PIF state.
    pub pif: PifState<MeBroadcast, MeFeedback>,
}

/// A mutual-exclusion process (Algorithm 3).
#[derive(Clone, Debug)]
pub struct MeProcess {
    pif: PifCore<MeBroadcast, MeFeedback>,
    vars: MeVars,
}

impl MeProcess {
    /// Creates a correctly-initialized process with identity `my_id` and
    /// the default configuration (atomic CS, corrected arithmetic).
    pub fn new(me: ProcessId, n: usize, my_id: Id) -> Self {
        Self::with_config(me, n, my_id, MeConfig::default())
    }

    /// Creates a process sized for channels of capacity `capacity`
    /// (`2·capacity + 3` flag values in the shared PIF — see
    /// [`crate::capacity`]); default configuration otherwise.
    pub fn for_capacity(me: ProcessId, n: usize, my_id: Id, capacity: usize) -> Self {
        Self::with_config(
            me,
            n,
            my_id,
            MeConfig {
                flag_domain: crate::flag::FlagDomain::for_capacity(capacity),
                ..MeConfig::default()
            },
        )
    }

    /// Creates a process with an explicit configuration.
    pub fn with_config(me: ProcessId, n: usize, my_id: Id, config: MeConfig) -> Self {
        MeProcess {
            pif: PifCore::with_domain(me, n, MeBroadcast::Idl, MeFeedback::Ok, config.flag_domain),
            vars: MeVars {
                me,
                n,
                my_id,
                config,
                request: RequestState::Done,
                phase: 0,
                value: 0,
                privileges: PerNeighbor::new(me, n, false),
                idl: IdlCore::new(me, n, my_id),
                in_cs: None,
                counters: MeCounters::default(),
            },
        }
    }

    /// This process's id.
    pub fn me(&self) -> ProcessId {
        self.vars.me
    }

    /// This process's constant identity.
    pub fn my_id(&self) -> Id {
        self.vars.my_id
    }

    /// Current request state.
    pub fn request(&self) -> RequestState {
        self.vars.request
    }

    /// Current phase.
    pub fn phase(&self) -> u8 {
        self.vars.phase
    }

    /// Current favour pointer.
    pub fn value(&self) -> usize {
        self.vars.value
    }

    /// True while the process executes the critical section (duration
    /// mode).
    pub fn is_in_cs(&self) -> bool {
        self.vars.in_cs.is_some()
    }

    /// The embedded IDs-Learning layer.
    pub fn idl(&self) -> &IdlCore {
        &self.vars.idl
    }

    /// The shared PIF instance.
    pub fn pif(&self) -> &PifCore<MeBroadcast, MeFeedback> {
        &self.pif
    }

    /// Instrumentation counters (Lemmas 10–11).
    pub fn counters(&self) -> MeCounters {
        self.vars.counters
    }

    /// Externally requests the critical section; refused while a request is
    /// pending or being served.
    ///
    /// One accepted request buys one critical-section grant. A service
    /// that wants more than one client operation per grant batches them
    /// *outside* the protocol — see [`crate::request::BatchQueue`] and the
    /// sharded, batching service layer in [`crate::shard`].
    pub fn request_cs(&mut self) -> bool {
        self.vars.request.try_request()
    }

    /// True if this process currently believes it is the leader: its own
    /// identity equals the minimum identity its IDs-Learning layer knows.
    /// On a correctly-initialized fleet whose IDL waves have run, exactly
    /// one process per instance answers `true`; the sharded service
    /// ([`crate::shard`]) uses this to report leader placement per shard.
    pub fn is_leader(&self) -> bool {
        self.is_leader_by_idl()
    }

    /// The `Winner(p)` predicate: this process is the leader favouring
    /// itself, or some recorded `YES` came from the process it believes is
    /// the leader.
    pub fn winner(&self) -> bool {
        let leader_self =
            self.vars.idl.min_id() == self.vars.my_id && self.vars.value == self.vars.me.index();
        let privileged = self
            .vars
            .privileges
            .iter()
            .any(|(q, &priv_q)| priv_q && self.vars.idl.id_of(q) == self.vars.idl.min_id());
        leader_self || privileged
    }

    fn is_leader_by_idl(&self) -> bool {
        self.vars.idl.min_id() == self.vars.my_id
    }

    /// The release step at the end of A3: the leader advances its own
    /// pointer ("Value ← 1" generalized to "next after self"); a
    /// non-leader broadcasts `EXITCS`.
    fn release(&mut self) {
        if self.is_leader_by_idl() {
            self.vars.value = (self.vars.me.index() + 1) % self.vars.value_modulus();
            self.vars.counters.value_advances += 1;
        } else {
            self.pif.force_request(MeBroadcast::ExitCs);
        }
    }

    /// Continuation of A3 while inside a non-atomic CS (deviation D1).
    fn cs_tick(&mut self, ctx: &mut Context<'_, MeMsg, MeEvent>) -> bool {
        match self.vars.in_cs {
            None => false,
            Some(remaining) if remaining > 1 => {
                self.vars.in_cs = Some(remaining - 1);
                true
            }
            Some(_) => {
                self.vars.in_cs = None;
                ctx.emit(MeEvent::CsExit);
                self.vars.request = RequestState::Done;
                ctx.emit(MeEvent::Served);
                self.release();
                self.vars.phase = 4;
                true
            }
        }
    }

    /// A0: phase 0 — start IDL, take a pending request into account.
    fn action_a0(&mut self, ctx: &mut Context<'_, MeMsg, MeEvent>) -> bool {
        if self.vars.phase != 0 {
            return false;
        }
        self.vars.idl.force_request();
        if self.vars.request == RequestState::Wait {
            self.vars.request = RequestState::In;
            ctx.emit(MeEvent::Started);
        }
        self.vars.phase = 1;
        true
    }

    /// A1: phase 1 — when IDL decided, broadcast `ASK`.
    fn action_a1(&mut self) -> bool {
        if self.vars.phase != 1 || self.vars.idl.request() != RequestState::Done {
            return false;
        }
        self.pif.force_request(MeBroadcast::Ask);
        self.vars.phase = 2;
        true
    }

    /// A2: phase 2 — when the `ASK` wave decided, a winner broadcasts
    /// `EXIT`.
    fn action_a2(&mut self) -> bool {
        if self.vars.phase != 2 || self.pif.request() != RequestState::Done {
            return false;
        }
        if self.winner() {
            self.pif.force_request(MeBroadcast::Exit);
        }
        self.vars.phase = 3;
        true
    }

    /// A3: phase 3 — when the `EXIT` wave decided, a winner executes the
    /// CS (if requesting) and releases.
    fn action_a3(&mut self, ctx: &mut Context<'_, MeMsg, MeEvent>) -> bool {
        if self.vars.phase != 3
            || self.pif.request() != RequestState::Done
            || self.vars.in_cs.is_some()
        {
            return false;
        }
        if self.winner() {
            if self.vars.request == RequestState::In {
                ctx.emit(MeEvent::CsEnter);
                self.vars.counters.cs_entries += 1;
                if self.vars.config.cs_duration > 0 {
                    // Suspend inside the CS; cs_tick completes A3 later.
                    self.vars.in_cs = Some(self.vars.config.cs_duration);
                    return true;
                }
                ctx.emit(MeEvent::CsExit);
                self.vars.request = RequestState::Done;
                ctx.emit(MeEvent::Served);
            }
            self.release();
        }
        self.vars.phase = 4;
        true
    }

    /// A4: phase 4 — when the last wave decided, wrap to phase 0.
    fn action_a4(&mut self) -> bool {
        if self.vars.phase != 4 || self.pif.request() != RequestState::Done {
            return false;
        }
        self.vars.phase = 0;
        self.vars.counters.phase_zero_visits += 1;
        true
    }
}

impl Protocol for MeProcess {
    type Msg = MeMsg;
    type Event = MeEvent;
    type State = MeState;

    fn activate(&mut self, ctx: &mut Context<'_, MeMsg, MeEvent>) -> bool {
        let mut acted = false;
        // CS continuation first: a process inside the CS does nothing else
        // internally until it leaves.
        acted |= self.cs_tick(ctx);
        if self.vars.in_cs.is_none() {
            acted |= self.action_a0(ctx);
            acted |= self.action_a1();
            acted |= self.action_a2();
            acted |= self.action_a3(ctx);
            acted |= self.action_a4();
            // The embedded IDL layer (Algorithm 2's A1/A2 over the shared
            // PIF).
            if self.vars.idl.action_a1(&mut self.pif, MeBroadcast::Idl) {
                acted = true;
            }
            if self.vars.idl.action_a2(&self.pif) {
                acted = true;
            }
        }
        // The shared PIF's own internal actions.
        acted |= self.pif.activate(ctx);
        acted
    }

    fn on_receive(&mut self, from: ProcessId, msg: MeMsg, ctx: &mut Context<'_, MeMsg, MeEvent>) {
        self.pif.handle_receive(from, msg, &mut self.vars, ctx);
    }

    fn has_enabled_action(&self) -> bool {
        if self.vars.in_cs.is_some() {
            return true;
        }
        let phase_enabled = match self.vars.phase {
            0 => true,
            1 => self.vars.idl.request() == RequestState::Done,
            2..=4 => self.pif.request() == RequestState::Done,
            _ => true, // corrupted out-of-range phase: treat as enabled (A4-like wrap)
        };
        phase_enabled
            || self.vars.idl.has_enabled_action(&self.pif)
            || self.pif.has_enabled_action()
    }

    fn corrupt(&mut self, rng: &mut SimRng) {
        self.vars.request = RequestState::arbitrary(rng);
        self.vars.phase = rng.gen_range(0..5) as u8;
        // Declared domain {0..n-1} — arbitrary within it (D2).
        self.vars.value = rng.gen_range(0..self.vars.n);
        self.vars.privileges.fill_with(|_| bool::arbitrary(rng));
        // Transient faults do not teleport a process into the middle of its
        // critical section (D1): CS occupancy is application state.
        self.vars.in_cs = None;
        self.vars.idl.corrupt(rng);
        self.pif.corrupt(rng);
    }

    fn snapshot(&self) -> MeState {
        MeState {
            request: self.vars.request,
            phase: self.vars.phase,
            value: self.vars.value,
            privileges: (0..self.vars.n)
                .map(|i| i != self.vars.me.index() && *self.vars.privileges.get(ProcessId::new(i)))
                .collect(),
            in_cs: self.vars.in_cs,
            idl: self.vars.idl.snapshot(),
            pif: self.pif.snapshot(),
        }
    }

    fn restore(&mut self, state: MeState) {
        assert_eq!(state.privileges.len(), self.vars.n, "state size mismatch");
        self.vars.request = state.request;
        self.vars.phase = state.phase;
        self.vars.value = state.value;
        for i in 0..self.vars.n {
            if i != self.vars.me.index() {
                self.vars
                    .privileges
                    .set(ProcessId::new(i), state.privileges[i]);
            }
        }
        self.vars.in_cs = state.in_cs;
        self.vars.idl.restore(state.idl);
        self.pif.restore(state.pif);
    }

    /// Specification 3 reads `Started`/`CsEnter`/`CsExit`/`Served`
    /// only; the wrapped PIF instance's wave events are per-delivery
    /// noise at scale (the leader runs waves continuously), so
    /// spec-detail traces drop them.
    fn event_is_spec_relevant(event: &MeEvent) -> bool {
        !matches!(event, MeEvent::Pif(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snapstab_sim::{
        Capacity, CorruptionPlan, NetworkBuilder, RandomScheduler, RoundRobin, Runner, Scheduler,
    };

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    /// Distinct ids; P1 is the leader in a 3+-process system.
    fn ids(n: usize) -> Vec<Id> {
        (0..n)
            .map(|i| if i == 1 { 5 } else { 100 + i as Id })
            .collect()
    }

    fn system_with<S: Scheduler>(
        n: usize,
        config: MeConfig,
        sched: S,
        seed: u64,
    ) -> Runner<MeProcess, S> {
        let idv = ids(n);
        let processes = (0..n)
            .map(|i| MeProcess::with_config(p(i), n, idv[i], config))
            .collect();
        let network = NetworkBuilder::new(n)
            .capacity(Capacity::Bounded(1))
            .build();
        Runner::new(processes, network, sched, seed)
    }

    fn system(n: usize) -> Runner<MeProcess, RoundRobin> {
        system_with(n, MeConfig::default(), RoundRobin::new(), 9)
    }

    #[test]
    fn phases_cycle_perpetually() {
        let mut r = system(3);
        r.run_steps(20_000).unwrap();
        for i in 0..3 {
            assert!(
                r.process(p(i)).counters().phase_zero_visits > 3,
                "P{i} should cycle through phase 0 repeatedly (Lemma 10)"
            );
        }
    }

    #[test]
    fn leader_value_rotates() {
        let mut r = system(3);
        r.run_steps(40_000).unwrap();
        // Lemma 11: the leader's Value advances infinitely often.
        assert!(
            r.process(p(1)).counters().value_advances > 2,
            "leader Value must rotate, got {:?}",
            r.process(p(1)).counters()
        );
    }

    #[test]
    fn requesting_process_is_served() {
        let mut r = system(3);
        assert!(r.process_mut(p(2)).request_cs());
        let out = r
            .run_until(500_000, |r| r.process(p(2)).request() == RequestState::Done)
            .unwrap();
        assert_eq!(out.stopped, snapstab_sim::StopCondition::Predicate);
        assert_eq!(r.process(p(2)).counters().cs_entries, 1);
    }

    #[test]
    fn leader_itself_is_served() {
        let mut r = system(3);
        assert!(r.process_mut(p(1)).request_cs());
        let out = r
            .run_until(500_000, |r| r.process(p(1)).request() == RequestState::Done)
            .unwrap();
        assert_eq!(out.stopped, snapstab_sim::StopCondition::Predicate);
        assert_eq!(r.process(p(1)).counters().cs_entries, 1);
    }

    #[test]
    fn all_requesting_processes_served_from_corruption() {
        for seed in 0..10 {
            let mut r = system_with(3, MeConfig::default(), RandomScheduler::new(), seed);
            let mut rng = SimRng::seed_from(seed + 1000);
            CorruptionPlan::full().apply(&mut r, &mut rng);
            // Genuine requests at every process (overwrite corrupted
            // request variables to model the external user's Wait).
            for i in 0..3 {
                r.process_mut(p(i)).vars.request = RequestState::Wait;
                r.mark(p(i), "request");
            }
            let out = r
                .run_until(2_000_000, |r| {
                    (0..3).all(|i| r.process(p(i)).request() == RequestState::Done)
                })
                .unwrap();
            assert_eq!(
                out.stopped,
                snapstab_sim::StopCondition::Predicate,
                "seed {seed}: every requesting process must be served (Start)"
            );
        }
    }

    #[test]
    fn cs_entries_only_while_request_in() {
        // A process that never requests never emits CsEnter from a clean
        // configuration.
        let mut r = system(3);
        r.run_steps(30_000).unwrap();
        for i in 0..3 {
            assert_eq!(
                r.process(p(i)).counters().cs_entries,
                0,
                "P{i} entered CS without requesting"
            );
        }
    }

    #[test]
    fn is_leader_tracks_idl_minimum() {
        let mut proc = MeProcess::new(p(0), 3, 5);
        // Fresh IDL state knows only its own id, so P0 believes it leads.
        assert!(proc.is_leader());
        // Learning a smaller id elsewhere revokes the belief.
        proc.vars.idl.on_feedback_id(p(1), 1);
        assert!(!proc.is_leader());
    }

    #[test]
    fn winner_predicate_leader_self() {
        let mut proc = MeProcess::new(p(0), 3, 1);
        // idl.min_id == my_id == 1 after init; value == me.index() == 0.
        assert!(proc.winner());
        proc.vars.value = 2;
        assert!(!proc.winner());
    }

    #[test]
    fn winner_predicate_privileged_by_leader() {
        let mut proc = MeProcess::new(p(2), 3, 100);
        // Learn that P0 is the leader (id 1), then record its YES.
        proc.vars.idl.on_feedback_id(p(0), 1);
        proc.vars.idl.on_feedback_id(p(1), 50);
        assert!(!proc.winner());
        proc.vars.privileges.set(p(0), true);
        assert!(proc.winner());
        // A YES from a non-leader does not make a winner.
        proc.vars.privileges.set(p(0), false);
        proc.vars.privileges.set(p(1), true);
        assert!(!proc.winner());
    }

    #[test]
    fn ask_answered_by_value() {
        let mut proc = MeProcess::new(p(0), 3, 7);
        proc.vars.value = 2;
        assert_eq!(
            proc.vars.on_broadcast(p(2), &MeBroadcast::Ask),
            MeFeedback::Yes
        );
        assert_eq!(
            proc.vars.on_broadcast(p(1), &MeBroadcast::Ask),
            MeFeedback::No
        );
    }

    #[test]
    fn exit_resets_phase() {
        let mut proc = MeProcess::new(p(0), 3, 7);
        proc.vars.phase = 3;
        assert_eq!(
            proc.vars.on_broadcast(p(1), &MeBroadcast::Exit),
            MeFeedback::Ok
        );
        assert_eq!(proc.vars.phase, 0);
        assert_eq!(proc.vars.counters.exit_resets, 1);
    }

    #[test]
    fn exitcs_advances_value_only_for_favoured() {
        let mut proc = MeProcess::new(p(0), 3, 7);
        proc.vars.value = 1;
        proc.vars.on_broadcast(p(2), &MeBroadcast::ExitCs);
        assert_eq!(proc.vars.value, 1, "non-favoured release ignored");
        proc.vars.on_broadcast(p(1), &MeBroadcast::ExitCs);
        assert_eq!(proc.vars.value, 2, "favoured release advances (mod n)");
        // Wrap-around: value 2 -> 0 in a 3-process corrected system.
        proc.vars.on_broadcast(p(2), &MeBroadcast::ExitCs);
        assert_eq!(proc.vars.value, 0);
    }

    #[test]
    fn paper_literal_mode_can_reach_favour_nobody() {
        let config = MeConfig {
            cs_duration: 0,
            value_mode: ValueMode::PaperLiteral,
            ..MeConfig::default()
        };
        let mut proc = MeProcess::with_config(p(0), 3, 7, config);
        proc.vars.value = 2;
        proc.vars.on_broadcast(p(2), &MeBroadcast::ExitCs);
        assert_eq!(proc.vars.value, 3, "mod (n+1) reaches the dead value n");
        // Nobody is favoured now; no ASK can be answered YES and no EXITCS
        // can advance the pointer.
        for q in [p(1), p(2)] {
            assert_eq!(proc.vars.on_broadcast(q, &MeBroadcast::Ask), MeFeedback::No);
            proc.vars.on_broadcast(q, &MeBroadcast::ExitCs);
            assert_eq!(proc.vars.value, 3);
        }
    }

    #[test]
    fn feedback_updates_privileges_and_ids() {
        let mut proc = MeProcess::new(p(0), 3, 7);
        proc.vars.on_feedback(p(1), &MeFeedback::Yes);
        assert!(*proc.vars.privileges.get(p(1)));
        proc.vars.on_feedback(p(1), &MeFeedback::No);
        assert!(!*proc.vars.privileges.get(p(1)));
        proc.vars.on_feedback(p(2), &MeFeedback::Id(3));
        assert_eq!(proc.idl().id_of(p(2)), 3);
        assert_eq!(proc.idl().min_id(), 3);
        proc.vars.on_feedback(p(2), &MeFeedback::Ok); // no-op
    }

    #[test]
    fn cs_duration_keeps_process_in_cs() {
        let config = MeConfig {
            cs_duration: 3,
            value_mode: ValueMode::Corrected,
            ..MeConfig::default()
        };
        let mut r = system_with(3, config, RoundRobin::new(), 4);
        r.process_mut(p(1)).request_cs();
        r.run_until(500_000, |r| r.process(p(1)).is_in_cs())
            .unwrap();
        assert!(r.process(p(1)).is_in_cs());
        // The process leaves the CS after its duration elapses and is served.
        r.run_until(500_000, |r| r.process(p(1)).request() == RequestState::Done)
            .unwrap();
        assert!(!r.process(p(1)).is_in_cs());
        assert_eq!(r.process(p(1)).counters().cs_entries, 1);
    }

    #[test]
    fn corruption_respects_domains_and_constants() {
        let mut proc = MeProcess::new(p(0), 4, 77);
        let mut rng = SimRng::seed_from(8);
        for _ in 0..50 {
            proc.corrupt(&mut rng);
            assert!(proc.phase() <= 4);
            assert!(proc.value() < 4, "declared domain {{0..n-1}}");
            assert_eq!(proc.my_id(), 77, "identity is a constant");
            assert!(!proc.is_in_cs(), "faults do not create CS occupancy (D1)");
        }
    }

    #[test]
    fn snapshot_restore_roundtrip() {
        let mut proc = MeProcess::new(p(2), 3, 9);
        let mut rng = SimRng::seed_from(21);
        proc.corrupt(&mut rng);
        let snap = proc.snapshot();
        proc.corrupt(&mut rng);
        proc.restore(snap.clone());
        assert_eq!(proc.snapshot(), snap);
    }

    #[test]
    fn arbitrary_broadcast_and_feedback_cover_variants() {
        let mut rng = SimRng::seed_from(0);
        let mut b_seen = std::collections::HashSet::new();
        let mut f_seen = std::collections::HashSet::new();
        for _ in 0..200 {
            b_seen.insert(format!("{:?}", MeBroadcast::arbitrary(&mut rng)));
            f_seen.insert(std::mem::discriminant(&MeFeedback::arbitrary(&mut rng)));
        }
        assert_eq!(b_seen.len(), 4);
        assert_eq!(f_seen.len(), 4);
    }

    #[test]
    fn served_event_follows_cs_enter() {
        let mut r = system(3);
        r.process_mut(p(0)).request_cs();
        r.run_until(500_000, |r| r.process(p(0)).request() == RequestState::Done)
            .unwrap();
        let events: Vec<_> = r
            .trace()
            .protocol_events_of(p(0))
            .map(|(_, e)| e.clone())
            .collect();
        let enter = events.iter().position(|e| matches!(e, MeEvent::CsEnter));
        let exit = events.iter().position(|e| matches!(e, MeEvent::CsExit));
        let served = events.iter().position(|e| matches!(e, MeEvent::Served));
        let started = events.iter().position(|e| matches!(e, MeEvent::Started));
        assert!(started < enter, "A0 precedes CS entry");
        assert!(enter < exit && exit <= served, "enter < exit <= served");
    }
}
