//! The `Request` input/output variable (§4.1).
//!
//! Every snap-stabilizing protocol in the paper exposes a three-valued
//! request variable to its external user (an application or a human):
//!
//! * the user sets it to `Wait` to request a computation — but only when it
//!   currently reads `Done` (the paper: "we assume that p does not set
//!   `Request_p` to `Wait` until the termination of the current
//!   computation");
//! * the protocol's starting action switches it `Wait → In`;
//! * the protocol's termination/decision switches it `In → Done`.
//!
//! Because the initial configuration is arbitrary, the variable may
//! *initially* hold any of the three values; the protocol's guarantees are
//! attached only to computations whose `Wait` was set by the user.

use snapstab_sim::{ArbitraryState, SimRng};

/// The state of the external request interface of a snap-stabilizing
/// protocol instance.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum RequestState {
    /// A computation has been requested but not yet started.
    Wait,
    /// A computation is in progress.
    In,
    /// No computation is requested or running (initial rest state for a
    /// correctly initialized system; any value is possible after faults).
    #[default]
    Done,
}

impl RequestState {
    /// True if the protocol may accept a new external request
    /// (the Hypothesis 1 discipline).
    pub fn accepts_request(self) -> bool {
        self == RequestState::Done
    }

    /// External request: switches `Done → Wait`. Returns `false` (and
    /// leaves the variable unchanged) if a computation is pending or in
    /// progress, enforcing the paper's user discipline.
    pub fn try_request(&mut self) -> bool {
        if self.accepts_request() {
            *self = RequestState::Wait;
            true
        } else {
            false
        }
    }
}

impl std::fmt::Display for RequestState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            RequestState::Wait => "Wait",
            RequestState::In => "In",
            RequestState::Done => "Done",
        };
        f.write_str(s)
    }
}

impl ArbitraryState for RequestState {
    fn arbitrary(rng: &mut SimRng) -> Self {
        match rng.gen_range(0..3) {
            0 => RequestState::Wait,
            1 => RequestState::In,
            _ => RequestState::Done,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_done() {
        assert_eq!(RequestState::default(), RequestState::Done);
    }

    #[test]
    fn request_discipline() {
        let mut r = RequestState::Done;
        assert!(r.try_request());
        assert_eq!(r, RequestState::Wait);
        // Pending request: a second request is refused.
        assert!(!r.try_request());
        r = RequestState::In;
        assert!(!r.try_request());
        assert_eq!(r, RequestState::In);
    }

    #[test]
    fn accepts_request_only_when_done() {
        assert!(RequestState::Done.accepts_request());
        assert!(!RequestState::Wait.accepts_request());
        assert!(!RequestState::In.accepts_request());
    }

    #[test]
    fn display_names() {
        assert_eq!(RequestState::Wait.to_string(), "Wait");
        assert_eq!(RequestState::In.to_string(), "In");
        assert_eq!(RequestState::Done.to_string(), "Done");
    }

    #[test]
    fn arbitrary_covers_all_values() {
        let mut rng = SimRng::seed_from(0);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            seen.insert(RequestState::arbitrary(&mut rng));
        }
        assert_eq!(seen.len(), 3);
    }
}
