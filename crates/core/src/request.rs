//! The `Request` input/output variable (§4.1) and the batched client
//! request path built on top of it.
//!
//! Every snap-stabilizing protocol in the paper exposes a three-valued
//! request variable to its external user (an application or a human):
//!
//! * the user sets it to `Wait` to request a computation — but only when it
//!   currently reads `Done` (the paper: "we assume that p does not set
//!   `Request_p` to `Wait` until the termination of the current
//!   computation");
//! * the protocol's starting action switches it `Wait → In`;
//! * the protocol's termination/decision switches it `In → Done`.
//!
//! Because the initial configuration is arbitrary, the variable may
//! *initially* hold any of the three values; the protocol's guarantees are
//! attached only to computations whose `Wait` was set by the user.
//!
//! ## Batching: many client requests per protocol request
//!
//! The `Request` variable admits **one** computation at a time, so a
//! mutex *service* built directly on it grants one critical-section entry
//! per leader `Value` rotation — the protocol-bound throughput ceiling the
//! live-runtime benchmarks measured. [`BatchQueue`] lifts that ceiling
//! without touching the protocol: client requests ([`ClientRequest`], each
//! naming a [`ResourceKey`]) queue *outside* the protocol, and one
//! `Request` cycle — one critical section — serves a whole batch of
//! pairwise **non-conflicting** requests (distinct resource keys)
//! atomically inside it. Exclusivity is untouched: the batch executes
//! inside a single CS interval of a single process, and Hypothesis 1's
//! user discipline still sees exactly one outstanding `Wait` per process.
//! [`crate::shard`] composes this with hash-partitioned shards so several
//! leaders rotate concurrently.

use std::collections::VecDeque;

use snapstab_sim::{ArbitraryState, SimRng};

/// The state of the external request interface of a snap-stabilizing
/// protocol instance.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum RequestState {
    /// A computation has been requested but not yet started.
    Wait,
    /// A computation is in progress.
    In,
    /// No computation is requested or running (initial rest state for a
    /// correctly initialized system; any value is possible after faults).
    #[default]
    Done,
}

impl RequestState {
    /// True if the protocol may accept a new external request
    /// (the Hypothesis 1 discipline).
    pub fn accepts_request(self) -> bool {
        self == RequestState::Done
    }

    /// External request: switches `Done → Wait`. Returns `false` (and
    /// leaves the variable unchanged) if a computation is pending or in
    /// progress, enforcing the paper's user discipline.
    pub fn try_request(&mut self) -> bool {
        if self.accepts_request() {
            *self = RequestState::Wait;
            true
        } else {
            false
        }
    }
}

impl std::fmt::Display for RequestState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            RequestState::Wait => "Wait",
            RequestState::In => "In",
            RequestState::Done => "Done",
        };
        f.write_str(s)
    }
}

impl ArbitraryState for RequestState {
    fn arbitrary(rng: &mut SimRng) -> Self {
        match rng.gen_range(0..3) {
            0 => RequestState::Wait,
            1 => RequestState::In,
            _ => RequestState::Done,
        }
    }
}

/// Identifies one resource of the service's resource space. Two client
/// requests **conflict** iff they name the same key; conflicting requests
/// must be serialized into different critical-section grants, while
/// non-conflicting ones may share a grant (see [`BatchQueue::take_batch`]).
pub type ResourceKey = u64;

/// One client request to the mutex service: a globally unique id (assigned
/// by the injector) and the resource it wants exclusive access to.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ClientRequest {
    /// Globally unique request id, assigned at injection.
    pub id: u64,
    /// The resource the request wants exclusive access to.
    pub key: ResourceKey,
}

/// A FIFO queue of pending [`ClientRequest`]s with conflict-aware batch
/// extraction.
///
/// The queue preserves **per-key FIFO order**: [`BatchQueue::take_batch`]
/// may serve requests for *different* keys out of arrival order (that
/// reordering is unobservable — the keys do not conflict), but two
/// requests for the same key are always granted in arrival order, because
/// the second one is skipped until a later batch.
///
/// ```
/// use snapstab_core::request::{BatchQueue, ClientRequest};
///
/// let mut q = BatchQueue::new(3);
/// for (id, key) in [(0, 7), (1, 7), (2, 9), (3, 4)] {
///     q.push(ClientRequest { id, key });
/// }
/// // One batch: at most 3 requests, pairwise-distinct keys. The second
/// // request for key 7 must wait for the next grant.
/// let batch = q.take_batch();
/// assert_eq!(batch.iter().map(|r| r.id).collect::<Vec<_>>(), vec![0, 2, 3]);
/// assert_eq!(q.take_batch().len(), 1); // id 1 rides the next grant
/// assert!(q.is_empty());
/// ```
#[derive(Clone, Debug, Default)]
pub struct BatchQueue {
    pending: VecDeque<ClientRequest>,
    max_batch: usize,
}

impl BatchQueue {
    /// Creates an empty queue whose batches carry at most `max_batch`
    /// requests (`max_batch == 1` reproduces the unbatched service).
    ///
    /// # Panics
    ///
    /// Panics if `max_batch` is zero.
    pub fn new(max_batch: usize) -> Self {
        assert!(max_batch >= 1, "a batch carries at least one request");
        BatchQueue {
            pending: VecDeque::new(),
            max_batch,
        }
    }

    /// Appends a client request.
    pub fn push(&mut self, req: ClientRequest) {
        self.pending.push_back(req);
    }

    /// Number of queued requests.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// True if nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Maximum batch size.
    pub fn max_batch(&self) -> usize {
        self.max_batch
    }

    /// Extracts the next grant's batch: up to `max_batch` requests with
    /// pairwise-distinct resource keys, scanning from the queue front.
    /// A request whose key is already in the batch is left queued (per-key
    /// FIFO); everything else keeps its relative order. Returns an empty
    /// batch iff the queue is empty.
    pub fn take_batch(&mut self) -> Vec<ClientRequest> {
        let mut batch: Vec<ClientRequest> = Vec::new();
        let mut skipped: VecDeque<ClientRequest> = VecDeque::new();
        while batch.len() < self.max_batch {
            let Some(req) = self.pending.pop_front() else {
                break;
            };
            if batch.iter().any(|b| b.key == req.key) {
                skipped.push_back(req);
            } else {
                batch.push(req);
            }
        }
        // Skipped (conflicting) requests go back to the front, in order,
        // ahead of the untouched tail.
        while let Some(req) = skipped.pop_back() {
            self.pending.push_front(req);
        }
        batch
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_done() {
        assert_eq!(RequestState::default(), RequestState::Done);
    }

    #[test]
    fn request_discipline() {
        let mut r = RequestState::Done;
        assert!(r.try_request());
        assert_eq!(r, RequestState::Wait);
        // Pending request: a second request is refused.
        assert!(!r.try_request());
        r = RequestState::In;
        assert!(!r.try_request());
        assert_eq!(r, RequestState::In);
    }

    #[test]
    fn accepts_request_only_when_done() {
        assert!(RequestState::Done.accepts_request());
        assert!(!RequestState::Wait.accepts_request());
        assert!(!RequestState::In.accepts_request());
    }

    #[test]
    fn display_names() {
        assert_eq!(RequestState::Wait.to_string(), "Wait");
        assert_eq!(RequestState::In.to_string(), "In");
        assert_eq!(RequestState::Done.to_string(), "Done");
    }

    #[test]
    fn arbitrary_covers_all_values() {
        let mut rng = SimRng::seed_from(0);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            seen.insert(RequestState::arbitrary(&mut rng));
        }
        assert_eq!(seen.len(), 3);
    }

    fn req(id: u64, key: ResourceKey) -> ClientRequest {
        ClientRequest { id, key }
    }

    #[test]
    fn batch_queue_respects_max_batch() {
        let mut q = BatchQueue::new(2);
        for i in 0..5 {
            q.push(req(i, 100 + i)); // all distinct keys
        }
        assert_eq!(q.len(), 5);
        assert_eq!(q.take_batch().len(), 2);
        assert_eq!(q.take_batch().len(), 2);
        assert_eq!(q.take_batch().len(), 1);
        assert!(q.take_batch().is_empty());
    }

    #[test]
    fn batch_queue_splits_conflicting_keys_across_grants() {
        let mut q = BatchQueue::new(4);
        // Three requests for key 1 interleaved with distinct keys: each
        // batch carries at most one of them, in arrival order.
        for (id, key) in [(0, 1), (1, 2), (2, 1), (3, 3), (4, 1)] {
            q.push(req(id, key));
        }
        let b1 = q.take_batch();
        assert_eq!(b1.iter().map(|r| r.id).collect::<Vec<_>>(), vec![0, 1, 3]);
        assert!(b1.iter().map(|r| r.key).all(|k| k == 1 || k == 2 || k == 3));
        let b2 = q.take_batch();
        assert_eq!(b2.iter().map(|r| r.id).collect::<Vec<_>>(), vec![2]);
        let b3 = q.take_batch();
        assert_eq!(b3.iter().map(|r| r.id).collect::<Vec<_>>(), vec![4]);
        assert!(q.is_empty());
    }

    #[test]
    fn batch_queue_single_slot_is_unbatched_fifo() {
        let mut q = BatchQueue::new(1);
        for (id, key) in [(7, 5), (8, 5), (9, 6)] {
            q.push(req(id, key));
        }
        assert_eq!(q.max_batch(), 1);
        assert_eq!(q.take_batch(), vec![req(7, 5)]);
        assert_eq!(q.take_batch(), vec![req(8, 5)]);
        assert_eq!(q.take_batch(), vec![req(9, 6)]);
    }

    #[test]
    #[should_panic(expected = "at least one request")]
    fn batch_queue_rejects_zero_batch() {
        let _ = BatchQueue::new(0);
    }

    #[test]
    fn batch_is_always_conflict_free() {
        // Adversarial key pattern: heavy duplication.
        let mut q = BatchQueue::new(3);
        for id in 0..20 {
            q.push(req(id, id % 2));
        }
        let mut served = Vec::new();
        while !q.is_empty() {
            let batch = q.take_batch();
            assert!(!batch.is_empty());
            let mut keys: Vec<_> = batch.iter().map(|r| r.key).collect();
            keys.sort_unstable();
            keys.dedup();
            assert_eq!(keys.len(), batch.len(), "conflict inside a batch");
            served.extend(batch.iter().map(|r| r.id));
        }
        // Every request served exactly once, and per-key FIFO held.
        let mut sorted = served.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
        for key in 0..2u64 {
            let of_key: Vec<_> = served.iter().filter(|id| *id % 2 == key).collect();
            assert!(of_key.windows(2).all(|w| w[0] < w[1]), "per-key FIFO");
        }
    }
}
