//! The five-valued handshake flag of Algorithm 1.
//!
//! Each process `p` keeps, per neighbor `q`, a flag `State_p[q] ∈ {0..4}`
//! and its view `NeigState_p[q]` of the neighbor's flag. A PIF wave from
//! `p` completes toward `q` only after `State_p[q]` has been incremented
//! four times, each increment requiring a message from `q` echoing the
//! current value. Because a single-message-capacity link can hide at most
//! one stale message per direction plus one stale `NeigState` value, three
//! increments can be driven by garbage (the Figure 1 worst case) — the
//! fourth cannot. Five values (`0..=4`) are therefore exactly enough; the
//! ablation experiment A1 runs smaller domains via [`FlagDomain`] and
//! exhibits the resulting safety violations.

use snapstab_sim::{ArbitraryState, SimRng};

/// The flag domain `{0 ..= max}`. The paper's protocol uses
/// [`FlagDomain::PAPER`] (`max = 4`, five values); other sizes exist only
/// for the minimality ablation.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct FlagDomain {
    max: u8,
}

impl FlagDomain {
    /// The paper's domain `{0,1,2,3,4}`.
    pub const PAPER: FlagDomain = FlagDomain { max: 4 };

    /// A custom domain `{0 ..= max}` (ablation only).
    ///
    /// # Panics
    ///
    /// Panics if `max == 0`: the handshake needs at least one increment.
    pub fn with_max(max: u8) -> Self {
        assert!(max >= 1, "flag domain needs at least two values");
        FlagDomain { max }
    }

    /// The smallest flag domain that makes the PIF handshake snap-stabilizing
    /// over channels of capacity `capacity`: `{0 ..= 2·capacity + 2}`, i.e.
    /// `2·capacity + 3` values.
    ///
    /// The paper proves the single-message case and notes (§4) that "the
    /// extension to an arbitrary but known bounded message capacity is
    /// straightforward". The counting argument generalizing Figure 1: an
    /// arbitrary initial configuration hides at most `capacity` messages in
    /// the channel `q → p` (each can echo one future value of `State_p[q]`),
    /// one corrupted `NeigState_q[p]` (echoed until overwritten, matching at
    /// most once), and `capacity` messages in the channel `p → q` (each
    /// overwrites `NeigState_q[p]` with one crafted value that `q` then
    /// echoes, matching at most once). Stale sources therefore drive at most
    /// `2·capacity + 1` increments, and FIFO order forces every stale
    /// `p → q` message out of the channel before any post-start message of
    /// `p` reaches `q` — so with `2·capacity + 2` increments required, the
    /// last one is necessarily genuine. For `capacity = 1` this is the
    /// paper's five-valued domain. See `snapstab_core::capacity` for the
    /// executable tightness analysis.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is `0` (no such channel) or too large for the
    /// `u8`-backed flag (`capacity > 126`).
    pub fn for_capacity(capacity: usize) -> Self {
        assert!(capacity >= 1, "channel capacity must be at least 1");
        assert!(
            capacity <= 126,
            "flag domain overflows u8 beyond capacity 126"
        );
        FlagDomain {
            max: 2 * capacity as u8 + 2,
        }
    }

    /// The largest channel capacity this domain tolerates while keeping the
    /// handshake snap-stabilizing: `(max − 2) / 2`, or `0` if the domain is
    /// too small for any capacity (a domain of fewer than five values is
    /// breakable even on single-message channels).
    pub fn max_tolerated_capacity(self) -> usize {
        (self.max.saturating_sub(2) / 2) as usize
    }

    /// True if the handshake over this domain withstands arbitrary initial
    /// configurations on channels of capacity `capacity`.
    pub fn tolerates_capacity(self, capacity: usize) -> bool {
        capacity >= 1 && self.max_tolerated_capacity() >= capacity
    }

    /// The number of flag increments an adversarial initial configuration
    /// can drive without any genuine round trip, on channels of capacity
    /// `capacity`: `2·capacity + 1` (capped at this domain's `max`).
    pub fn stale_increment_bound(self, capacity: usize) -> u8 {
        (2 * capacity as u8 + 1).min(self.max)
    }

    /// The completion value (the paper's `4`).
    pub fn max(self) -> Flag {
        Flag(self.max)
    }

    /// The broadcast-trigger value (the paper's `3`): a received
    /// `sender_state` equal to this generates the `receive-brd` event.
    pub fn broadcast_value(self) -> Flag {
        Flag(self.max - 1)
    }

    /// Number of values in the domain (the paper's 5).
    pub fn size(self) -> usize {
        self.max as usize + 1
    }

    /// Draws an arbitrary in-domain flag (corrupted initial values are
    /// arbitrary *within the domain*, as variables cannot hold values
    /// outside their type).
    pub fn arbitrary_flag(self, rng: &mut SimRng) -> Flag {
        Flag(rng.gen_range(0..self.size()) as u8)
    }

    /// Clamps a (possibly forged) flag into this domain.
    pub fn clamp(self, f: Flag) -> Flag {
        Flag(f.0.min(self.max))
    }
}

impl Default for FlagDomain {
    fn default() -> Self {
        FlagDomain::PAPER
    }
}

/// A handshake flag value (`State_p[q]` / `NeigState_p[q]` and the two
/// flag fields of every PIF message).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct Flag(u8);

impl Flag {
    /// The zero flag (reset at the start of a wave).
    pub const ZERO: Flag = Flag(0);

    /// Constructs a flag from a raw value.
    pub const fn new(v: u8) -> Self {
        Flag(v)
    }

    /// The raw value.
    pub const fn value(self) -> u8 {
        self.0
    }

    /// The successor flag, saturating at the domain maximum.
    pub fn incremented(self, domain: FlagDomain) -> Flag {
        if self.0 < domain.max {
            Flag(self.0 + 1)
        } else {
            self
        }
    }

    /// True if this flag equals the domain's completion value.
    pub fn is_complete(self, domain: FlagDomain) -> bool {
        self.0 == domain.max
    }
}

impl std::fmt::Display for Flag {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl ArbitraryState for Flag {
    /// Arbitrary flag in the *paper's* domain; ablation domains draw via
    /// [`FlagDomain::arbitrary_flag`].
    fn arbitrary(rng: &mut SimRng) -> Self {
        FlagDomain::PAPER.arbitrary_flag(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_domain_shape() {
        let d = FlagDomain::PAPER;
        assert_eq!(d.size(), 5);
        assert_eq!(d.max(), Flag::new(4));
        assert_eq!(d.broadcast_value(), Flag::new(3));
    }

    #[test]
    fn increments_saturate_at_max() {
        let d = FlagDomain::PAPER;
        let mut f = Flag::ZERO;
        for expect in 1..=4u8 {
            f = f.incremented(d);
            assert_eq!(f.value(), expect);
        }
        assert_eq!(f.incremented(d), f, "saturates at 4");
        assert!(f.is_complete(d));
    }

    #[test]
    fn custom_domain() {
        let d = FlagDomain::with_max(2);
        assert_eq!(d.size(), 3);
        assert_eq!(d.broadcast_value(), Flag::new(1));
        assert!(Flag::new(2).is_complete(d));
        assert!(!Flag::new(2).is_complete(FlagDomain::PAPER));
    }

    #[test]
    fn clamp_pulls_into_domain() {
        let d = FlagDomain::with_max(3);
        assert_eq!(d.clamp(Flag::new(9)), Flag::new(3));
        assert_eq!(d.clamp(Flag::new(2)), Flag::new(2));
    }

    #[test]
    fn arbitrary_stays_in_paper_domain() {
        let mut rng = SimRng::seed_from(5);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            let f = Flag::arbitrary(&mut rng);
            assert!(f.value() <= 4);
            seen.insert(f.value());
        }
        assert_eq!(seen.len(), 5, "all five values occur");
    }

    #[test]
    #[should_panic(expected = "at least two values")]
    fn degenerate_domain_rejected() {
        let _ = FlagDomain::with_max(0);
    }

    #[test]
    fn ordering_matches_values() {
        assert!(Flag::new(1) < Flag::new(3));
        assert_eq!(Flag::default(), Flag::ZERO);
    }

    #[test]
    fn capacity_one_gives_the_paper_domain() {
        assert_eq!(FlagDomain::for_capacity(1), FlagDomain::PAPER);
    }

    #[test]
    fn capacity_domain_has_2c_plus_3_values() {
        for c in 1..=10usize {
            let d = FlagDomain::for_capacity(c);
            assert_eq!(d.size(), 2 * c + 3);
            assert_eq!(d.max(), Flag::new(2 * c as u8 + 2));
            assert_eq!(d.broadcast_value(), Flag::new(2 * c as u8 + 1));
        }
    }

    #[test]
    fn tolerated_capacity_is_the_inverse() {
        for c in 1..=10usize {
            let d = FlagDomain::for_capacity(c);
            assert_eq!(d.max_tolerated_capacity(), c);
            assert!(d.tolerates_capacity(c));
            assert!(!d.tolerates_capacity(c + 1));
        }
        // The paper's domain tolerates exactly capacity 1.
        assert!(FlagDomain::PAPER.tolerates_capacity(1));
        assert!(!FlagDomain::PAPER.tolerates_capacity(2));
        // Undersized domains tolerate nothing.
        assert!(!FlagDomain::with_max(3).tolerates_capacity(1));
        assert_eq!(FlagDomain::with_max(2).max_tolerated_capacity(), 0);
    }

    #[test]
    fn stale_increment_bound_caps_at_max() {
        assert_eq!(FlagDomain::PAPER.stale_increment_bound(1), 3);
        assert_eq!(FlagDomain::for_capacity(2).stale_increment_bound(2), 5);
        // Undersized: the bound saturates at the completion value — the
        // adversary can complete the wave on stale data alone.
        assert_eq!(FlagDomain::PAPER.stale_increment_bound(2), 4);
    }

    #[test]
    #[should_panic(expected = "capacity must be at least 1")]
    fn zero_capacity_rejected() {
        let _ = FlagDomain::for_capacity(0);
    }

    #[test]
    #[should_panic(expected = "overflows u8")]
    fn huge_capacity_rejected() {
        let _ = FlagDomain::for_capacity(127);
    }
}
