//! Network topologies beyond the paper's fully-connected system.
//!
//! The paper proves its protocols for complete graphs and names general
//! topologies as an open extension (§5). The simulator supports arbitrary
//! undirected connected graphs: the fully-connected constructors remain
//! the default everywhere, and the topology-aware extension protocols
//! (crate `snapstab-topology`) restrict communication to graph edges.

use crate::id::ProcessId;

/// An undirected graph over processes `0 .. n`, stored as an adjacency
/// matrix (systems are small; O(n²) bits is irrelevant).
///
/// ```
/// use snapstab_sim::{ProcessId, Topology};
/// let ring = Topology::ring(5);
/// assert!(ring.is_connected());
/// assert_eq!(ring.neighbors(ProcessId::new(0)).len(), 2);
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Topology {
    n: usize,
    adj: Vec<bool>,
}

impl Topology {
    fn empty(n: usize) -> Self {
        assert!(n >= 2, "a topology needs at least 2 processes");
        Topology {
            n,
            adj: vec![false; n * n],
        }
    }

    fn idx(&self, a: ProcessId, b: ProcessId) -> usize {
        a.index() * self.n + b.index()
    }

    /// The complete graph (the paper's setting).
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn complete(n: usize) -> Self {
        let mut t = Topology::empty(n);
        for a in 0..n {
            for b in 0..n {
                if a != b {
                    t.adj[a * n + b] = true;
                }
            }
        }
        t
    }

    /// The cycle `0 — 1 — … — n−1 — 0`.
    ///
    /// # Panics
    ///
    /// Panics if `n < 3` (a 2-cycle is a multi-edge).
    pub fn ring(n: usize) -> Self {
        assert!(n >= 3, "a ring needs at least 3 processes");
        let mut t = Topology::empty(n);
        for a in 0..n {
            t.add_edge(ProcessId::new(a), ProcessId::new((a + 1) % n));
        }
        t
    }

    /// The path `0 — 1 — … — n−1`.
    pub fn path(n: usize) -> Self {
        let mut t = Topology::empty(n);
        for a in 0..n - 1 {
            t.add_edge(ProcessId::new(a), ProcessId::new(a + 1));
        }
        t
    }

    /// The star with center `0`.
    pub fn star(n: usize) -> Self {
        let mut t = Topology::empty(n);
        for a in 1..n {
            t.add_edge(ProcessId::new(0), ProcessId::new(a));
        }
        t
    }

    /// A complete binary tree rooted at `0` (node `i`'s children are
    /// `2i + 1` and `2i + 2` where they exist).
    pub fn binary_tree(n: usize) -> Self {
        let mut t = Topology::empty(n);
        for a in 1..n {
            t.add_edge(ProcessId::new(a), ProcessId::new((a - 1) / 2));
        }
        t
    }

    /// A tree from a parent array: `parents[i]` is the parent of process
    /// `i + 1` (process 0 is the root).
    ///
    /// # Panics
    ///
    /// Panics if a parent index is out of range or not smaller than its
    /// child (which would allow cycles).
    pub fn from_parents(parents: &[usize]) -> Self {
        let n = parents.len() + 1;
        let mut t = Topology::empty(n);
        for (i, &par) in parents.iter().enumerate() {
            let child = i + 1;
            assert!(par < child, "parent {par} must precede child {child}");
            t.add_edge(ProcessId::new(par), ProcessId::new(child));
        }
        t
    }

    /// An arbitrary graph from an edge list.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range endpoints or self-loops.
    pub fn from_edges(n: usize, edges: &[(usize, usize)]) -> Self {
        let mut t = Topology::empty(n);
        for &(a, b) in edges {
            assert!(a < n && b < n, "edge ({a},{b}) out of range");
            t.add_edge(ProcessId::new(a), ProcessId::new(b));
        }
        t
    }

    /// Adds the undirected edge `{a, b}`.
    ///
    /// # Panics
    ///
    /// Panics on self-loops or out-of-range ids.
    pub fn add_edge(&mut self, a: ProcessId, b: ProcessId) {
        assert!(a != b, "no self-loops");
        assert!(
            a.index() < self.n && b.index() < self.n,
            "edge out of range"
        );
        let (i, j) = (self.idx(a, b), self.idx(b, a));
        self.adj[i] = true;
        self.adj[j] = true;
    }

    /// Number of processes.
    pub fn n(&self) -> usize {
        self.n
    }

    /// True if `{a, b}` is an edge.
    pub fn has_edge(&self, a: ProcessId, b: ProcessId) -> bool {
        a != b && self.adj[self.idx(a, b)]
    }

    /// The neighbors of `p`, in id order.
    pub fn neighbors(&self, p: ProcessId) -> Vec<ProcessId> {
        (0..self.n)
            .map(ProcessId::new)
            .filter(|&q| self.has_edge(p, q))
            .collect()
    }

    /// Degree of `p`.
    pub fn degree(&self, p: ProcessId) -> usize {
        self.neighbors(p).len()
    }

    /// Number of undirected edges.
    pub fn edge_count(&self) -> usize {
        self.adj.iter().filter(|&&e| e).count() / 2
    }

    /// True if every process can reach every other over edges.
    pub fn is_connected(&self) -> bool {
        let mut seen = vec![false; self.n];
        let mut stack = vec![0usize];
        seen[0] = true;
        while let Some(a) = stack.pop() {
            let row = &self.adj[a * self.n..(a + 1) * self.n];
            for (b, &edge) in row.iter().enumerate() {
                if edge && !seen[b] {
                    seen[b] = true;
                    stack.push(b);
                }
            }
        }
        seen.into_iter().all(|s| s)
    }

    /// True if the graph is a tree (connected, `n − 1` edges).
    pub fn is_tree(&self) -> bool {
        self.is_connected() && self.edge_count() == self.n - 1
    }

    /// Graph diameter (longest shortest path), by BFS from every node.
    ///
    /// # Panics
    ///
    /// Panics if the graph is disconnected (no finite diameter).
    pub fn diameter(&self) -> usize {
        assert!(self.is_connected(), "diameter of a disconnected graph");
        let mut best = 0usize;
        for s in 0..self.n {
            let mut dist = vec![usize::MAX; self.n];
            dist[s] = 0;
            let mut queue = std::collections::VecDeque::from([s]);
            while let Some(a) = queue.pop_front() {
                for b in 0..self.n {
                    if self.adj[a * self.n + b] && dist[b] == usize::MAX {
                        dist[b] = dist[a] + 1;
                        queue.push_back(b);
                    }
                }
            }
            best = best.max(dist.into_iter().max().expect("non-empty"));
        }
        best
    }

    /// A breadth-first spanning tree rooted at `root` (for running the
    /// tree protocols over non-tree graphs).
    ///
    /// # Panics
    ///
    /// Panics if the graph is disconnected.
    pub fn bfs_spanning_tree(&self, root: ProcessId) -> Topology {
        assert!(self.is_connected(), "spanning tree of a disconnected graph");
        let mut t = Topology::empty(self.n);
        let mut seen = vec![false; self.n];
        seen[root.index()] = true;
        let mut queue = std::collections::VecDeque::from([root.index()]);
        while let Some(a) = queue.pop_front() {
            let row = &self.adj[a * self.n..(a + 1) * self.n];
            for (b, &edge) in row.iter().enumerate() {
                if edge && !seen[b] {
                    seen[b] = true;
                    t.add_edge(ProcessId::new(a), ProcessId::new(b));
                    queue.push_back(b);
                }
            }
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn complete_graph_shape() {
        let t = Topology::complete(4);
        assert_eq!(t.edge_count(), 6);
        assert!(t.is_connected());
        assert!(!t.is_tree());
        assert_eq!(t.diameter(), 1);
        assert_eq!(t.degree(p(2)), 3);
    }

    #[test]
    fn ring_shape() {
        let t = Topology::ring(6);
        assert_eq!(t.edge_count(), 6);
        assert!(t.is_connected());
        assert_eq!(t.diameter(), 3);
        assert!(t.neighbors(p(0)).contains(&p(5)));
    }

    #[test]
    fn path_and_star_are_trees() {
        assert!(Topology::path(5).is_tree());
        assert!(Topology::star(5).is_tree());
        assert_eq!(Topology::path(5).diameter(), 4);
        assert_eq!(Topology::star(5).diameter(), 2);
    }

    #[test]
    fn binary_tree_shape() {
        let t = Topology::binary_tree(7);
        assert!(t.is_tree());
        assert_eq!(t.degree(p(0)), 2);
        assert_eq!(t.degree(p(1)), 3);
        assert_eq!(t.diameter(), 4);
    }

    #[test]
    fn from_parents_builds_the_tree() {
        // 0 is root; 1, 2 children of 0; 3 child of 2.
        let t = Topology::from_parents(&[0, 0, 2]);
        assert!(t.is_tree());
        assert_eq!(t.neighbors(p(2)), vec![p(0), p(3)]);
    }

    #[test]
    fn from_edges_and_connectivity() {
        let t = Topology::from_edges(4, &[(0, 1), (2, 3)]);
        assert!(!t.is_connected());
        let t2 = Topology::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        assert!(t2.is_connected());
        assert!(!t2.is_tree());
    }

    #[test]
    fn bfs_spanning_tree_spans() {
        let t = Topology::complete(6);
        let tree = t.bfs_spanning_tree(p(2));
        assert!(tree.is_tree());
        for q in 0..6 {
            if q != 2 {
                assert!(
                    tree.has_edge(p(2), p(q)),
                    "complete graph BFS tree is a star"
                );
            }
        }
        let ring_tree = Topology::ring(5).bfs_spanning_tree(p(0));
        assert!(ring_tree.is_tree());
    }

    #[test]
    #[should_panic(expected = "no self-loops")]
    fn self_loops_rejected() {
        let mut t = Topology::path(3);
        t.add_edge(p(1), p(1));
    }

    #[test]
    #[should_panic(expected = "at least 3")]
    fn tiny_ring_rejected() {
        let _ = Topology::ring(2);
    }
}
