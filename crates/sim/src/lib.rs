//! # snapstab-sim — a deterministic message-passing system simulator
//!
//! This crate implements the system model of Delaët, Devismes, Nesterenko
//! and Tixeuil, *Snap-Stabilization in Message-Passing Systems* (2008), §2:
//!
//! * a finite set of `n` deterministic processes over a **fully-connected**
//!   topology (every ordered pair of distinct processes is joined by a FIFO
//!   channel);
//! * channels that are **unreliable but fair**: messages may be lost, but if
//!   a process sends infinitely many messages to a destination, infinitely
//!   many of them are received ([`LossModel`]);
//! * channel capacity that is either **bounded and known** (a send into a
//!   full channel silently loses the message — §4) or **finite yet
//!   unbounded** ([`Capacity`]), the distinction at the heart of the paper's
//!   impossibility/possibility dichotomy;
//! * processes expressed as collections of **guarded actions** executed
//!   atomically ([`Protocol`]);
//! * executions that may start from **any** configuration (`I = C`):
//!   [`arbitrary`] draws every variable of every process uniformly from its
//!   domain and pre-loads every channel with arbitrary messages.
//!
//! The simulator is single-threaded and fully deterministic given a seed, so
//! every experiment in the reproduction is replayable.
//!
//! ## Quick tour
//!
//! ```
//! use snapstab_sim::{Capacity, LossModel, NetworkBuilder, ProcessId};
//!
//! // A 4-process fully connected network with single-message channels that
//! // drop 10% of sends (fair-lossy), as in the paper's positive results.
//! let network = NetworkBuilder::<u32>::new(4)
//!     .capacity(Capacity::Bounded(1))
//!     .build();
//! assert_eq!(network.n(), 4);
//! assert_eq!(network.channel_count(), 12); // n * (n - 1)
//! # let _ = LossModel::probabilistic(0.1);
//! # let _ = ProcessId::new(0);
//! ```
//!
//! ## Performance: the incremental step loop
//!
//! A scheduled step used to rebuild the daemon's view from scratch — a
//! fresh `Vec<bool>` of enabled flags, an O(n²) scan for non-empty
//! channels, and a materialized move list — three allocations and O(n²)
//! work per step even when nothing changed. The hot path is now
//! O(changed-state) and allocation-free in steady state:
//!
//! * [`Network`] maintains its non-empty-link set *incrementally* (sorted
//!   row-major, updated on `send`/`deliver` and re-synced by the
//!   [`network::ChannelGuard`] after harness edits) and exposes it as a
//!   borrowed slice; [`Network::is_quiescent`] is O(1).
//! * [`Runner`] keeps a persistent [`SystemView`] buffer: per-process
//!   enabled flags refresh only for processes the last step touched, and
//!   the link list re-syncs only when [`Network::links_version`] moved.
//! * [`Scheduler::pick`] selects by index over the view
//!   ([`SystemView::nth_move`]) instead of materializing
//!   `applicable_moves()`.
//!
//! Measured on the sustained IDs-Learning workload (`exp_stepbench`,
//! trace recording off), ns per atomic step, before → after:
//!
//! | n   | rebuild-per-step | incremental | speedup |
//! |-----|------------------|-------------|---------|
//! | 8   | 304              | ~100        | ~3×     |
//! | 32  | 1 332            | ~160        | ~8×     |
//! | 128 | 15 640           | ~290        | ~54×    |
//!
//! Equivalence with the historical semantics is property-tested: the
//! incremental view always equals a fresh scan, and a `step()`-driven run
//! produces a bit-identical trace to a replica that rebuilds the view
//! every step (`tests/proptest_sim.rs`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arbitrary;
pub mod channel;
pub mod context;
pub mod error;
pub mod id;
pub mod loss;
pub mod network;
pub mod process;
pub mod render;
pub mod rng;
pub mod runner;
pub mod scheduler;
pub mod stats;
pub mod topology;
pub mod trace;

pub use arbitrary::{ArbitraryState, CorruptionPlan};
pub use channel::{Capacity, Channel};
pub use context::Context;
pub use error::SimError;
pub use id::{neighbors, PerNeighbor, ProcessId};
pub use loss::LossModel;
pub use network::{ChannelGuard, Network, NetworkBuilder};
pub use process::{Message, Protocol};
pub use render::{render_events, render_timeline, RenderOptions};
pub use rng::SimRng;
pub use runner::{RunOutcome, Runner, StopCondition};
pub use scheduler::{Move, RandomScheduler, RoundRobin, Scheduler, ScriptedScheduler, SystemView};
pub use stats::SimStats;
pub use topology::Topology;
pub use trace::{SendFate, Trace, TraceEntry, TraceEvent};
