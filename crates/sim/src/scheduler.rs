//! Schedulers: who takes the next atomic step.
//!
//! An execution of the paper's transition system is a maximal sequence of
//! steps; the scheduler (the "daemon" of the self-stabilization literature)
//! picks each step among the applicable moves:
//!
//! * `Activate(p)` — process `p` executes its enabled internal actions;
//! * `Deliver(from → to)` — the head message of a non-empty channel is
//!   received (its receive action executes).
//!
//! Fairness matters for the liveness claims (Start / Termination):
//! [`RoundRobin`] is deterministically weakly fair; [`RandomScheduler`] is
//! fair with probability 1. [`ScriptedScheduler`] replays an exact move
//! sequence and is used by the Figure 1 and Theorem 1 reproductions.
//!
//! Schedulers select by *index* over the applicable moves — activations in
//! id order, then deliveries in row-major link order — through
//! [`SystemView::nth_move`], so a step never materializes the move list.
//! The view itself is a persistent buffer the runner updates incrementally
//! (see [`crate::Runner`]); a scheduling decision is allocation-free.

use crate::id::ProcessId;
use crate::rng::SimRng;

/// One schedulable step.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Move {
    /// Process `p` executes its enabled internal actions.
    Activate(ProcessId),
    /// The head message of channel `from → to` is delivered.
    Deliver {
        /// Sender side of the channel.
        from: ProcessId,
        /// Receiver side of the channel.
        to: ProcessId,
    },
}

/// What the scheduler can see when picking a move: which processes have
/// enabled internal actions, and which channels are non-empty.
///
/// The applicable moves are indexed `0..move_count()`: first the enabled
/// processes in id order, then the non-empty links in row-major order —
/// the same order [`SystemView::applicable_moves`] materializes, so
/// index-based and list-based selection agree move for move.
#[derive(Clone, Debug, Default)]
pub struct SystemView {
    /// `enabled[i]` is true if process `i` has an enabled internal action.
    enabled: Vec<bool>,
    /// The ids with `enabled[i] == true`, kept sorted.
    enabled_ids: Vec<ProcessId>,
    /// All `(from, to)` links whose channel holds at least one message,
    /// sorted in row-major order.
    links: Vec<(ProcessId, ProcessId)>,
}

impl SystemView {
    /// An all-quiescent view of `n` processes (the runner's starting
    /// buffer).
    pub fn new(n: usize) -> Self {
        SystemView {
            enabled: vec![false; n],
            enabled_ids: Vec::new(),
            links: Vec::new(),
        }
    }

    /// Builds a view from raw parts: per-process enabled flags and the
    /// non-empty links (sorted and deduplicated here, so any order is
    /// accepted).
    pub fn from_parts(
        enabled: Vec<bool>,
        mut non_empty_links: Vec<(ProcessId, ProcessId)>,
    ) -> Self {
        non_empty_links.sort_unstable();
        non_empty_links.dedup();
        let enabled_ids = enabled
            .iter()
            .enumerate()
            .filter(|(_, &e)| e)
            .map(|(i, _)| ProcessId::new(i))
            .collect();
        SystemView {
            enabled,
            enabled_ids,
            links: non_empty_links,
        }
    }

    /// Number of processes in the view.
    pub fn n(&self) -> usize {
        self.enabled.len()
    }

    /// True if process `p` has an enabled internal action (false for ids
    /// out of range).
    pub fn is_enabled(&self, p: ProcessId) -> bool {
        self.enabled.get(p.index()).copied().unwrap_or(false)
    }

    /// Per-process enabled flags, in id order.
    pub fn enabled_flags(&self) -> &[bool] {
        &self.enabled
    }

    /// The processes with enabled internal actions, in id order.
    pub fn enabled_ids(&self) -> &[ProcessId] {
        &self.enabled_ids
    }

    /// All `(from, to)` links whose channel holds at least one message, in
    /// row-major order.
    pub fn non_empty_links(&self) -> &[(ProcessId, ProcessId)] {
        &self.links
    }

    /// True if the channel `from → to` holds at least one message.
    pub fn has_link(&self, from: ProcessId, to: ProcessId) -> bool {
        self.links.binary_search(&(from, to)).is_ok()
    }

    /// Number of applicable activations.
    pub fn activation_count(&self) -> usize {
        self.enabled_ids.len()
    }

    /// Number of applicable deliveries.
    pub fn delivery_count(&self) -> usize {
        self.links.len()
    }

    /// Number of applicable moves.
    pub fn move_count(&self) -> usize {
        self.enabled_ids.len() + self.links.len()
    }

    /// The `i`-th applicable move: activations first in id order, then
    /// deliveries in row-major link order.
    ///
    /// # Panics
    ///
    /// Panics if `i >= move_count()`.
    pub fn nth_move(&self, i: usize) -> Move {
        let acts = self.enabled_ids.len();
        if i < acts {
            Move::Activate(self.enabled_ids[i])
        } else {
            let (from, to) = self.links[i - acts];
            Move::Deliver { from, to }
        }
    }

    /// All applicable moves, activations first, in id order. Materializes
    /// a fresh `Vec` — schedulers use [`SystemView::nth_move`] instead;
    /// this remains for harnesses and exhaustive exploration.
    pub fn applicable_moves(&self) -> Vec<Move> {
        (0..self.move_count()).map(|i| self.nth_move(i)).collect()
    }

    /// True if no move is applicable: the system is quiescent.
    pub fn is_quiescent(&self) -> bool {
        self.links.is_empty() && self.enabled_ids.is_empty()
    }

    /// Sets process `i`'s enabled flag, maintaining the sorted id list.
    /// O(1) when the flag is unchanged.
    pub(crate) fn set_enabled(&mut self, i: usize, enabled: bool) {
        if self.enabled[i] == enabled {
            return;
        }
        self.enabled[i] = enabled;
        let p = ProcessId::new(i);
        match self.enabled_ids.binary_search(&p) {
            Ok(pos) if !enabled => {
                self.enabled_ids.remove(pos);
            }
            Err(pos) if enabled => {
                self.enabled_ids.insert(pos, p);
            }
            _ => {}
        }
    }

    /// Replaces the link list with `live`, dropping links whose receiver
    /// has crashed. Reuses the buffer's capacity — allocation-free once
    /// warm.
    pub(crate) fn sync_links(&mut self, live: &[(ProcessId, ProcessId)], crashed: &[bool]) {
        self.links.clear();
        self.links
            .extend(live.iter().copied().filter(|(_, to)| !crashed[to.index()]));
    }

    /// Inserts or removes one link, maintaining the row-major order.
    /// Idempotent, so a journal suffix with repeated transitions of the
    /// same link converges to the last one. O(log links) search plus the
    /// shift; a steady-state step touches O(1) links.
    pub(crate) fn set_link(&mut self, from: ProcessId, to: ProcessId, present: bool) {
        match (self.links.binary_search(&(from, to)), present) {
            (Ok(pos), false) => {
                self.links.remove(pos);
            }
            (Err(pos), true) => {
                self.links.insert(pos, (from, to));
            }
            _ => {}
        }
    }
}

/// Chooses the next step of an execution.
pub trait Scheduler {
    /// Picks one applicable move by index over the view, or `None` to end
    /// the execution (a scheduler must return `None` if no move is
    /// applicable). Implementations must not allocate on this path.
    fn pick(&mut self, view: &SystemView, rng: &mut SimRng) -> Option<Move>;
}

/// Deterministic, weakly fair scheduler: cycles through all potential moves
/// (activations and deliveries) in a fixed order, executing the first
/// applicable one at or after its cursor. Every continuously applicable
/// move is executed within one full cycle.
#[derive(Clone, Debug, Default)]
pub struct RoundRobin {
    cursor: usize,
}

impl RoundRobin {
    /// A fresh round-robin scheduler.
    pub fn new() -> Self {
        RoundRobin::default()
    }
}

impl Scheduler for RoundRobin {
    fn pick(&mut self, view: &SystemView, _rng: &mut SimRng) -> Option<Move> {
        let total = view.move_count();
        if total == 0 {
            return None;
        }
        let pick = view.nth_move(self.cursor % total);
        self.cursor = self.cursor.wrapping_add(1);
        Some(pick)
    }
}

/// Uniformly random scheduler (fair with probability 1). The probability of
/// picking a delivery over an activation can be tilted with
/// [`RandomScheduler::delivery_bias`] to stress different interleavings.
#[derive(Clone, Debug)]
pub struct RandomScheduler {
    bias: Option<f64>,
}

impl RandomScheduler {
    /// Uniform over all applicable moves.
    pub fn new() -> Self {
        RandomScheduler { bias: None }
    }

    /// With probability `p`, pick among deliveries (if any); otherwise among
    /// activations (if any).
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    pub fn delivery_bias(p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "bias must be a probability");
        RandomScheduler { bias: Some(p) }
    }
}

impl Default for RandomScheduler {
    fn default() -> Self {
        Self::new()
    }
}

impl Scheduler for RandomScheduler {
    fn pick(&mut self, view: &SystemView, rng: &mut SimRng) -> Option<Move> {
        let ids = view.enabled_ids();
        let links = view.non_empty_links();
        // The draw sequence mirrors the list-materializing implementation
        // exactly (one side-selection draw, then one uniform draw within
        // the side): for a given RNG stream, index-based and list-based
        // selection pick the same move. (The stream itself comes from
        // SimRng, whose algorithm is a separate concern.)
        match (ids.is_empty(), links.is_empty()) {
            (true, true) => None,
            (true, false) => {
                let (from, to) = links[rng.gen_range(0..links.len())];
                Some(Move::Deliver { from, to })
            }
            (false, true) => Some(Move::Activate(ids[rng.gen_range(0..ids.len())])),
            (false, false) => {
                let pick_delivery = match self.bias {
                    Some(p) => rng.gen_bool(p),
                    None => {
                        let total = ids.len() + links.len();
                        rng.gen_range(0..total) >= ids.len()
                    }
                };
                if pick_delivery {
                    let (from, to) = links[rng.gen_range(0..links.len())];
                    Some(Move::Deliver { from, to })
                } else {
                    Some(Move::Activate(ids[rng.gen_range(0..ids.len())]))
                }
            }
        }
    }
}

/// Replays an exact sequence of moves, then stops. Used for the Figure 1
/// worst-case replay and the Theorem 1 construction, where the adversary
/// controls the schedule completely.
#[derive(Clone, Debug)]
pub struct ScriptedScheduler {
    script: std::collections::VecDeque<Move>,
    /// If true (default), a scripted move that is not currently applicable
    /// is skipped rather than executed; if false the runner will surface an
    /// error on an impossible delivery.
    skip_inapplicable: bool,
}

impl ScriptedScheduler {
    /// A scheduler replaying `script` in order.
    pub fn new(script: impl IntoIterator<Item = Move>) -> Self {
        ScriptedScheduler {
            script: script.into_iter().collect(),
            skip_inapplicable: true,
        }
    }

    /// Makes inapplicable scripted moves an error instead of skipping them
    /// (strict replay, used by the Theorem 1 machinery).
    pub fn strict(mut self) -> Self {
        self.skip_inapplicable = false;
        self
    }

    /// Remaining scripted moves.
    pub fn remaining(&self) -> usize {
        self.script.len()
    }
}

impl Scheduler for ScriptedScheduler {
    fn pick(&mut self, view: &SystemView, _rng: &mut SimRng) -> Option<Move> {
        while let Some(mv) = self.script.pop_front() {
            if !self.skip_inapplicable {
                return Some(mv);
            }
            let applicable = match mv {
                Move::Activate(p) => view.is_enabled(p),
                Move::Deliver { from, to } => view.has_link(from, to),
            };
            if applicable {
                return Some(mv);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    fn view(enabled: Vec<bool>, links: Vec<(ProcessId, ProcessId)>) -> SystemView {
        SystemView::from_parts(enabled, links)
    }

    #[test]
    fn applicable_moves_order() {
        let v = view(vec![true, false, true], vec![(p(1), p(0))]);
        assert_eq!(
            v.applicable_moves(),
            vec![
                Move::Activate(p(0)),
                Move::Activate(p(2)),
                Move::Deliver {
                    from: p(1),
                    to: p(0)
                }
            ]
        );
        assert!(!v.is_quiescent());
        assert!(view(vec![false, false], vec![]).is_quiescent());
    }

    #[test]
    fn nth_move_matches_materialized_list() {
        let v = view(
            vec![false, true, true, false],
            vec![(p(3), p(0)), (p(0), p(2)), (p(1), p(3))],
        );
        let moves = v.applicable_moves();
        assert_eq!(moves.len(), v.move_count());
        for (i, &mv) in moves.iter().enumerate() {
            assert_eq!(v.nth_move(i), mv);
        }
        assert_eq!(v.activation_count(), 2);
        assert_eq!(v.delivery_count(), 3);
    }

    #[test]
    fn from_parts_sorts_and_dedups_links() {
        let v = view(
            vec![false; 4],
            vec![(p(2), p(1)), (p(0), p(3)), (p(2), p(1))],
        );
        assert_eq!(v.non_empty_links(), &[(p(0), p(3)), (p(2), p(1))]);
        assert!(v.has_link(p(2), p(1)));
        assert!(!v.has_link(p(1), p(2)));
    }

    #[test]
    fn set_enabled_maintains_sorted_ids() {
        let mut v = SystemView::new(4);
        v.set_enabled(2, true);
        v.set_enabled(0, true);
        v.set_enabled(3, true);
        assert_eq!(v.enabled_ids(), &[p(0), p(2), p(3)]);
        v.set_enabled(2, false);
        v.set_enabled(2, false); // idempotent
        assert_eq!(v.enabled_ids(), &[p(0), p(3)]);
        assert!(v.is_enabled(p(0)));
        assert!(!v.is_enabled(p(2)));
        assert!(!v.is_enabled(p(17)));
    }

    #[test]
    fn sync_links_filters_crashed_receivers() {
        let mut v = SystemView::new(3);
        v.sync_links(
            &[(p(0), p(1)), (p(1), p(2)), (p(2), p(0))],
            &[false, false, true],
        );
        assert_eq!(v.non_empty_links(), &[(p(0), p(1)), (p(2), p(0))]);
    }

    #[test]
    fn round_robin_cycles_all_moves() {
        let mut s = RoundRobin::new();
        let mut rng = SimRng::seed_from(0);
        let v = view(vec![true, true], vec![(p(0), p(1))]);
        let picks: Vec<_> = (0..3).map(|_| s.pick(&v, &mut rng).unwrap()).collect();
        assert_eq!(
            picks,
            vec![
                Move::Activate(p(0)),
                Move::Activate(p(1)),
                Move::Deliver {
                    from: p(0),
                    to: p(1)
                }
            ]
        );
    }

    #[test]
    fn round_robin_none_when_quiescent() {
        let mut s = RoundRobin::new();
        let mut rng = SimRng::seed_from(0);
        assert_eq!(s.pick(&view(vec![false], vec![]), &mut rng), None);
    }

    #[test]
    fn random_scheduler_picks_applicable() {
        let mut s = RandomScheduler::new();
        let mut rng = SimRng::seed_from(42);
        let v = view(vec![true, false], vec![(p(1), p(0))]);
        for _ in 0..50 {
            match s.pick(&v, &mut rng).unwrap() {
                Move::Activate(q) => assert_eq!(q, p(0)),
                Move::Deliver { from, to } => assert_eq!((from, to), (p(1), p(0))),
            }
        }
    }

    #[test]
    fn random_scheduler_with_full_delivery_bias_prefers_delivery() {
        let mut s = RandomScheduler::delivery_bias(1.0);
        let mut rng = SimRng::seed_from(1);
        let v = view(vec![true], vec![(p(0), p(1))]);
        for _ in 0..20 {
            assert!(matches!(
                s.pick(&v, &mut rng).unwrap(),
                Move::Deliver { .. }
            ));
        }
    }

    #[test]
    fn random_scheduler_eventually_picks_everything() {
        let mut s = RandomScheduler::new();
        let mut rng = SimRng::seed_from(3);
        let v = view(vec![true, true], vec![(p(0), p(1))]);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            seen.insert(format!("{:?}", s.pick(&v, &mut rng).unwrap()));
        }
        assert_eq!(seen.len(), 3, "all three moves should appear");
    }

    #[test]
    fn random_scheduler_is_roughly_uniform_over_moves() {
        // 2 activations + 2 deliveries: each move should get ~1/4 of the
        // picks (the side draw is 1/2, then uniform within the side).
        let mut s = RandomScheduler::new();
        let mut rng = SimRng::seed_from(9);
        let v = view(vec![true, true], vec![(p(0), p(1)), (p(1), p(0))]);
        let mut counts = std::collections::HashMap::new();
        let trials = 8_000;
        for _ in 0..trials {
            *counts
                .entry(format!("{:?}", s.pick(&v, &mut rng).unwrap()))
                .or_insert(0usize) += 1;
        }
        for (mv, c) in &counts {
            let frac = *c as f64 / trials as f64;
            assert!((0.20..0.30).contains(&frac), "move {mv} frequency {frac}");
        }
    }

    #[test]
    fn scripted_replays_in_order_and_skips() {
        let mut s = ScriptedScheduler::new(vec![
            Move::Activate(p(0)),
            Move::Deliver {
                from: p(0),
                to: p(1),
            }, // will be inapplicable -> skipped
            Move::Activate(p(1)),
        ]);
        let mut rng = SimRng::seed_from(0);
        let v = view(vec![true, true], vec![]);
        assert_eq!(s.pick(&v, &mut rng), Some(Move::Activate(p(0))));
        assert_eq!(s.pick(&v, &mut rng), Some(Move::Activate(p(1))));
        assert_eq!(s.pick(&v, &mut rng), None);
        assert_eq!(s.remaining(), 0);
    }

    #[test]
    fn scripted_strict_returns_inapplicable_moves() {
        let mut s = ScriptedScheduler::new(vec![Move::Deliver {
            from: p(0),
            to: p(1),
        }])
        .strict();
        let mut rng = SimRng::seed_from(0);
        let v = view(vec![false, false], vec![]);
        assert_eq!(
            s.pick(&v, &mut rng),
            Some(Move::Deliver {
                from: p(0),
                to: p(1)
            })
        );
    }
}
