//! Schedulers: who takes the next atomic step.
//!
//! An execution of the paper's transition system is a maximal sequence of
//! steps; the scheduler (the "daemon" of the self-stabilization literature)
//! picks each step among the applicable moves:
//!
//! * `Activate(p)` — process `p` executes its enabled internal actions;
//! * `Deliver(from → to)` — the head message of a non-empty channel is
//!   received (its receive action executes).
//!
//! Fairness matters for the liveness claims (Start / Termination):
//! [`RoundRobin`] is deterministically weakly fair; [`RandomScheduler`] is
//! fair with probability 1. [`ScriptedScheduler`] replays an exact move
//! sequence and is used by the Figure 1 and Theorem 1 reproductions.

use crate::id::ProcessId;
use crate::rng::SimRng;

/// One schedulable step.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Move {
    /// Process `p` executes its enabled internal actions.
    Activate(ProcessId),
    /// The head message of channel `from → to` is delivered.
    Deliver {
        /// Sender side of the channel.
        from: ProcessId,
        /// Receiver side of the channel.
        to: ProcessId,
    },
}

/// What the scheduler can see when picking a move: which processes have
/// enabled internal actions, and which channels are non-empty.
#[derive(Clone, Debug)]
pub struct SystemView {
    /// `enabled[i]` is true if process `i` has an enabled internal action.
    pub enabled: Vec<bool>,
    /// All `(from, to)` links whose channel holds at least one message.
    pub non_empty_links: Vec<(ProcessId, ProcessId)>,
}

impl SystemView {
    /// All applicable moves, activations first, in id order.
    pub fn applicable_moves(&self) -> Vec<Move> {
        let mut moves: Vec<Move> = self
            .enabled
            .iter()
            .enumerate()
            .filter(|(_, &e)| e)
            .map(|(i, _)| Move::Activate(ProcessId::new(i)))
            .collect();
        moves.extend(
            self.non_empty_links
                .iter()
                .map(|&(from, to)| Move::Deliver { from, to }),
        );
        moves
    }

    /// True if no move is applicable: the system is quiescent.
    pub fn is_quiescent(&self) -> bool {
        self.non_empty_links.is_empty() && self.enabled.iter().all(|&e| !e)
    }
}

/// Chooses the next step of an execution.
pub trait Scheduler {
    /// Picks one applicable move, or `None` to end the execution (a
    /// scheduler must return `None` if no move is applicable).
    fn next_move(&mut self, view: &SystemView, rng: &mut SimRng) -> Option<Move>;
}

/// Deterministic, weakly fair scheduler: cycles through all potential moves
/// (activations and deliveries) in a fixed order, executing the first
/// applicable one at or after its cursor. Every continuously applicable
/// move is executed within one full cycle.
#[derive(Clone, Debug, Default)]
pub struct RoundRobin {
    cursor: usize,
}

impl RoundRobin {
    /// A fresh round-robin scheduler.
    pub fn new() -> Self {
        RoundRobin::default()
    }
}

impl Scheduler for RoundRobin {
    fn next_move(&mut self, view: &SystemView, _rng: &mut SimRng) -> Option<Move> {
        let moves = view.applicable_moves();
        if moves.is_empty() {
            return None;
        }
        let pick = moves[self.cursor % moves.len()];
        self.cursor = self.cursor.wrapping_add(1);
        Some(pick)
    }
}

/// Uniformly random scheduler (fair with probability 1). The probability of
/// picking a delivery over an activation can be tilted with
/// [`RandomScheduler::delivery_bias`] to stress different interleavings.
#[derive(Clone, Debug)]
pub struct RandomScheduler {
    bias: Option<f64>,
}

impl RandomScheduler {
    /// Uniform over all applicable moves.
    pub fn new() -> Self {
        RandomScheduler { bias: None }
    }

    /// With probability `p`, pick among deliveries (if any); otherwise among
    /// activations (if any).
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    pub fn delivery_bias(p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "bias must be a probability");
        RandomScheduler { bias: Some(p) }
    }
}

impl Default for RandomScheduler {
    fn default() -> Self {
        Self::new()
    }
}

impl Scheduler for RandomScheduler {
    fn next_move(&mut self, view: &SystemView, rng: &mut SimRng) -> Option<Move> {
        let activations: Vec<Move> = view
            .enabled
            .iter()
            .enumerate()
            .filter(|(_, &e)| e)
            .map(|(i, _)| Move::Activate(ProcessId::new(i)))
            .collect();
        let deliveries: Vec<Move> = view
            .non_empty_links
            .iter()
            .map(|&(from, to)| Move::Deliver { from, to })
            .collect();
        match (activations.is_empty(), deliveries.is_empty()) {
            (true, true) => None,
            (true, false) => Some(*rng.choose(&deliveries)),
            (false, true) => Some(*rng.choose(&activations)),
            (false, false) => {
                let pick_delivery = match self.bias {
                    Some(p) => rng.gen_bool(p),
                    None => {
                        let total = activations.len() + deliveries.len();
                        rng.gen_range(0..total) >= activations.len()
                    }
                };
                if pick_delivery {
                    Some(*rng.choose(&deliveries))
                } else {
                    Some(*rng.choose(&activations))
                }
            }
        }
    }
}

/// Replays an exact sequence of moves, then stops. Used for the Figure 1
/// worst-case replay and the Theorem 1 construction, where the adversary
/// controls the schedule completely.
#[derive(Clone, Debug)]
pub struct ScriptedScheduler {
    script: std::collections::VecDeque<Move>,
    /// If true (default), a scripted move that is not currently applicable
    /// is skipped rather than executed; if false the runner will surface an
    /// error on an impossible delivery.
    skip_inapplicable: bool,
}

impl ScriptedScheduler {
    /// A scheduler replaying `script` in order.
    pub fn new(script: impl IntoIterator<Item = Move>) -> Self {
        ScriptedScheduler {
            script: script.into_iter().collect(),
            skip_inapplicable: true,
        }
    }

    /// Makes inapplicable scripted moves an error instead of skipping them
    /// (strict replay, used by the Theorem 1 machinery).
    pub fn strict(mut self) -> Self {
        self.skip_inapplicable = false;
        self
    }

    /// Remaining scripted moves.
    pub fn remaining(&self) -> usize {
        self.script.len()
    }
}

impl Scheduler for ScriptedScheduler {
    fn next_move(&mut self, view: &SystemView, _rng: &mut SimRng) -> Option<Move> {
        while let Some(mv) = self.script.pop_front() {
            if !self.skip_inapplicable {
                return Some(mv);
            }
            let applicable = match mv {
                Move::Activate(p) => view.enabled.get(p.index()).copied().unwrap_or(false),
                Move::Deliver { from, to } => view.non_empty_links.contains(&(from, to)),
            };
            if applicable {
                return Some(mv);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    fn view(enabled: Vec<bool>, links: Vec<(ProcessId, ProcessId)>) -> SystemView {
        SystemView { enabled, non_empty_links: links }
    }

    #[test]
    fn applicable_moves_order() {
        let v = view(vec![true, false, true], vec![(p(1), p(0))]);
        assert_eq!(
            v.applicable_moves(),
            vec![
                Move::Activate(p(0)),
                Move::Activate(p(2)),
                Move::Deliver { from: p(1), to: p(0) }
            ]
        );
        assert!(!v.is_quiescent());
        assert!(view(vec![false, false], vec![]).is_quiescent());
    }

    #[test]
    fn round_robin_cycles_all_moves() {
        let mut s = RoundRobin::new();
        let mut rng = SimRng::seed_from(0);
        let v = view(vec![true, true], vec![(p(0), p(1))]);
        let picks: Vec<_> = (0..3).map(|_| s.next_move(&v, &mut rng).unwrap()).collect();
        assert_eq!(
            picks,
            vec![
                Move::Activate(p(0)),
                Move::Activate(p(1)),
                Move::Deliver { from: p(0), to: p(1) }
            ]
        );
    }

    #[test]
    fn round_robin_none_when_quiescent() {
        let mut s = RoundRobin::new();
        let mut rng = SimRng::seed_from(0);
        assert_eq!(s.next_move(&view(vec![false], vec![]), &mut rng), None);
    }

    #[test]
    fn random_scheduler_picks_applicable() {
        let mut s = RandomScheduler::new();
        let mut rng = SimRng::seed_from(42);
        let v = view(vec![true, false], vec![(p(1), p(0))]);
        for _ in 0..50 {
            match s.next_move(&v, &mut rng).unwrap() {
                Move::Activate(q) => assert_eq!(q, p(0)),
                Move::Deliver { from, to } => assert_eq!((from, to), (p(1), p(0))),
            }
        }
    }

    #[test]
    fn random_scheduler_with_full_delivery_bias_prefers_delivery() {
        let mut s = RandomScheduler::delivery_bias(1.0);
        let mut rng = SimRng::seed_from(1);
        let v = view(vec![true], vec![(p(0), p(1))]);
        for _ in 0..20 {
            assert!(matches!(
                s.next_move(&v, &mut rng).unwrap(),
                Move::Deliver { .. }
            ));
        }
    }

    #[test]
    fn random_scheduler_eventually_picks_everything() {
        let mut s = RandomScheduler::new();
        let mut rng = SimRng::seed_from(3);
        let v = view(vec![true, true], vec![(p(0), p(1))]);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            seen.insert(format!("{:?}", s.next_move(&v, &mut rng).unwrap()));
        }
        assert_eq!(seen.len(), 3, "all three moves should appear");
    }

    #[test]
    fn scripted_replays_in_order_and_skips() {
        let mut s = ScriptedScheduler::new(vec![
            Move::Activate(p(0)),
            Move::Deliver { from: p(0), to: p(1) }, // will be inapplicable -> skipped
            Move::Activate(p(1)),
        ]);
        let mut rng = SimRng::seed_from(0);
        let v = view(vec![true, true], vec![]);
        assert_eq!(s.next_move(&v, &mut rng), Some(Move::Activate(p(0))));
        assert_eq!(s.next_move(&v, &mut rng), Some(Move::Activate(p(1))));
        assert_eq!(s.next_move(&v, &mut rng), None);
        assert_eq!(s.remaining(), 0);
    }

    #[test]
    fn scripted_strict_returns_inapplicable_moves() {
        let mut s = ScriptedScheduler::new(vec![Move::Deliver { from: p(0), to: p(1) }]).strict();
        let mut rng = SimRng::seed_from(0);
        let v = view(vec![false, false], vec![]);
        assert_eq!(
            s.next_move(&v, &mut rng),
            Some(Move::Deliver { from: p(0), to: p(1) })
        );
    }
}
