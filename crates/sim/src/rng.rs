//! Deterministic, seedable randomness for the simulator.
//!
//! Every stochastic choice in the simulator (random scheduling, message
//! loss, corrupted-configuration sampling, randomized baseline protocols)
//! flows through [`SimRng`], so a run is a pure function of its seeds.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A seeded pseudo-random generator used throughout the simulator.
///
/// ```
/// use snapstab_sim::SimRng;
/// let mut a = SimRng::seed_from(42);
/// let mut b = SimRng::seed_from(42);
/// assert_eq!(a.gen_range(0..1000), b.gen_range(0..1000));
/// ```
#[derive(Clone, Debug)]
pub struct SimRng {
    inner: SmallRng,
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from(seed: u64) -> Self {
        SimRng {
            inner: SmallRng::seed_from_u64(seed),
        }
    }

    /// Derives an independent child generator; used to give subsystems
    /// (scheduler, loss model, corruption) their own streams so adding a
    /// draw in one place does not perturb the others.
    pub fn fork(&mut self) -> SimRng {
        SimRng::seed_from(self.inner.gen())
    }

    /// Uniform draw from a range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn gen_range(&mut self, range: std::ops::Range<usize>) -> usize {
        self.inner.gen_range(range)
    }

    /// Uniform `u64`.
    pub fn gen_u64(&mut self) -> u64 {
        self.inner.gen()
    }

    /// Bernoulli draw: `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        self.inner.gen_bool(p)
    }

    /// Picks a uniformly random element of a non-empty slice.
    ///
    /// # Panics
    ///
    /// Panics if the slice is empty.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "cannot choose from an empty slice");
        &items[self.gen_range(0..items.len())]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from(7);
        let mut b = SimRng::seed_from(7);
        for _ in 0..100 {
            assert_eq!(a.gen_u64(), b.gen_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::seed_from(1);
        let mut b = SimRng::seed_from(2);
        let same = (0..32).filter(|_| a.gen_u64() == b.gen_u64()).count();
        assert!(same < 4, "streams should diverge");
    }

    #[test]
    fn fork_is_deterministic() {
        let mut a = SimRng::seed_from(9);
        let mut b = SimRng::seed_from(9);
        let mut fa = a.fork();
        let mut fb = b.fork();
        assert_eq!(fa.gen_u64(), fb.gen_u64());
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = SimRng::seed_from(3);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
        // Out-of-range probabilities are clamped, not panicking.
        assert!(r.gen_bool(2.5));
        assert!(!r.gen_bool(-1.0));
    }

    #[test]
    fn choose_is_in_slice() {
        let mut r = SimRng::seed_from(5);
        let items = [10, 20, 30];
        for _ in 0..20 {
            assert!(items.contains(r.choose(&items)));
        }
    }

    #[test]
    fn gen_range_bounds() {
        let mut r = SimRng::seed_from(11);
        for _ in 0..100 {
            let v = r.gen_range(3..17);
            assert!((3..17).contains(&v));
        }
    }
}
