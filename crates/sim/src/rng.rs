//! Deterministic, seedable randomness for the simulator.
//!
//! Every stochastic choice in the simulator (random scheduling, message
//! loss, corrupted-configuration sampling, randomized baseline protocols)
//! flows through [`SimRng`], so a run is a pure function of its seeds.
//!
//! The generator is a self-contained xoshiro256++ (Blackman–Vigna) seeded
//! through SplitMix64, so the simulator has no external dependency and the
//! stream for a given seed is stable across platforms and compilers.

/// SplitMix64 step: used to expand a 64-bit seed into generator state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A seeded pseudo-random generator used throughout the simulator.
///
/// ```
/// use snapstab_sim::SimRng;
/// let mut a = SimRng::seed_from(42);
/// let mut b = SimRng::seed_from(42);
/// assert_eq!(a.gen_range(0..1000), b.gen_range(0..1000));
/// ```
#[derive(Clone, Debug)]
pub struct SimRng {
    s: [u64; 4],
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from(seed: u64) -> Self {
        let mut sm = seed;
        SimRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Derives an independent child generator; used to give subsystems
    /// (scheduler, loss model, corruption) their own streams so adding a
    /// draw in one place does not perturb the others.
    pub fn fork(&mut self) -> SimRng {
        SimRng::seed_from(self.next_u64())
    }

    /// The xoshiro256++ core step.
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Unbiased uniform draw below `bound` (Lemire's widening-multiply
    /// rejection method).
    fn gen_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut lo = m as u64;
        if lo < bound {
            let threshold = bound.wrapping_neg() % bound;
            while lo < threshold {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform draw from a range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn gen_range(&mut self, range: std::ops::Range<usize>) -> usize {
        assert!(range.start < range.end, "cannot sample an empty range");
        let span = (range.end - range.start) as u64;
        range.start + self.gen_below(span) as usize
    }

    /// Uniform `u64`.
    pub fn gen_u64(&mut self) -> u64 {
        self.next_u64()
    }

    /// Bernoulli draw: `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        // 53 random bits mapped to [0, 1); strict `<` makes p = 0.0 always
        // false, and `x/2^53 < 1.0` makes p = 1.0 always true.
        let x = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        x < p
    }

    /// Picks a uniformly random element of a non-empty slice.
    ///
    /// # Panics
    ///
    /// Panics if the slice is empty.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "cannot choose from an empty slice");
        &items[self.gen_range(0..items.len())]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from(7);
        let mut b = SimRng::seed_from(7);
        for _ in 0..100 {
            assert_eq!(a.gen_u64(), b.gen_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::seed_from(1);
        let mut b = SimRng::seed_from(2);
        let same = (0..32).filter(|_| a.gen_u64() == b.gen_u64()).count();
        assert!(same < 4, "streams should diverge");
    }

    #[test]
    fn fork_is_deterministic() {
        let mut a = SimRng::seed_from(9);
        let mut b = SimRng::seed_from(9);
        let mut fa = a.fork();
        let mut fb = b.fork();
        assert_eq!(fa.gen_u64(), fb.gen_u64());
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = SimRng::seed_from(3);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
        // Out-of-range probabilities are clamped, not panicking.
        assert!(r.gen_bool(2.5));
        assert!(!r.gen_bool(-1.0));
    }

    #[test]
    fn choose_is_in_slice() {
        let mut r = SimRng::seed_from(5);
        let items = [10, 20, 30];
        for _ in 0..20 {
            assert!(items.contains(r.choose(&items)));
        }
    }

    #[test]
    fn gen_range_bounds() {
        let mut r = SimRng::seed_from(11);
        for _ in 0..100 {
            let v = r.gen_range(3..17);
            assert!((3..17).contains(&v));
        }
    }

    #[test]
    fn gen_range_covers_span() {
        let mut r = SimRng::seed_from(13);
        let mut seen = [false; 8];
        for _ in 0..500 {
            seen[r.gen_range(0..8)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values should appear");
    }

    #[test]
    fn gen_bool_is_roughly_fair() {
        let mut r = SimRng::seed_from(17);
        let heads = (0..10_000).filter(|_| r.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&heads), "got {heads}");
    }
}
