//! Typed execution traces.
//!
//! A trace is the observable record of an execution: one entry per atomic
//! step (plus harness markers), carrying activations, sends (with their
//! fate), deliveries, protocol events, and fault injections. The
//! specification checkers of `snapstab-core` — Start, Correctness,
//! Termination, Decision — are predicates over these traces, matching the
//! paper's definition of a specification as "a predicate defined on the
//! executions".

use crate::id::ProcessId;

/// The fate of a send attempt.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SendFate {
    /// The message entered the channel.
    Enqueued,
    /// The channel was full; the §4 drop-on-full rule lost the message.
    LostFull,
    /// The loss model lost the message in transit.
    LostInTransit,
}

/// One observable event of an execution.
#[derive(Clone, PartialEq, Debug)]
pub enum TraceEvent<M, E> {
    /// A process executed its enabled internal actions (`acted` is false if
    /// no guard was true).
    Activated {
        /// The activated process.
        p: ProcessId,
        /// Whether any action actually executed.
        acted: bool,
    },
    /// A message send attempt and its fate.
    Sent {
        /// Sender.
        from: ProcessId,
        /// Receiver.
        to: ProcessId,
        /// The message.
        msg: M,
        /// What happened to it.
        fate: SendFate,
    },
    /// A message was delivered (its receive action executed).
    Delivered {
        /// Sender.
        from: ProcessId,
        /// Receiver.
        to: ProcessId,
        /// The message.
        msg: M,
    },
    /// A protocol-level event emitted by a process.
    Protocol {
        /// The emitting process.
        p: ProcessId,
        /// The event payload.
        event: E,
    },
    /// A transient fault corrupted this process's variables.
    Corrupted {
        /// The corrupted process.
        p: ProcessId,
    },
    /// A harness marker (e.g. "request injected at p").
    Marker {
        /// Process the marker concerns.
        p: ProcessId,
        /// Free-form label.
        label: String,
    },
}

/// A trace entry: an event stamped with the step at which it occurred.
#[derive(Clone, PartialEq, Debug)]
pub struct TraceEntry<M, E> {
    /// Global step number.
    pub step: u64,
    /// The event.
    pub event: TraceEvent<M, E>,
}

/// An execution trace: a chronological sequence of [`TraceEntry`] values.
#[derive(Clone, PartialEq, Debug)]
pub struct Trace<M, E> {
    entries: Vec<TraceEntry<M, E>>,
}

impl<M, E> Default for Trace<M, E> {
    fn default() -> Self {
        Trace {
            entries: Vec::new(),
        }
    }
}

impl<M, E> Trace<M, E> {
    /// An empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an event at the given step.
    pub fn push(&mut self, step: u64, event: TraceEvent<M, E>) {
        self.entries.push(TraceEntry { step, event });
    }

    /// Appends a harness marker.
    pub fn push_marker(&mut self, step: u64, p: ProcessId, label: impl Into<String>) {
        self.push(
            step,
            TraceEvent::Marker {
                p,
                label: label.into(),
            },
        );
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the trace has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// All entries, chronologically.
    pub fn entries(&self) -> &[TraceEntry<M, E>] {
        &self.entries
    }

    /// Iterates over `(step, event)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = &TraceEntry<M, E>> {
        self.entries.iter()
    }

    /// Iterates over the protocol events of process `p` with their steps.
    pub fn protocol_events_of(&self, p: ProcessId) -> impl Iterator<Item = (u64, &E)> {
        self.entries.iter().filter_map(move |te| match &te.event {
            TraceEvent::Protocol { p: q, event } if *q == p => Some((te.step, event)),
            _ => None,
        })
    }

    /// Iterates over all protocol events with their steps and emitters.
    pub fn protocol_events(&self) -> impl Iterator<Item = (u64, ProcessId, &E)> {
        self.entries.iter().filter_map(|te| match &te.event {
            TraceEvent::Protocol { p, event } => Some((te.step, *p, event)),
            _ => None,
        })
    }

    /// Iterates over markers `(step, process, label)`.
    pub fn markers(&self) -> impl Iterator<Item = (u64, ProcessId, &str)> {
        self.entries.iter().filter_map(|te| match &te.event {
            TraceEvent::Marker { p, label } => Some((te.step, *p, label.as_str())),
            _ => None,
        })
    }

    /// The step of the first event matching `pred`, searching entries at or
    /// after `from_step`.
    pub fn find_from(
        &self,
        from_step: u64,
        mut pred: impl FnMut(&TraceEvent<M, E>) -> bool,
    ) -> Option<u64> {
        self.entries
            .iter()
            .filter(|te| te.step >= from_step)
            .find(|te| pred(&te.event))
            .map(|te| te.step)
    }

    /// Counts events matching `pred`.
    pub fn count(&self, mut pred: impl FnMut(&TraceEvent<M, E>) -> bool) -> usize {
        self.entries.iter().filter(|te| pred(&te.event)).count()
    }

    /// Clears the trace, keeping its allocation.
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Merges per-process event logs into one chronological trace, ordered
    /// by step. The sort is stable, so entries that share a step (all the
    /// events of one atomic action, logged by one process in program
    /// order) keep their relative order. This is how the live runtime
    /// (`snapstab-runtime`) assembles the per-worker logs — each stamped
    /// from one global atomic step counter — into a trace the executable
    /// specifications can check.
    pub fn merged(logs: impl IntoIterator<Item = Trace<M, E>>) -> Trace<M, E> {
        let mut entries: Vec<TraceEntry<M, E>> = logs.into_iter().flat_map(|t| t.entries).collect();
        entries.sort_by_key(|te| te.step);
        Trace { entries }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    type T = Trace<u8, &'static str>;

    #[test]
    fn push_and_query() {
        let mut t = T::new();
        assert!(t.is_empty());
        t.push(
            0,
            TraceEvent::Activated {
                p: p(0),
                acted: true,
            },
        );
        t.push(
            1,
            TraceEvent::Sent {
                from: p(0),
                to: p(1),
                msg: 7,
                fate: SendFate::Enqueued,
            },
        );
        t.push(
            2,
            TraceEvent::Protocol {
                p: p(1),
                event: "brd",
            },
        );
        t.push(
            3,
            TraceEvent::Protocol {
                p: p(0),
                event: "fck",
            },
        );
        assert_eq!(t.len(), 4);

        let of1: Vec<_> = t.protocol_events_of(p(1)).collect();
        assert_eq!(of1, vec![(2, &"brd")]);

        let all: Vec<_> = t.protocol_events().map(|(s, q, e)| (s, q, *e)).collect();
        assert_eq!(all, vec![(2, p(1), "brd"), (3, p(0), "fck")]);
    }

    #[test]
    fn find_from_respects_start() {
        let mut t = T::new();
        t.push(
            0,
            TraceEvent::Protocol {
                p: p(0),
                event: "x",
            },
        );
        t.push(
            5,
            TraceEvent::Protocol {
                p: p(0),
                event: "x",
            },
        );
        let is_x =
            |e: &TraceEvent<u8, &'static str>| matches!(e, TraceEvent::Protocol { event: "x", .. });
        assert_eq!(t.find_from(0, is_x), Some(0));
        assert_eq!(t.find_from(1, is_x), Some(5));
        assert_eq!(t.find_from(6, is_x), None);
    }

    #[test]
    fn markers_round_trip() {
        let mut t = T::new();
        t.push_marker(4, p(2), "request");
        let ms: Vec<_> = t.markers().collect();
        assert_eq!(ms, vec![(4, p(2), "request")]);
    }

    #[test]
    fn count_matches() {
        let mut t = T::new();
        for i in 0..4 {
            t.push(
                i,
                TraceEvent::Activated {
                    p: p(0),
                    acted: i % 2 == 0,
                },
            );
        }
        assert_eq!(
            t.count(|e| matches!(e, TraceEvent::Activated { acted: true, .. })),
            2
        );
    }

    #[test]
    fn clear_empties() {
        let mut t = T::new();
        t.push(0, TraceEvent::Corrupted { p: p(0) });
        t.clear();
        assert!(t.is_empty());
    }

    #[test]
    fn merged_interleaves_by_step_stably() {
        let mut a = T::new();
        a.push(
            1,
            TraceEvent::Protocol {
                p: p(0),
                event: "a1",
            },
        );
        a.push(
            4,
            TraceEvent::Protocol {
                p: p(0),
                event: "a4",
            },
        );
        a.push(
            4,
            TraceEvent::Protocol {
                p: p(0),
                event: "a4b",
            },
        );
        let mut b = T::new();
        b.push(
            2,
            TraceEvent::Protocol {
                p: p(1),
                event: "b2",
            },
        );
        b.push(
            5,
            TraceEvent::Protocol {
                p: p(1),
                event: "b5",
            },
        );
        let m = T::merged([a, b]);
        let events: Vec<_> = m.protocol_events().map(|(s, _, e)| (s, *e)).collect();
        assert_eq!(
            events,
            vec![(1, "a1"), (2, "b2"), (4, "a4"), (4, "a4b"), (5, "b5")]
        );
    }
}
