//! The fully-connected network: `n · (n − 1)` directed FIFO channels.

use crate::channel::{Capacity, Channel, SendOutcome};
use crate::error::SimError;
use crate::id::ProcessId;
use crate::process::Message;

/// The communication fabric of a fully-connected system of `n` processes:
/// one FIFO [`Channel`] per ordered pair of distinct processes.
///
/// ```
/// use snapstab_sim::{Capacity, Network, NetworkBuilder, ProcessId};
/// let mut net: Network<u8> = NetworkBuilder::new(3).capacity(Capacity::Bounded(1)).build();
/// let (p, q) = (ProcessId::new(0), ProcessId::new(1));
/// net.send(p, q, 7);
/// assert_eq!(net.deliver(p, q), Ok(7));
/// ```
#[derive(Clone, Debug)]
pub struct Network<M> {
    n: usize,
    capacity: Capacity,
    /// Row-major `n × n` matrix of channels; the diagonal is present for
    /// index arithmetic but never used.
    channels: Vec<Channel<M>>,
    /// Per ordered link, how many sends have been attempted (used by loss
    /// models to identify send attempts deterministically).
    send_counts: Vec<u64>,
    /// The non-empty links, maintained incrementally on every mutation and
    /// kept sorted in row-major `(from, to)` order — so the scheduler's
    /// view of the daemon's choices is a borrowed slice instead of an
    /// O(n²) scan per step.
    live: Vec<(ProcessId, ProcessId)>,
    /// Bumped whenever [`Network::live`] changes; lets callers cache
    /// derived state (the runner's [`crate::SystemView`] buffer) and
    /// resync only when something actually moved.
    links_version: u64,
    /// Bounded change journal: entry `k` records the live-set transition
    /// that produced version `journal_base + k + 1` as
    /// `(from, to, non_empty_after)`. Callers that saw version `v ≥
    /// journal_base` can catch up by replaying the suffix instead of
    /// copying the whole live set ([`Network::links_changes_since`]).
    journal: Vec<(ProcessId, ProcessId, bool)>,
    /// Version number just before the first retained journal entry.
    journal_base: u64,
}

/// Retained journal suffix: compaction keeps at least this many entries,
/// comfortably more than any step can produce, so a per-step consumer
/// never falls off the back.
const JOURNAL_KEEP: usize = 1024;

impl<M: Message> Network<M> {
    fn idx(&self, from: ProcessId, to: ProcessId) -> Result<usize, SimError> {
        if from.index() >= self.n {
            return Err(SimError::UnknownProcess {
                id: from,
                n: self.n,
            });
        }
        if to.index() >= self.n {
            return Err(SimError::UnknownProcess { id: to, n: self.n });
        }
        if from == to {
            return Err(SimError::SelfChannel { id: from });
        }
        Ok(from.index() * self.n + to.index())
    }

    /// Number of processes this network connects.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The uniform channel capacity of this network.
    pub fn capacity(&self) -> Capacity {
        self.capacity
    }

    /// Number of directed channels (`n · (n − 1)`).
    pub fn channel_count(&self) -> usize {
        self.n * (self.n - 1)
    }

    /// Re-synchronizes the live-link set for channel `i` (= `from → to`)
    /// after a mutation that may have crossed the empty/non-empty boundary.
    fn sync_link(&mut self, i: usize, from: ProcessId, to: ProcessId) {
        let non_empty = !self.channels[i].is_empty();
        match self.live.binary_search(&(from, to)) {
            Ok(pos) => {
                if !non_empty {
                    self.live.remove(pos);
                    self.record_change(from, to, false);
                }
            }
            Err(pos) => {
                if non_empty {
                    self.live.insert(pos, (from, to));
                    self.record_change(from, to, true);
                }
            }
        }
    }

    /// Appends one live-set transition to the journal (bumping the
    /// version), compacting the journal's front once it grows past twice
    /// the retained suffix.
    fn record_change(&mut self, from: ProcessId, to: ProcessId, non_empty: bool) {
        self.links_version += 1;
        self.journal.push((from, to, non_empty));
        if self.journal.len() >= 2 * JOURNAL_KEEP {
            let drop = self.journal.len() - JOURNAL_KEEP;
            self.journal.drain(..drop);
            self.journal_base += drop as u64;
        }
    }

    /// Monotone counter bumped on every change to the non-empty-link set.
    /// Callers caching derived state resync only when this moves.
    pub fn links_version(&self) -> u64 {
        self.links_version
    }

    /// The live-set transitions between `seen_version` and the current
    /// [`Network::links_version`], oldest first, as
    /// `(from, to, non_empty_after)` — applying them in order to a copy of
    /// the live set as of `seen_version` reproduces the current set (later
    /// entries for the same link supersede earlier ones).
    ///
    /// Returns `None` when the journal no longer reaches back to
    /// `seen_version` (compacted away, or `seen_version` is from another
    /// network's history): the caller must fall back to a full resync from
    /// [`Network::non_empty_links`].
    pub fn links_changes_since(
        &self,
        seen_version: u64,
    ) -> Option<&[(ProcessId, ProcessId, bool)]> {
        if seen_version > self.links_version || seen_version < self.journal_base {
            return None;
        }
        Some(&self.journal[(seen_version - self.journal_base) as usize..])
    }

    /// Offers `msg` to the channel `from → to`, applying the §4 drop-on-full
    /// rule. Returns the outcome and the send-sequence number of this
    /// attempt on the link.
    ///
    /// # Panics
    ///
    /// Panics if `from == to` or either id is out of range — sends are
    /// generated by the runner, which guarantees well-formedness; a
    /// violation is a programming error, not a recoverable condition.
    pub fn send(&mut self, from: ProcessId, to: ProcessId, msg: M) -> (SendOutcome, u64) {
        let i = self.idx(from, to).expect("runner produced invalid send");
        let seq = self.send_counts[i];
        self.send_counts[i] += 1;
        let outcome = self.channels[i].offer(msg);
        if outcome.is_enqueued() && self.channels[i].len() == 1 {
            self.sync_link(i, from, to);
        }
        (outcome, seq)
    }

    /// The send-sequence number the next send attempt on `from → to` will
    /// carry (used by loss models to identify attempts deterministically).
    ///
    /// # Panics
    ///
    /// Panics if the pair is invalid.
    pub fn next_send_seq(&self, from: ProcessId, to: ProcessId) -> u64 {
        let i = self.idx(from, to).expect("invalid link");
        self.send_counts[i]
    }

    /// Records a send attempt that the loss model destroyed in transit: the
    /// link's send counter advances but nothing enters the channel.
    ///
    /// # Panics
    ///
    /// Panics if the pair is invalid.
    pub fn record_lost_send(&mut self, from: ProcessId, to: ProcessId) -> u64 {
        let i = self.idx(from, to).expect("invalid link");
        let seq = self.send_counts[i];
        self.send_counts[i] += 1;
        seq
    }

    /// Delivers (removes) the head message of channel `from → to`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::EmptyChannel`] if nothing is in flight, and the
    /// id errors if the pair is invalid.
    pub fn deliver(&mut self, from: ProcessId, to: ProcessId) -> Result<M, SimError> {
        let i = self.idx(from, to)?;
        let msg = self.channels[i]
            .pop()
            .ok_or(SimError::EmptyChannel { from, to })?;
        if self.channels[i].is_empty() {
            self.sync_link(i, from, to);
        }
        Ok(msg)
    }

    /// Shared access to the channel `from → to`.
    ///
    /// # Errors
    ///
    /// Returns the id errors if the pair is invalid.
    pub fn channel(&self, from: ProcessId, to: ProcessId) -> Result<&Channel<M>, SimError> {
        let i = self.idx(from, to)?;
        Ok(&self.channels[i])
    }

    /// Exclusive access to the channel `from → to` (pre-loading adversarial
    /// configurations, fault injection on channel contents). The returned
    /// guard dereferences to the [`Channel`] and re-synchronizes the
    /// network's live-link set when dropped, so arbitrary harness edits
    /// (preload, clear, set_contents) keep the incremental view exact.
    ///
    /// # Errors
    ///
    /// Returns the id errors if the pair is invalid.
    pub fn channel_mut(
        &mut self,
        from: ProcessId,
        to: ProcessId,
    ) -> Result<ChannelGuard<'_, M>, SimError> {
        let i = self.idx(from, to)?;
        Ok(ChannelGuard {
            net: self,
            idx: i,
            from,
            to,
        })
    }

    /// All directed links `(from, to)` with a non-empty channel, in
    /// row-major order — a borrowed slice maintained incrementally, O(1)
    /// to read.
    pub fn non_empty_links(&self) -> &[(ProcessId, ProcessId)] {
        &self.live
    }

    /// Recomputes the non-empty links by scanning every channel (the
    /// O(n²) reference the incremental set is validated against in tests;
    /// production code reads [`Network::non_empty_links`]).
    pub fn scan_non_empty_links(&self) -> Vec<(ProcessId, ProcessId)> {
        let mut links = Vec::new();
        for from in 0..self.n {
            for to in 0..self.n {
                if from != to && !self.channels[from * self.n + to].is_empty() {
                    links.push((ProcessId::new(from), ProcessId::new(to)));
                }
            }
        }
        links
    }

    /// Iterates over all directed links `(from, to)`, empty or not.
    pub fn links(&self) -> impl Iterator<Item = (ProcessId, ProcessId)> + '_ {
        let n = self.n;
        (0..n).flat_map(move |from| {
            (0..n)
                .filter(move |&to| to != from)
                .map(move |to| (ProcessId::new(from), ProcessId::new(to)))
        })
    }

    /// Total number of messages in flight across all channels.
    pub fn messages_in_flight(&self) -> usize {
        self.channels.iter().map(Channel::len).sum()
    }

    /// True if no channel holds any message (O(1): the live-link set is
    /// maintained incrementally).
    pub fn is_quiescent(&self) -> bool {
        self.live.is_empty()
    }

    /// Removes every in-flight message from every channel.
    pub fn clear(&mut self) {
        for ch in &mut self.channels {
            ch.clear();
        }
        while let Some(&(from, to)) = self.live.last() {
            self.live.pop();
            self.record_change(from, to, false);
        }
    }

    /// Snapshot of all channel contents: `(from, to, messages head-first)`
    /// for every non-empty channel. Reads the in-flight messages through
    /// the borrowed channel iterator, cloning once into the snapshot.
    pub fn snapshot(&self) -> Vec<(ProcessId, ProcessId, Vec<M>)> {
        self.live
            .iter()
            .map(|&(f, t)| {
                let ch = self.channel(f, t).expect("link enumerated from network");
                (f, t, ch.iter().cloned().collect())
            })
            .collect()
    }

    /// Restores channel contents from a [`Network::snapshot`]; channels not
    /// mentioned are emptied. Send counters are preserved.
    pub fn restore(&mut self, snapshot: &[(ProcessId, ProcessId, Vec<M>)]) {
        self.clear();
        for (f, t, msgs) in snapshot {
            self.channel_mut(*f, *t)
                .expect("snapshot refers to valid link")
                .set_contents(msgs.iter().cloned());
        }
    }
}

/// Builder for [`Network`].
#[derive(Clone, Debug)]
pub struct NetworkBuilder<M> {
    n: usize,
    capacity: Capacity,
    _marker: std::marker::PhantomData<fn() -> M>,
}

impl<M: Message> NetworkBuilder<M> {
    /// Starts building a network for `n` processes (default capacity:
    /// `Bounded(1)`, the paper's §4 setting).
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`: the model needs at least two processes to have
    /// any channel at all.
    pub fn new(n: usize) -> Self {
        assert!(
            n >= 2,
            "a message-passing system needs at least 2 processes"
        );
        NetworkBuilder {
            n,
            capacity: Capacity::Bounded(1),
            _marker: std::marker::PhantomData,
        }
    }

    /// Sets the uniform channel capacity.
    pub fn capacity(mut self, capacity: Capacity) -> Self {
        self.capacity = capacity;
        self
    }

    /// Builds the (empty) network.
    pub fn build(self) -> Network<M> {
        // Validate the capacity eagerly (Bounded(0) is rejected).
        let probe: Channel<M> = Channel::new(self.capacity);
        drop(probe);
        Network {
            n: self.n,
            capacity: self.capacity,
            channels: (0..self.n * self.n)
                .map(|_| Channel::new(self.capacity))
                .collect(),
            send_counts: vec![0; self.n * self.n],
            live: Vec::new(),
            links_version: 0,
            journal: Vec::new(),
            journal_base: 0,
        }
    }
}

/// Exclusive access to one channel, handed out by [`Network::channel_mut`].
///
/// Dereferences to [`Channel`]; on drop it re-synchronizes the network's
/// incremental live-link set with the channel's (possibly edited)
/// emptiness, so harness-side fault injection cannot desynchronize the
/// scheduler's view.
#[derive(Debug)]
pub struct ChannelGuard<'a, M: Message> {
    net: &'a mut Network<M>,
    idx: usize,
    from: ProcessId,
    to: ProcessId,
}

impl<M: Message> std::ops::Deref for ChannelGuard<'_, M> {
    type Target = Channel<M>;

    fn deref(&self) -> &Channel<M> {
        &self.net.channels[self.idx]
    }
}

impl<M: Message> std::ops::DerefMut for ChannelGuard<'_, M> {
    fn deref_mut(&mut self) -> &mut Channel<M> {
        &mut self.net.channels[self.idx]
    }
}

impl<M: Message> Drop for ChannelGuard<'_, M> {
    fn drop(&mut self) {
        self.net.sync_link(self.idx, self.from, self.to);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    fn net(n: usize, cap: Capacity) -> Network<u32> {
        NetworkBuilder::new(n).capacity(cap).build()
    }

    #[test]
    fn builder_defaults_to_single_message_capacity() {
        let nw = net(3, Capacity::Bounded(1));
        assert_eq!(nw.capacity(), Capacity::Bounded(1));
        assert_eq!(nw.channel_count(), 6);
        assert!(nw.is_quiescent());
    }

    #[test]
    fn send_and_deliver_roundtrip() {
        let mut nw = net(3, Capacity::Bounded(1));
        let (out, seq) = nw.send(p(0), p(1), 99);
        assert!(out.is_enqueued());
        assert_eq!(seq, 0);
        assert_eq!(nw.messages_in_flight(), 1);
        assert_eq!(nw.deliver(p(0), p(1)), Ok(99));
        assert!(nw.is_quiescent());
    }

    #[test]
    fn send_counts_are_per_link() {
        let mut nw = net(3, Capacity::Unbounded);
        let (_, s0) = nw.send(p(0), p(1), 1);
        let (_, s1) = nw.send(p(0), p(1), 2);
        let (_, s2) = nw.send(p(1), p(0), 3);
        assert_eq!((s0, s1, s2), (0, 1, 0));
    }

    #[test]
    fn full_bounded_channel_drops() {
        let mut nw = net(2, Capacity::Bounded(1));
        assert!(nw.send(p(0), p(1), 1).0.is_enqueued());
        assert!(!nw.send(p(0), p(1), 2).0.is_enqueued());
        assert_eq!(nw.deliver(p(0), p(1)), Ok(1));
        assert_eq!(
            nw.deliver(p(0), p(1)),
            Err(SimError::EmptyChannel {
                from: p(0),
                to: p(1)
            })
        );
    }

    #[test]
    fn deliver_errors() {
        let mut nw = net(2, Capacity::Bounded(1));
        assert!(matches!(
            nw.deliver(p(0), p(0)),
            Err(SimError::SelfChannel { .. })
        ));
        assert!(matches!(
            nw.deliver(p(5), p(0)),
            Err(SimError::UnknownProcess { .. })
        ));
    }

    #[test]
    fn non_empty_links_enumeration() {
        let mut nw = net(3, Capacity::Bounded(1));
        assert!(nw.non_empty_links().is_empty());
        nw.send(p(2), p(0), 5);
        nw.send(p(0), p(1), 6);
        assert_eq!(nw.non_empty_links(), &[(p(0), p(1)), (p(2), p(0))]);
        assert_eq!(nw.non_empty_links(), nw.scan_non_empty_links().as_slice());
    }

    #[test]
    fn incremental_links_follow_send_and_deliver() {
        let mut nw = net(3, Capacity::Unbounded);
        let v0 = nw.links_version();
        nw.send(p(0), p(1), 1);
        assert_eq!(nw.non_empty_links(), &[(p(0), p(1))]);
        let v1 = nw.links_version();
        assert_ne!(v0, v1, "empty -> non-empty bumps the version");
        // A second message on the same link changes nothing.
        nw.send(p(0), p(1), 2);
        assert_eq!(nw.links_version(), v1);
        nw.deliver(p(0), p(1)).unwrap();
        assert_eq!(nw.links_version(), v1, "still one message in flight");
        nw.deliver(p(0), p(1)).unwrap();
        assert!(nw.non_empty_links().is_empty());
        assert_ne!(
            nw.links_version(),
            v1,
            "non-empty -> empty bumps the version"
        );
        assert!(nw.is_quiescent());
    }

    #[test]
    fn full_channel_drop_does_not_change_links() {
        let mut nw = net(2, Capacity::Bounded(1));
        nw.send(p(0), p(1), 1);
        let v = nw.links_version();
        nw.send(p(0), p(1), 2); // lost: channel full
        assert_eq!(nw.links_version(), v);
        assert_eq!(nw.non_empty_links(), &[(p(0), p(1))]);
    }

    #[test]
    fn channel_guard_resyncs_on_drop() {
        let mut nw = net(3, Capacity::Bounded(1));
        // Preload through the guard: the live set follows.
        nw.channel_mut(p(1), p(2)).unwrap().preload([7, 8]);
        assert_eq!(nw.non_empty_links(), &[(p(1), p(2))]);
        assert_eq!(nw.non_empty_links(), nw.scan_non_empty_links().as_slice());
        // Clear through the guard: the live set follows too.
        nw.channel_mut(p(1), p(2)).unwrap().clear();
        assert!(nw.non_empty_links().is_empty());
        assert!(nw.is_quiescent());
        // Read-only access through the guard does not bump the version.
        let v = nw.links_version();
        assert_eq!(nw.channel_mut(p(1), p(2)).unwrap().len(), 0);
        assert_eq!(nw.links_version(), v);
    }

    #[test]
    fn links_enumerates_all_ordered_pairs() {
        let nw = net(3, Capacity::Bounded(1));
        let links: Vec<_> = nw.links().collect();
        assert_eq!(links.len(), 6);
        assert!(links.contains(&(p(0), p(2))));
        assert!(!links.contains(&(p(1), p(1))));
    }

    #[test]
    fn snapshot_restore_roundtrip() {
        let mut nw = net(3, Capacity::Unbounded);
        nw.send(p(0), p(1), 1);
        nw.send(p(0), p(1), 2);
        nw.send(p(2), p(1), 3);
        let snap = nw.snapshot();
        nw.clear();
        assert!(nw.is_quiescent());
        nw.restore(&snap);
        assert_eq!(nw.messages_in_flight(), 3);
        assert_eq!(nw.channel(p(0), p(1)).unwrap().contents(), vec![1, 2]);
        assert_eq!(nw.channel(p(2), p(1)).unwrap().contents(), vec![3]);
    }

    #[test]
    #[should_panic(expected = "at least 2 processes")]
    fn tiny_network_rejected() {
        let _ = net(1, Capacity::Bounded(1));
    }

    /// Replays a journal suffix onto a sorted link set (the runner's delta
    /// path, without the crash filter).
    fn apply(
        mut set: Vec<(ProcessId, ProcessId)>,
        delta: &[(ProcessId, ProcessId, bool)],
    ) -> Vec<(ProcessId, ProcessId)> {
        for &(f, t, present) in delta {
            match (set.binary_search(&(f, t)), present) {
                (Ok(pos), false) => {
                    set.remove(pos);
                }
                (Err(pos), true) => {
                    set.insert(pos, (f, t));
                }
                _ => {}
            }
        }
        set
    }

    #[test]
    fn journal_replay_reproduces_live_set() {
        let mut nw = net(4, Capacity::Bounded(1));
        let v0 = nw.links_version();
        let set0 = nw.non_empty_links().to_vec();
        nw.send(p(0), p(1), 1);
        nw.send(p(2), p(3), 2);
        nw.deliver(p(0), p(1)).unwrap();
        nw.send(p(1), p(0), 3);
        nw.clear();
        nw.send(p(3), p(2), 4);
        let delta = nw.links_changes_since(v0).expect("journal covers v0");
        assert_eq!(apply(set0, delta), nw.non_empty_links());
    }

    #[test]
    fn journal_empty_delta_at_current_version() {
        let mut nw = net(3, Capacity::Bounded(1));
        nw.send(p(0), p(1), 1);
        let v = nw.links_version();
        assert_eq!(nw.links_changes_since(v), Some(&[][..]));
    }

    #[test]
    fn journal_rejects_future_and_compacted_versions() {
        let mut nw = net(2, Capacity::Unbounded);
        assert_eq!(nw.links_changes_since(5), None, "future version");
        // Churn one link empty<->non-empty far past the retained suffix.
        for i in 0..3 * super::JOURNAL_KEEP as u32 {
            nw.send(p(0), p(1), i);
            nw.deliver(p(0), p(1)).unwrap();
        }
        assert_eq!(nw.links_changes_since(0), None, "compacted away");
        // A recent version is still replayable.
        let v = nw.links_version();
        nw.send(p(0), p(1), 9);
        assert_eq!(nw.links_changes_since(v).map(<[_]>::len), Some(1));
    }
}
