//! Sampling arbitrary initial configurations (`I = C`).
//!
//! Snap-stabilization is defined over systems whose set of initial
//! configurations is the *whole* configuration space: process variables
//! hold arbitrary values of their domains and channels hold arbitrary
//! (capacity-respecting) message sequences. [`CorruptionPlan`] draws such a
//! configuration, and can also be applied mid-run to model a transient
//! fault burst.

use crate::id::ProcessId;
use crate::process::Protocol;
use crate::rng::SimRng;
use crate::runner::Runner;
use crate::scheduler::Scheduler;

/// Types whose values can be drawn uniformly-ish from their domain.
///
/// Implemented by protocol message types so corruption can forge arbitrary
/// in-flight messages, and by helper types used in corrupted variables.
pub trait ArbitraryState: Sized {
    /// Draws an arbitrary value of the domain.
    fn arbitrary(rng: &mut SimRng) -> Self;
}

impl ArbitraryState for bool {
    fn arbitrary(rng: &mut SimRng) -> Self {
        rng.gen_bool(0.5)
    }
}

impl ArbitraryState for u8 {
    fn arbitrary(rng: &mut SimRng) -> Self {
        (rng.gen_u64() & 0xff) as u8
    }
}

impl ArbitraryState for u32 {
    fn arbitrary(rng: &mut SimRng) -> Self {
        (rng.gen_u64() & 0xffff_ffff) as u32
    }
}

impl ArbitraryState for u64 {
    fn arbitrary(rng: &mut SimRng) -> Self {
        rng.gen_u64()
    }
}

impl ArbitraryState for usize {
    fn arbitrary(rng: &mut SimRng) -> Self {
        rng.gen_u64() as usize
    }
}

impl<T: ArbitraryState> ArbitraryState for Vec<T> {
    /// A short arbitrary vector (length 0..4) — long forged payloads add
    /// nothing to the adversary model.
    fn arbitrary(rng: &mut SimRng) -> Self {
        (0..rng.gen_range(0..4))
            .map(|_| T::arbitrary(rng))
            .collect()
    }
}

impl<T: ArbitraryState> ArbitraryState for Option<T> {
    fn arbitrary(rng: &mut SimRng) -> Self {
        if rng.gen_bool(0.5) {
            Some(T::arbitrary(rng))
        } else {
            None
        }
    }
}

impl<A: ArbitraryState, B: ArbitraryState> ArbitraryState for (A, B) {
    fn arbitrary(rng: &mut SimRng) -> Self {
        (A::arbitrary(rng), B::arbitrary(rng))
    }
}

impl ArbitraryState for ProcessId {
    /// An arbitrary id in a small range — corruption targets small
    /// systems; out-of-range ids are rejected by the receivers anyway.
    fn arbitrary(rng: &mut SimRng) -> Self {
        ProcessId::new(rng.gen_range(0..16))
    }
}

impl ArbitraryState for &'static str {
    /// Draws from a small pool of junk strings — convenient for protocols
    /// whose payload domain is a set of string literals.
    fn arbitrary(rng: &mut SimRng) -> Self {
        const POOL: [&str; 6] = ["", "garbage", "stale", "forged", "noise", "junk"];
        POOL[rng.gen_range(0..POOL.len())]
    }
}

/// How to corrupt a system into an arbitrary configuration.
#[derive(Clone, Copy, Debug)]
pub struct CorruptionPlan {
    /// Corrupt every process's variables.
    pub corrupt_processes: bool,
    /// Corrupt channel contents: fill each channel with between 0 and
    /// `max_preload_per_channel` forged messages (clamped to the capacity
    /// bound for bounded channels).
    pub corrupt_channels: bool,
    /// Upper bound on forged messages per channel (relevant for unbounded
    /// channels; bounded channels clamp to their capacity).
    pub max_preload_per_channel: usize,
}

impl Default for CorruptionPlan {
    fn default() -> Self {
        CorruptionPlan {
            corrupt_processes: true,
            corrupt_channels: true,
            max_preload_per_channel: 1,
        }
    }
}

impl CorruptionPlan {
    /// The full `I = C` plan for single-message-capacity systems: arbitrary
    /// variables everywhere, every channel holding 0 or 1 forged message.
    pub fn full() -> Self {
        CorruptionPlan::default()
    }

    /// Corrupt only process variables, leaving channels untouched.
    pub fn processes_only() -> Self {
        CorruptionPlan {
            corrupt_processes: true,
            corrupt_channels: false,
            max_preload_per_channel: 0,
        }
    }

    /// Corrupt only channel contents.
    pub fn channels_only(max_preload: usize) -> Self {
        CorruptionPlan {
            corrupt_processes: false,
            corrupt_channels: true,
            max_preload_per_channel: max_preload,
        }
    }

    /// Applies the plan to a runner, drawing from `rng`. Channel contents
    /// are cleared and replaced by forged messages; the number per channel
    /// is drawn in `0..=limit` where `limit` respects the capacity bound.
    pub fn apply<P, S>(&self, runner: &mut Runner<P, S>, rng: &mut SimRng)
    where
        P: Protocol,
        P::Msg: ArbitraryState,
        S: Scheduler,
    {
        if self.corrupt_processes {
            runner.corrupt_all_processes(rng);
        }
        if self.corrupt_channels {
            let links: Vec<(ProcessId, ProcessId)> = runner.network().links().collect();
            for (from, to) in links {
                let cap_limit = runner
                    .network()
                    .capacity()
                    .bound()
                    .unwrap_or(usize::MAX)
                    .min(self.max_preload_per_channel);
                let count = if cap_limit == 0 {
                    0
                } else {
                    rng.gen_range(0..cap_limit + 1)
                };
                let forged: Vec<P::Msg> = (0..count).map(|_| P::Msg::arbitrary(rng)).collect();
                let mut ch = runner
                    .network_mut()
                    .channel_mut(from, to)
                    .expect("link enumerated from network");
                ch.set_contents(forged);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::Capacity;
    use crate::network::NetworkBuilder;
    use crate::process::test_support::{PingMsg, PingProcess};
    use crate::scheduler::RoundRobin;

    impl ArbitraryState for PingMsg {
        fn arbitrary(rng: &mut SimRng) -> Self {
            PingMsg::Ping(u32::arbitrary(rng))
        }
    }

    fn runner(cap: Capacity) -> Runner<PingProcess, RoundRobin> {
        let n = 3;
        let processes = (0..n)
            .map(|i| PingProcess::new(ProcessId::new(i), n, 0))
            .collect();
        let network = NetworkBuilder::new(n).capacity(cap).build();
        Runner::new(processes, network, RoundRobin::new(), 0)
    }

    #[test]
    fn primitive_arbitraries_are_deterministic() {
        let mut a = SimRng::seed_from(1);
        let mut b = SimRng::seed_from(1);
        assert_eq!(u64::arbitrary(&mut a), u64::arbitrary(&mut b));
        assert_eq!(bool::arbitrary(&mut a), bool::arbitrary(&mut b));
        assert_eq!(u8::arbitrary(&mut a), u8::arbitrary(&mut b));
        assert_eq!(u32::arbitrary(&mut a), u32::arbitrary(&mut b));
        assert_eq!(usize::arbitrary(&mut a), usize::arbitrary(&mut b));
    }

    #[test]
    fn full_plan_respects_bounded_capacity() {
        let mut r = runner(Capacity::Bounded(1));
        let mut rng = SimRng::seed_from(42);
        CorruptionPlan::full().apply(&mut r, &mut rng);
        for (f, t) in r.network().links().collect::<Vec<_>>() {
            assert!(r.network().channel(f, t).unwrap().len() <= 1);
        }
    }

    #[test]
    fn channels_only_leaves_processes_alone() {
        let mut r = runner(Capacity::Bounded(1));
        let before: Vec<_> = r.processes().iter().map(|p| p.snapshot()).collect();
        let mut rng = SimRng::seed_from(9);
        CorruptionPlan::channels_only(1).apply(&mut r, &mut rng);
        let after: Vec<_> = r.processes().iter().map(|p| p.snapshot()).collect();
        assert_eq!(before, after);
    }

    #[test]
    fn processes_only_leaves_channels_alone() {
        let mut r = runner(Capacity::Bounded(1));
        let mut rng = SimRng::seed_from(9);
        CorruptionPlan::processes_only().apply(&mut r, &mut rng);
        assert!(r.network().is_quiescent());
    }

    #[test]
    fn unbounded_channels_respect_max_preload() {
        let mut r = runner(Capacity::Unbounded);
        let mut rng = SimRng::seed_from(3);
        CorruptionPlan::channels_only(5).apply(&mut r, &mut rng);
        for (f, t) in r.network().links().collect::<Vec<_>>() {
            assert!(r.network().channel(f, t).unwrap().len() <= 5);
        }
    }

    #[test]
    fn some_seed_produces_nonempty_channels() {
        let mut any = false;
        for seed in 0..10 {
            let mut r = runner(Capacity::Bounded(1));
            let mut rng = SimRng::seed_from(seed);
            CorruptionPlan::full().apply(&mut r, &mut rng);
            if r.network().messages_in_flight() > 0 {
                any = true;
            }
        }
        assert!(any, "corruption should sometimes forge in-flight messages");
    }
}
