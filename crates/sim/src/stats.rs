//! Aggregate counters of a simulation run, consumed by the benches.

/// Counters accumulated by a [`crate::Runner`] over an execution.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct SimStats {
    /// Atomic steps executed (activations + deliveries).
    pub steps: u64,
    /// Activation steps.
    pub activations: u64,
    /// Activation steps in which at least one action executed.
    pub effective_activations: u64,
    /// Delivery steps (messages received).
    pub deliveries: u64,
    /// Send attempts made by protocol actions.
    pub sends_attempted: u64,
    /// Send attempts that entered a channel.
    pub sends_enqueued: u64,
    /// Sends lost to the §4 drop-on-full rule.
    pub lost_full: u64,
    /// Sends lost by the loss model in transit.
    pub lost_in_transit: u64,
    /// Protocol-level events emitted.
    pub protocol_events: u64,
}

impl SimStats {
    /// A zeroed counter set.
    pub fn new() -> Self {
        SimStats::default()
    }

    /// Total messages lost (full channels + transit loss).
    pub fn total_lost(&self) -> u64 {
        self.lost_full + self.lost_in_transit
    }

    /// Fraction of send attempts that were eventually delivered so far.
    /// (Messages still in flight count against this, so it is a lower
    /// bound during a run and exact once the network is quiescent.)
    pub fn delivery_ratio(&self) -> f64 {
        if self.sends_attempted == 0 {
            1.0
        } else {
            self.deliveries as f64 / self.sends_attempted as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_lost_sums_both_kinds() {
        let s = SimStats {
            lost_full: 3,
            lost_in_transit: 4,
            ..SimStats::new()
        };
        assert_eq!(s.total_lost(), 7);
    }

    #[test]
    fn delivery_ratio_handles_zero_sends() {
        assert_eq!(SimStats::new().delivery_ratio(), 1.0);
        let s = SimStats {
            sends_attempted: 10,
            deliveries: 5,
            ..SimStats::new()
        };
        assert!((s.delivery_ratio() - 0.5).abs() < 1e-9);
    }
}
