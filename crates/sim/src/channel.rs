//! FIFO channels with bounded or unbounded capacity.
//!
//! The paper's two regimes:
//!
//! * **Finite yet unbounded** capacity ([`Capacity::Unbounded`]): channels
//!   can hold arbitrarily many messages. Theorem 1 shows snap-stabilization
//!   of safety-distributed specifications is impossible here, because an
//!   arbitrary initial configuration can hide an arbitrarily long sequence
//!   of forged messages in a channel.
//! * **Bounded, known** capacity ([`Capacity::Bounded`]): each channel holds
//!   at most `c` messages and "if a process sends a message in a channel
//!   that is full, then the message is lost" (§4). The paper's protocols are
//!   designed for `c = 1`; the extension to arbitrary known `c` is
//!   straightforward and supported here.

use std::collections::VecDeque;
use std::fmt;

/// Capacity regime of a channel.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Capacity {
    /// At most this many messages in flight; a send into a full channel
    /// loses the message (paper §4 semantics).
    Bounded(usize),
    /// No bound: any finite number of messages can be in flight (paper §3
    /// impossibility setting).
    Unbounded,
}

impl Capacity {
    /// The bound if bounded, `None` if unbounded.
    pub fn bound(self) -> Option<usize> {
        match self {
            Capacity::Bounded(c) => Some(c),
            Capacity::Unbounded => None,
        }
    }

    /// True if a channel at this capacity holding `len` messages can accept
    /// one more.
    pub fn admits(self, len: usize) -> bool {
        match self {
            Capacity::Bounded(c) => len < c,
            Capacity::Unbounded => true,
        }
    }
}

impl fmt::Display for Capacity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Capacity::Bounded(c) => write!(f, "bounded({c})"),
            Capacity::Unbounded => write!(f, "unbounded"),
        }
    }
}

/// Outcome of offering a message to a channel.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SendOutcome {
    /// The message was enqueued.
    Enqueued,
    /// The channel was full; the message was lost (bounded capacity only).
    LostFull,
}

/// A FIFO channel between one ordered pair of processes.
///
/// ```
/// use snapstab_sim::{Capacity, Channel};
/// let mut ch: Channel<&str> = Channel::new(Capacity::Bounded(1));
/// assert!(ch.offer("hello").is_enqueued());
/// assert!(!ch.offer("dropped: channel full").is_enqueued());
/// assert_eq!(ch.pop(), Some("hello"));
/// assert!(ch.is_empty());
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Channel<M> {
    capacity: Capacity,
    queue: VecDeque<M>,
}

impl SendOutcome {
    /// True if the message entered the channel.
    pub fn is_enqueued(self) -> bool {
        self == SendOutcome::Enqueued
    }
}

impl<M> Channel<M> {
    /// Creates an empty channel with the given capacity.
    ///
    /// # Panics
    ///
    /// Panics if the capacity is `Bounded(0)`: the paper's model requires
    /// every channel to be able to carry at least one message.
    pub fn new(capacity: Capacity) -> Self {
        if let Capacity::Bounded(0) = capacity {
            panic!("channel capacity must be at least 1");
        }
        Channel {
            capacity,
            queue: VecDeque::new(),
        }
    }

    /// The capacity regime of this channel.
    pub fn capacity(&self) -> Capacity {
        self.capacity
    }

    /// Number of messages currently in flight.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// True if no message is in flight.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Offers a message to the channel. If the channel is full (bounded
    /// capacity), the message is lost and [`SendOutcome::LostFull`] is
    /// returned — the sender is *not* notified in-protocol, matching §4.
    pub fn offer(&mut self, msg: M) -> SendOutcome {
        if self.capacity.admits(self.queue.len()) {
            self.queue.push_back(msg);
            SendOutcome::Enqueued
        } else {
            SendOutcome::LostFull
        }
    }

    /// Removes and returns the message at the head of the channel.
    pub fn pop(&mut self) -> Option<M> {
        self.queue.pop_front()
    }

    /// Peeks at the head of the channel without removing it.
    pub fn peek(&self) -> Option<&M> {
        self.queue.front()
    }

    /// Iterates over in-flight messages from head (next to be delivered) to
    /// tail (most recently sent).
    pub fn iter(&self) -> impl Iterator<Item = &M> {
        self.queue.iter()
    }

    /// The in-flight messages as a pair of borrowed slices, head first
    /// (the ring buffer may wrap, hence two). Lets callers inspect channel
    /// contents without cloning the queue — prefer this or
    /// [`Channel::iter`] over [`Channel::contents`] on hot paths.
    pub fn as_slices(&self) -> (&[M], &[M]) {
        self.queue.as_slices()
    }

    /// Removes every in-flight message.
    pub fn clear(&mut self) {
        self.queue.clear();
    }

    /// Force-loads messages into the channel **ignoring capacity**.
    ///
    /// This models the arbitrary initial configurations of the paper (the
    /// adversary, not the protocol, decides the initial channel contents).
    /// For bounded channels the caller is responsible for respecting the
    /// bound when sampling `I = C`; the Theorem 1 machinery deliberately
    /// checks feasibility before calling this.
    pub fn preload(&mut self, msgs: impl IntoIterator<Item = M>) {
        for m in msgs {
            self.queue.push_back(m);
        }
    }

    /// Replaces the channel contents (used when restoring a snapshot).
    pub fn set_contents(&mut self, msgs: impl IntoIterator<Item = M>) {
        self.queue.clear();
        self.preload(msgs);
    }
}

impl<M: Clone> Channel<M> {
    /// A copy of the in-flight messages, head first. Allocates a fresh
    /// `Vec` per call; use [`Channel::iter`] or [`Channel::as_slices`]
    /// when a borrow is enough.
    pub fn contents(&self) -> Vec<M> {
        self.queue.iter().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_admits() {
        assert!(Capacity::Bounded(1).admits(0));
        assert!(!Capacity::Bounded(1).admits(1));
        assert!(Capacity::Bounded(3).admits(2));
        assert!(Capacity::Unbounded.admits(1_000_000));
    }

    #[test]
    fn capacity_bound() {
        assert_eq!(Capacity::Bounded(4).bound(), Some(4));
        assert_eq!(Capacity::Unbounded.bound(), None);
    }

    #[test]
    fn capacity_display() {
        assert_eq!(Capacity::Bounded(1).to_string(), "bounded(1)");
        assert_eq!(Capacity::Unbounded.to_string(), "unbounded");
    }

    #[test]
    fn fifo_order() {
        let mut ch = Channel::new(Capacity::Unbounded);
        for i in 0..5 {
            assert!(ch.offer(i).is_enqueued());
        }
        let drained: Vec<_> = std::iter::from_fn(|| ch.pop()).collect();
        assert_eq!(drained, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn bounded_send_on_full_is_lost() {
        let mut ch = Channel::new(Capacity::Bounded(1));
        assert_eq!(ch.offer('a'), SendOutcome::Enqueued);
        assert_eq!(ch.offer('b'), SendOutcome::LostFull);
        assert_eq!(ch.len(), 1);
        assert_eq!(ch.pop(), Some('a'));
        // After draining, the channel accepts again.
        assert_eq!(ch.offer('c'), SendOutcome::Enqueued);
    }

    #[test]
    fn bounded_capacity_two() {
        let mut ch = Channel::new(Capacity::Bounded(2));
        assert!(ch.offer(1).is_enqueued());
        assert!(ch.offer(2).is_enqueued());
        assert!(!ch.offer(3).is_enqueued());
        assert_eq!(ch.contents(), vec![1, 2]);
    }

    #[test]
    fn preload_ignores_capacity() {
        let mut ch = Channel::new(Capacity::Bounded(1));
        ch.preload([1, 2, 3]);
        assert_eq!(ch.len(), 3);
        assert_eq!(ch.contents(), vec![1, 2, 3]);
        // But regular sends still respect the bound.
        assert!(!ch.offer(4).is_enqueued());
    }

    #[test]
    fn as_slices_covers_queue_head_first() {
        let mut ch = Channel::new(Capacity::Unbounded);
        for i in 0..6 {
            ch.offer(i);
        }
        // Wrap the ring buffer: pop a few, push a few.
        ch.pop();
        ch.pop();
        ch.offer(6);
        ch.offer(7);
        let (a, b) = ch.as_slices();
        let joined: Vec<i32> = a.iter().chain(b.iter()).copied().collect();
        assert_eq!(joined, ch.contents());
        assert_eq!(joined.len(), ch.len());
    }

    #[test]
    fn peek_does_not_consume() {
        let mut ch = Channel::new(Capacity::Unbounded);
        ch.offer(42);
        assert_eq!(ch.peek(), Some(&42));
        assert_eq!(ch.len(), 1);
    }

    #[test]
    fn set_contents_replaces() {
        let mut ch = Channel::new(Capacity::Unbounded);
        ch.offer(1);
        ch.set_contents([7, 8]);
        assert_eq!(ch.contents(), vec![7, 8]);
    }

    #[test]
    #[should_panic(expected = "capacity must be at least 1")]
    fn zero_capacity_rejected() {
        let _ = Channel::<u8>::new(Capacity::Bounded(0));
    }
}
