//! Human-readable rendering of execution traces.
//!
//! [`render_timeline`] lays a trace out as one text lane per process —
//! handy for eyeballing small executions (the `snapstab` CLI's `--trace`
//! mode and the examples use it).

use std::fmt::Write as _;

use crate::trace::{Trace, TraceEvent};

/// Options for [`render_timeline`].
#[derive(Clone, Copy, Debug)]
pub struct RenderOptions {
    /// Maximum entries rendered (traces can be huge); `0` = unlimited.
    pub max_entries: usize,
    /// Include send events (they dominate long traces).
    pub show_sends: bool,
    /// Include delivery events.
    pub show_deliveries: bool,
    /// Include activation events that executed no action.
    pub show_idle_activations: bool,
}

impl Default for RenderOptions {
    fn default() -> Self {
        RenderOptions {
            max_entries: 200,
            show_sends: false,
            show_deliveries: true,
            show_idle_activations: false,
        }
    }
}

/// Renders a trace as a per-process lane timeline.
///
/// Each rendered line is `step | lane columns…` where the emitting
/// process's lane holds a short event description. Protocol events are
/// rendered with their `Debug` form (truncated to keep lanes readable).
pub fn render_timeline<M, E>(trace: &Trace<M, E>, n: usize, options: &RenderOptions) -> String
where
    M: std::fmt::Debug,
    E: std::fmt::Debug,
{
    let lane_width = 26usize;
    let mut out = String::new();
    let _ = write!(out, "{:>8} ", "step");
    for i in 0..n {
        let _ = write!(out, "| {:<width$} ", format!("P{i}"), width = lane_width);
    }
    out.push('\n');
    let _ = write!(out, "{:->8}-", "");
    for _ in 0..n {
        let _ = write!(out, "+-{:-<width$}-", "", width = lane_width);
    }
    out.push('\n');

    let mut rendered = 0usize;
    for entry in trace.iter() {
        if options.max_entries != 0 && rendered >= options.max_entries {
            let _ = writeln!(out, "... ({} more entries)", trace.len() - rendered);
            break;
        }
        let (lane, text) = match &entry.event {
            TraceEvent::Activated { p, acted } => {
                if !acted && !options.show_idle_activations {
                    continue;
                }
                (
                    p.index(),
                    if *acted {
                        "act".to_string()
                    } else {
                        "act (idle)".to_string()
                    },
                )
            }
            TraceEvent::Sent { from, to, fate, .. } => {
                if !options.show_sends {
                    continue;
                }
                (from.index(), format!("send->{} [{fate:?}]", to))
            }
            TraceEvent::Delivered { from, to, .. } => {
                if !options.show_deliveries {
                    continue;
                }
                (to.index(), format!("recv<-{from}"))
            }
            TraceEvent::Protocol { p, event } => (p.index(), format!("{event:?}")),
            TraceEvent::Corrupted { p } => (p.index(), "CORRUPTED".to_string()),
            TraceEvent::Marker { p, label } => (p.index(), format!("[{label}]")),
        };
        let mut text = text;
        if text.len() > lane_width {
            text.truncate(lane_width - 1);
            text.push('…');
        }
        let _ = write!(out, "{:>8} ", entry.step);
        for i in 0..n {
            if i == lane {
                let _ = write!(out, "| {text:<lane_width$} ");
            } else {
                let _ = write!(out, "| {:<lane_width$} ", "");
            }
        }
        out.push('\n');
        rendered += 1;
    }
    out
}

/// Renders only the protocol events of a trace, one line each.
pub fn render_events<M, E>(trace: &Trace<M, E>, max: usize) -> String
where
    M: std::fmt::Debug,
    E: std::fmt::Debug,
{
    let mut out = String::new();
    for (i, (step, p, e)) in trace.protocol_events().enumerate() {
        if max != 0 && i >= max {
            out.push_str("...\n");
            break;
        }
        let _ = writeln!(out, "{step:>8}  {p}: {e:?}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::ProcessId;
    use crate::trace::SendFate;

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    fn sample() -> Trace<u8, &'static str> {
        let mut t = Trace::new();
        t.push_marker(0, p(0), "request");
        t.push(
            1,
            TraceEvent::Activated {
                p: p(0),
                acted: true,
            },
        );
        t.push(
            1,
            TraceEvent::Sent {
                from: p(0),
                to: p(1),
                msg: 7,
                fate: SendFate::Enqueued,
            },
        );
        t.push(
            2,
            TraceEvent::Delivered {
                from: p(0),
                to: p(1),
                msg: 7,
            },
        );
        t.push(
            2,
            TraceEvent::Protocol {
                p: p(1),
                event: "ReceiveBrd",
            },
        );
        t.push(
            3,
            TraceEvent::Activated {
                p: p(1),
                acted: false,
            },
        );
        t.push(4, TraceEvent::Corrupted { p: p(0) });
        t
    }

    #[test]
    fn timeline_renders_lanes() {
        let s = render_timeline(&sample(), 2, &RenderOptions::default());
        assert!(s.contains("P0"));
        assert!(s.contains("P1"));
        assert!(s.contains("[request]"));
        assert!(s.contains("recv<-P0"));
        assert!(s.contains("ReceiveBrd"));
        assert!(s.contains("CORRUPTED"));
        // Idle activations and sends hidden by default.
        assert!(!s.contains("act (idle)"));
        assert!(!s.contains("send->"));
    }

    #[test]
    fn timeline_options_toggle_noise() {
        let opts = RenderOptions {
            show_sends: true,
            show_idle_activations: true,
            ..RenderOptions::default()
        };
        let s = render_timeline(&sample(), 2, &opts);
        assert!(s.contains("send->P1"));
        assert!(s.contains("act (idle)"));
    }

    #[test]
    fn timeline_truncates_at_max_entries() {
        let opts = RenderOptions {
            max_entries: 2,
            ..RenderOptions::default()
        };
        let s = render_timeline(&sample(), 2, &opts);
        assert!(s.contains("more entries"));
    }

    #[test]
    fn events_renderer_lists_protocol_events() {
        let s = render_events(&sample(), 0);
        assert!(s.contains("P1: \"ReceiveBrd\""));
        let s = render_events(&sample(), 0);
        assert_eq!(s.lines().count(), 1);
    }
}
