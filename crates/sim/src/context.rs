//! The per-step execution context handed to protocol actions.

use crate::id::{neighbors, ProcessId};
use crate::rng::SimRng;

/// Capabilities available to a protocol action during one atomic step:
/// sending messages, emitting protocol events, and (for randomized baseline
/// protocols only — the paper's protocols are deterministic) drawing random
/// values.
///
/// Sends are buffered and applied to the network by the runner *after* the
/// action completes, preserving the paper's atomic-step semantics: the
/// guard evaluation, the statement, and all its sends form one step.
#[derive(Debug)]
pub struct Context<'a, M, E> {
    me: ProcessId,
    n: usize,
    step: u64,
    rng: &'a mut SimRng,
    sends: &'a mut Vec<(ProcessId, M)>,
    events: &'a mut Vec<E>,
}

impl<'a, M, E> Context<'a, M, E> {
    /// Creates a context; called by the runner (public for custom harnesses
    /// and unit tests of protocol actions).
    pub fn new(
        me: ProcessId,
        n: usize,
        step: u64,
        rng: &'a mut SimRng,
        sends: &'a mut Vec<(ProcessId, M)>,
        events: &'a mut Vec<E>,
    ) -> Self {
        Context {
            me,
            n,
            step,
            rng,
            sends,
            events,
        }
    }

    /// The process executing the current action.
    pub fn me(&self) -> ProcessId {
        self.me
    }

    /// Number of processes in the system.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The global step number of the current atomic step.
    pub fn step(&self) -> u64 {
        self.step
    }

    /// Buffers a message send to `to`. The runner applies channel capacity
    /// and the loss model when the step commits.
    ///
    /// # Panics
    ///
    /// Panics if `to` is the executing process itself — the topology has no
    /// self-channels.
    pub fn send(&mut self, to: ProcessId, msg: M) {
        assert_ne!(to, self.me, "{} attempted to send to itself", self.me);
        self.sends.push((to, msg));
    }

    /// Emits a protocol-level event into the trace (e.g. `receive-brd`,
    /// `receive-fck`, CS entry).
    pub fn emit(&mut self, event: E) {
        self.events.push(event);
    }

    /// Iterates over the executing process's neighbors.
    pub fn neighbors(&self) -> impl Iterator<Item = ProcessId> {
        neighbors(self.me, self.n)
    }

    /// Deterministic, seeded randomness. The paper's protocols never use
    /// this; it exists for randomized baselines (e.g. Afek–Brown labels).
    pub fn rng(&mut self) -> &mut SimRng {
        self.rng
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_accessors() {
        let mut rng = SimRng::seed_from(0);
        let mut sends: Vec<(ProcessId, u8)> = Vec::new();
        let mut events: Vec<&'static str> = Vec::new();
        let mut ctx = Context::new(ProcessId::new(1), 4, 17, &mut rng, &mut sends, &mut events);
        assert_eq!(ctx.me(), ProcessId::new(1));
        assert_eq!(ctx.n(), 4);
        assert_eq!(ctx.step(), 17);
        let ns: Vec<_> = ctx.neighbors().collect();
        assert_eq!(ns.len(), 3);
        ctx.send(ProcessId::new(0), 9);
        ctx.emit("evt");
        assert_eq!(sends, vec![(ProcessId::new(0), 9)]);
        assert_eq!(events, vec!["evt"]);
    }

    #[test]
    #[should_panic(expected = "send to itself")]
    fn self_send_rejected() {
        let mut rng = SimRng::seed_from(0);
        let mut sends: Vec<(ProcessId, u8)> = Vec::new();
        let mut events: Vec<()> = Vec::new();
        let mut ctx = Context::new(ProcessId::new(2), 4, 0, &mut rng, &mut sends, &mut events);
        ctx.send(ProcessId::new(2), 1);
    }
}
