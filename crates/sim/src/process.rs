//! The guarded-action process model.
//!
//! The paper (§2) describes a protocol as "a collection of actions" of the
//! form `⟨label⟩ :: ⟨guard⟩ → ⟨statement⟩`, where a guard is a boolean
//! expression over the process variables and/or an input message, executed
//! atomically, and "when several actions are simultaneously enabled at a
//! process p, all these actions are sequentially executed following the
//! order of their appearance in the text of the protocol".
//!
//! [`Protocol`] captures exactly this:
//!
//! * [`Protocol::activate`] runs all enabled *internal* actions (guards over
//!   variables only) in textual order, atomically — one simulator step;
//! * [`Protocol::on_receive`] runs the *receive* actions (guards over an
//!   input message) for one delivered message — one simulator step;
//! * [`Protocol::has_enabled_action`] reports whether any internal guard is
//!   true (quiescence detection and scheduler fairness);
//! * [`Protocol::corrupt`] overwrites every *variable* with an arbitrary
//!   value of its domain (transient faults / arbitrary initial
//!   configurations; constants such as `n` and process IDs are preserved,
//!   deviation D5);
//! * [`Protocol::snapshot`] / [`Protocol::restore`] expose the state
//!   projection `φ_p(γ)` of Definition 3, used by the Theorem 1 machinery
//!   to build abstract configurations.

use std::fmt;

use crate::context::Context;
use crate::id::ProcessId;
use crate::rng::SimRng;

/// Marker trait for message types carried by the simulator.
///
/// Blanket-implemented: any clonable, debuggable, comparable, `'static`
/// type qualifies.
pub trait Message: Clone + fmt::Debug + PartialEq + 'static {}

impl<T: Clone + fmt::Debug + PartialEq + 'static> Message for T {}

/// A deterministic guarded-action process (paper §2).
///
/// Implementations hold the process's local variables; the simulator owns
/// the channels and drives the two entry points. All sends and
/// protocol-level events go through the [`Context`].
pub trait Protocol {
    /// Message type exchanged by this protocol.
    type Msg: Message;
    /// Protocol-level events recorded in the trace (e.g. `receive-brd`,
    /// CS entry). Used by specification checkers.
    type Event: Clone + fmt::Debug + PartialEq + 'static;
    /// The state projection `φ_p(γ)`: a value capturing every local
    /// variable (but no channel content).
    type State: Clone + fmt::Debug + PartialEq + 'static;

    /// Executes every enabled internal action in textual order, atomically.
    /// Returns `true` if at least one action executed.
    fn activate(&mut self, ctx: &mut Context<'_, Self::Msg, Self::Event>) -> bool;

    /// Executes the receive actions for a message delivered from `from`,
    /// atomically.
    fn on_receive(
        &mut self,
        from: ProcessId,
        msg: Self::Msg,
        ctx: &mut Context<'_, Self::Msg, Self::Event>,
    );

    /// True if some internal action is currently enabled.
    fn has_enabled_action(&self) -> bool;

    /// Overwrites every local *variable* with an arbitrary value of its
    /// domain. Constants (process id, `n`) are preserved.
    fn corrupt(&mut self, rng: &mut SimRng);

    /// The state projection of this process: every local variable.
    fn snapshot(&self) -> Self::State;

    /// Restores a previously captured state projection.
    fn restore(&mut self, state: Self::State);

    /// True if `event` is consumed by an executable specification
    /// checker. Everything is relevant by default; wrapper protocols
    /// whose inner layers emit high-volume sub-events the checkers
    /// skip (e.g. the mutex layer's per-wave PIF events) override this
    /// so scale runs can record a trace proportional to specification
    /// activity instead of wave traffic — see the live runtime's
    /// `TraceDetail::Spec`.
    fn event_is_spec_relevant(_event: &Self::Event) -> bool {
        true
    }
}

#[cfg(test)]
pub(crate) mod test_support {
    //! A tiny ping-counting protocol used by the simulator's own tests.

    use super::*;

    /// Messages of [`PingProcess`].
    #[derive(Clone, Copy, PartialEq, Eq, Debug)]
    pub enum PingMsg {
        /// A ping carrying a payload.
        Ping(u32),
    }

    /// Events of [`PingProcess`].
    #[derive(Clone, Copy, PartialEq, Eq, Debug)]
    pub enum PingEvent {
        /// A ping was received with this payload.
        Got(u32),
    }

    /// A process that sends `budget` pings to its successor (mod n) and
    /// counts the pings it receives.
    #[derive(Clone, PartialEq, Eq, Debug)]
    pub struct PingProcess {
        pub me: ProcessId,
        pub n: usize,
        pub budget: u32,
        pub received: Vec<u32>,
    }

    impl PingProcess {
        pub fn new(me: ProcessId, n: usize, budget: u32) -> Self {
            PingProcess {
                me,
                n,
                budget,
                received: Vec::new(),
            }
        }

        fn successor(&self) -> ProcessId {
            ProcessId::new((self.me.index() + 1) % self.n)
        }
    }

    impl Protocol for PingProcess {
        type Msg = PingMsg;
        type Event = PingEvent;
        type State = (u32, Vec<u32>);

        fn activate(&mut self, ctx: &mut Context<'_, PingMsg, PingEvent>) -> bool {
            if self.budget > 0 {
                let payload = self.budget;
                self.budget -= 1;
                ctx.send(self.successor(), PingMsg::Ping(payload));
                true
            } else {
                false
            }
        }

        fn on_receive(
            &mut self,
            _from: ProcessId,
            msg: PingMsg,
            ctx: &mut Context<'_, PingMsg, PingEvent>,
        ) {
            let PingMsg::Ping(v) = msg;
            self.received.push(v);
            ctx.emit(PingEvent::Got(v));
        }

        fn has_enabled_action(&self) -> bool {
            self.budget > 0
        }

        fn corrupt(&mut self, rng: &mut SimRng) {
            self.budget = rng.gen_range(0..8) as u32;
            self.received.clear();
        }

        fn snapshot(&self) -> (u32, Vec<u32>) {
            (self.budget, self.received.clone())
        }

        fn restore(&mut self, state: (u32, Vec<u32>)) {
            self.budget = state.0;
            self.received = state.1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::test_support::*;
    use super::*;

    #[test]
    fn ping_process_activation_consumes_budget() {
        let mut p = PingProcess::new(ProcessId::new(0), 2, 2);
        let mut rng = SimRng::seed_from(0);
        let mut sends = Vec::new();
        let mut events = Vec::new();
        let mut ctx = Context::new(ProcessId::new(0), 2, 0, &mut rng, &mut sends, &mut events);
        assert!(p.has_enabled_action());
        assert!(p.activate(&mut ctx));
        assert!(p.activate(&mut ctx));
        assert!(!p.activate(&mut ctx));
        assert!(!p.has_enabled_action());
        assert_eq!(sends.len(), 2);
        assert_eq!(sends[0], (ProcessId::new(1), PingMsg::Ping(2)));
    }

    #[test]
    fn ping_process_receive_records_and_emits() {
        let mut p = PingProcess::new(ProcessId::new(1), 2, 0);
        let mut rng = SimRng::seed_from(0);
        let mut sends = Vec::new();
        let mut events = Vec::new();
        let mut ctx = Context::new(ProcessId::new(1), 2, 5, &mut rng, &mut sends, &mut events);
        p.on_receive(ProcessId::new(0), PingMsg::Ping(9), &mut ctx);
        assert_eq!(p.received, vec![9]);
        assert_eq!(events, vec![PingEvent::Got(9)]);
    }

    #[test]
    fn snapshot_restore_roundtrip() {
        let mut p = PingProcess::new(ProcessId::new(0), 3, 4);
        p.received.push(1);
        let snap = p.snapshot();
        let mut rng = SimRng::seed_from(7);
        p.corrupt(&mut rng);
        p.restore(snap);
        assert_eq!(p.budget, 4);
        assert_eq!(p.received, vec![1]);
    }
}
