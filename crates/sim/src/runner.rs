//! The execution engine: drives processes, channels, scheduler, loss model
//! and trace through atomic steps.

use crate::channel::SendOutcome;
use crate::context::Context;
use crate::error::SimError;
use crate::id::ProcessId;
use crate::loss::LossModel;
use crate::network::Network;
use crate::process::Protocol;
use crate::rng::SimRng;
use crate::scheduler::{Move, Scheduler, SystemView};
use crate::stats::SimStats;
use crate::trace::{SendFate, Trace, TraceEvent};

/// Why a [`Runner::run_steps`] (or [`Runner::run_until`]) call stopped.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum StopCondition {
    /// Ran the requested number of steps.
    StepsExhausted,
    /// No move was applicable (and the scheduler returned `None`): the
    /// system is quiescent.
    Quiescent,
    /// The user predicate became true.
    Predicate,
    /// The scheduler's script ended before quiescence.
    SchedulerDone,
}

/// Outcome of a [`Runner::run_steps`] (or [`Runner::run_until`]) call.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct RunOutcome {
    /// Steps executed by this call.
    pub steps: u64,
    /// Why the run stopped.
    pub stopped: StopCondition,
}

impl RunOutcome {
    /// True if the run ended with a quiescent system.
    pub fn is_quiescent(&self) -> bool {
        self.stopped == StopCondition::Quiescent
    }
}

/// The simulation engine for a system of `n` identical-type processes.
///
/// A `Runner` owns the processes, the network, a scheduler, a loss model,
/// the RNG and the trace, and exposes single-step and run-to-condition
/// execution. All mutation of processes and channels between steps (request
/// injection, corruption, pre-loading) goes through the accessors, so
/// harnesses stay in full control of the experiment.
#[derive(Debug)]
pub struct Runner<P: Protocol, S> {
    processes: Vec<P>,
    network: Network<P::Msg>,
    scheduler: S,
    loss: LossModel,
    rng: SimRng,
    trace: Trace<P::Msg, P::Event>,
    stats: SimStats,
    step: u64,
    record_trace: bool,
    crashed: Vec<bool>,
    send_buf: Vec<(ProcessId, P::Msg)>,
    event_buf: Vec<P::Event>,
    /// Persistent scheduler view, updated incrementally: per-process
    /// enabled flags refresh only for processes marked dirty since the
    /// last step, and the link list resyncs only when the network's
    /// live-link version moved. A steady-state step allocates nothing.
    view_buf: SystemView,
    /// Processes whose `has_enabled_action` must be re-read (stack).
    dirty: Vec<ProcessId>,
    /// Dedup flags for `dirty`.
    dirty_flag: Vec<bool>,
    /// Network link version `view_buf` was last synced against; `None`
    /// forces a resync (initially, and after a crash changes the filter).
    links_seen: Option<u64>,
}

impl<P: Protocol, S: Scheduler> Runner<P, S> {
    /// Creates a runner.
    ///
    /// # Panics
    ///
    /// Panics if the number of processes does not match the network size.
    pub fn new(processes: Vec<P>, network: Network<P::Msg>, scheduler: S, seed: u64) -> Self {
        assert_eq!(
            processes.len(),
            network.n(),
            "process count must match network size"
        );
        let n = processes.len();
        Runner {
            processes,
            network,
            scheduler,
            loss: LossModel::Reliable,
            rng: SimRng::seed_from(seed),
            trace: Trace::new(),
            stats: SimStats::new(),
            step: 0,
            record_trace: true,
            crashed: vec![false; n],
            send_buf: Vec::new(),
            event_buf: Vec::new(),
            view_buf: SystemView::new(n),
            dirty: (0..n).map(ProcessId::new).collect(),
            dirty_flag: vec![true; n],
            links_seen: None,
        }
    }

    /// Marks process `p`'s cached enabled flag stale.
    fn mark_dirty(&mut self, p: ProcessId) {
        let i = p.index();
        if i < self.dirty_flag.len() && !self.dirty_flag[i] {
            self.dirty_flag[i] = true;
            self.dirty.push(p);
        }
    }

    /// Brings the persistent [`SystemView`] buffer up to date: re-reads
    /// the enabled flag of each dirty process and resyncs the link list if
    /// the network's live-link set changed. The link resync is
    /// *delta-based*: it replays only the network's journal of live-set
    /// transitions since the last seen version, so a step costs
    /// O(dirty + links-changed) instead of O(live links); the full copy
    /// remains as the fallback when the journal does not reach back far
    /// enough (first sync, post-crash, harness churn).
    fn refresh_view(&mut self) {
        let version = self.network.links_version();
        if self.links_seen != Some(version) {
            let delta = self
                .links_seen
                .and_then(|seen| self.network.links_changes_since(seen));
            match delta {
                Some(changes) => {
                    for &(from, to, present) in changes {
                        let alive = present && !self.crashed[to.index()];
                        self.view_buf.set_link(from, to, alive);
                    }
                }
                None => self
                    .view_buf
                    .sync_links(self.network.non_empty_links(), &self.crashed),
            }
            self.links_seen = Some(version);
        }
        while let Some(p) = self.dirty.pop() {
            let i = p.index();
            self.dirty_flag[i] = false;
            let enabled = !self.crashed[i] && self.processes[i].has_enabled_action();
            self.view_buf.set_enabled(i, enabled);
        }
    }

    /// Sets the loss model (default: reliable).
    pub fn set_loss(&mut self, loss: LossModel) -> &mut Self {
        self.loss = loss;
        self
    }

    /// Enables or disables trace recording (benches disable it to measure
    /// raw protocol cost).
    pub fn set_record_trace(&mut self, record: bool) -> &mut Self {
        self.record_trace = record;
        self
    }

    /// Number of processes.
    pub fn n(&self) -> usize {
        self.processes.len()
    }

    /// The current global step number.
    pub fn step_count(&self) -> u64 {
        self.step
    }

    /// Shared access to process `p`.
    pub fn process(&self, p: ProcessId) -> &P {
        &self.processes[p.index()]
    }

    /// Exclusive access to process `p` (request injection, corruption).
    /// Invalidates `p`'s cached enabled flag, since the caller may change
    /// any variable feeding its guards.
    pub fn process_mut(&mut self, p: ProcessId) -> &mut P {
        self.mark_dirty(p);
        &mut self.processes[p.index()]
    }

    /// All processes, in id order.
    pub fn processes(&self) -> &[P] {
        &self.processes
    }

    /// The network.
    pub fn network(&self) -> &Network<P::Msg> {
        &self.network
    }

    /// Exclusive access to the network (pre-loading, inspection).
    pub fn network_mut(&mut self) -> &mut Network<P::Msg> {
        &mut self.network
    }

    /// The recorded trace.
    pub fn trace(&self) -> &Trace<P::Msg, P::Event> {
        &self.trace
    }

    /// Takes the trace out of the runner, leaving an empty one.
    pub fn take_trace(&mut self) -> Trace<P::Msg, P::Event> {
        std::mem::take(&mut self.trace)
    }

    /// Run statistics so far.
    pub fn stats(&self) -> SimStats {
        self.stats
    }

    /// Records a harness marker in the trace at the current step.
    pub fn mark(&mut self, p: ProcessId, label: impl Into<String>) {
        self.trace.push_marker(self.step, p, label);
    }

    /// Permanently crashes process `p` (the paper's conclusion names crash
    /// failures as an open extension; the reproduction uses this to
    /// *demonstrate* why — see `tests/crash_failures.rs`). A crashed
    /// process executes no further actions; messages addressed to it stay
    /// undelivered, and nothing it would have sent appears.
    pub fn crash(&mut self, p: ProcessId) {
        self.crashed[p.index()] = true;
        // The crash disables p and removes every link into it from the
        // scheduler's view.
        self.mark_dirty(p);
        self.links_seen = None;
        if self.record_trace {
            self.trace.push_marker(self.step, p, "crash");
        }
    }

    /// True if process `p` has crashed.
    pub fn is_crashed(&self, p: ProcessId) -> bool {
        self.crashed[p.index()]
    }

    /// The scheduler's view of the current configuration (crashed
    /// processes are never activated nor delivered to). Returns the
    /// runner's persistent incrementally-maintained buffer after bringing
    /// it up to date — no allocation, O(changed-state) work.
    pub fn view(&mut self) -> &SystemView {
        self.refresh_view();
        &self.view_buf
    }

    /// True if no internal action is enabled (at a live process) and no
    /// message is in flight.
    pub fn is_quiescent(&self) -> bool {
        self.network.is_quiescent()
            && self
                .processes
                .iter()
                .enumerate()
                .all(|(i, p)| self.crashed[i] || !p.has_enabled_action())
    }

    /// Corrupts the variables of every process and records it in the trace
    /// (transient fault burst). Channel corruption is done separately via
    /// [`crate::CorruptionPlan`], which knows the message type's domain.
    pub fn corrupt_all_processes(&mut self, rng: &mut SimRng) {
        for (i, proc) in self.processes.iter_mut().enumerate() {
            proc.corrupt(rng);
            if self.record_trace {
                self.trace.push(
                    self.step,
                    TraceEvent::Corrupted {
                        p: ProcessId::new(i),
                    },
                );
            }
        }
        for i in 0..self.processes.len() {
            self.mark_dirty(ProcessId::new(i));
        }
    }

    fn commit_context_effects(&mut self, me: ProcessId) {
        // Apply buffered sends: loss model first (in-transit loss), then the
        // §4 drop-on-full rule inside the channel.
        for (to, msg) in self.send_buf.drain(..) {
            self.stats.sends_attempted += 1;
            let seq = self.network.next_send_seq(me, to);
            let fate = if self.loss.loses(me, to, seq, &mut self.rng) {
                self.network.record_lost_send(me, to);
                self.stats.lost_in_transit += 1;
                SendFate::LostInTransit
            } else {
                match self.network.send(me, to, msg.clone()) {
                    (SendOutcome::Enqueued, _) => {
                        self.stats.sends_enqueued += 1;
                        SendFate::Enqueued
                    }
                    (SendOutcome::LostFull, _) => {
                        self.stats.lost_full += 1;
                        SendFate::LostFull
                    }
                }
            };
            if self.record_trace {
                self.trace.push(
                    self.step,
                    TraceEvent::Sent {
                        from: me,
                        to,
                        msg,
                        fate,
                    },
                );
            }
        }
        // Record protocol events.
        for event in self.event_buf.drain(..) {
            self.stats.protocol_events += 1;
            if self.record_trace {
                self.trace
                    .push(self.step, TraceEvent::Protocol { p: me, event });
            }
        }
    }

    /// Executes one scheduled atomic step. Returns the move taken, or
    /// `None` if the scheduler declined (quiescent or script exhausted).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::EmptyChannel`] if a strict scripted scheduler
    /// demanded an impossible delivery.
    pub fn step(&mut self) -> Result<Option<Move>, SimError> {
        self.refresh_view();
        let Some(mv) = self.scheduler.pick(&self.view_buf, &mut self.rng) else {
            return Ok(None);
        };
        self.execute_move(mv)?;
        Ok(Some(mv))
    }

    /// Executes a specific move immediately, bypassing the scheduler. Used
    /// by replay harnesses (Theorem 1) that control the interleaving.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::EmptyChannel`] for a delivery from an empty
    /// channel.
    pub fn execute_move(&mut self, mv: Move) -> Result<(), SimError> {
        self.step += 1;
        self.stats.steps += 1;
        let n = self.processes.len();
        match mv {
            Move::Activate(p) => {
                if p.index() >= n {
                    return Err(SimError::UnknownProcess { id: p, n });
                }
                self.stats.activations += 1;
                let acted = {
                    let mut ctx = Context::new(
                        p,
                        n,
                        self.step,
                        &mut self.rng,
                        &mut self.send_buf,
                        &mut self.event_buf,
                    );
                    self.processes[p.index()].activate(&mut ctx)
                };
                if acted {
                    self.stats.effective_activations += 1;
                }
                if self.record_trace {
                    self.trace
                        .push(self.step, TraceEvent::Activated { p, acted });
                }
                self.commit_context_effects(p);
                self.mark_dirty(p);
            }
            Move::Deliver { from, to } => {
                let msg = self.network.deliver(from, to)?;
                self.stats.deliveries += 1;
                if self.record_trace {
                    self.trace.push(
                        self.step,
                        TraceEvent::Delivered {
                            from,
                            to,
                            msg: msg.clone(),
                        },
                    );
                }
                {
                    let mut ctx = Context::new(
                        to,
                        n,
                        self.step,
                        &mut self.rng,
                        &mut self.send_buf,
                        &mut self.event_buf,
                    );
                    self.processes[to.index()].on_receive(from, msg, &mut ctx);
                }
                self.commit_context_effects(to);
                self.mark_dirty(to);
            }
        }
        Ok(())
    }

    /// Runs up to `max_steps` steps.
    ///
    /// # Errors
    ///
    /// Propagates step errors (strict scripted replays only).
    pub fn run_steps(&mut self, max_steps: u64) -> Result<RunOutcome, SimError> {
        self.run_until(max_steps, |_| false)
    }

    /// Runs until the system is quiescent.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::StepBudgetExhausted`] if quiescence is not
    /// reached within `max_steps` (e.g. a perpetual protocol), and
    /// propagates step errors.
    pub fn run_until_quiescent(&mut self, max_steps: u64) -> Result<RunOutcome, SimError> {
        let out = self.run_steps(max_steps)?;
        match out.stopped {
            StopCondition::Quiescent | StopCondition::SchedulerDone if self.is_quiescent() => {
                Ok(RunOutcome {
                    steps: out.steps,
                    stopped: StopCondition::Quiescent,
                })
            }
            StopCondition::StepsExhausted => {
                Err(SimError::StepBudgetExhausted { budget: max_steps })
            }
            _ => Ok(out),
        }
    }

    /// Runs until `pred` holds (checked after every step), the scheduler
    /// declines, or `max_steps` is reached.
    ///
    /// # Errors
    ///
    /// Propagates step errors.
    pub fn run_until(
        &mut self,
        max_steps: u64,
        mut pred: impl FnMut(&Self) -> bool,
    ) -> Result<RunOutcome, SimError> {
        let mut steps = 0;
        while steps < max_steps {
            match self.step()? {
                None => {
                    let stopped = if self.is_quiescent() {
                        StopCondition::Quiescent
                    } else {
                        StopCondition::SchedulerDone
                    };
                    return Ok(RunOutcome { steps, stopped });
                }
                Some(_) => {
                    steps += 1;
                    if pred(self) {
                        return Ok(RunOutcome {
                            steps,
                            stopped: StopCondition::Predicate,
                        });
                    }
                }
            }
        }
        Ok(RunOutcome {
            steps,
            stopped: StopCondition::StepsExhausted,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::Capacity;
    use crate::network::NetworkBuilder;
    use crate::process::test_support::{PingEvent, PingMsg, PingProcess};
    use crate::scheduler::{RandomScheduler, RoundRobin, ScriptedScheduler};

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    fn ping_system(n: usize, budget: u32, cap: Capacity) -> Runner<PingProcess, RoundRobin> {
        let processes = (0..n).map(|i| PingProcess::new(p(i), n, budget)).collect();
        let network = NetworkBuilder::new(n).capacity(cap).build();
        Runner::new(processes, network, RoundRobin::new(), 7)
    }

    #[test]
    fn ping_round_trip_reaches_quiescence() {
        let mut r = ping_system(2, 1, Capacity::Bounded(1));
        let out = r.run_until_quiescent(100).unwrap();
        assert!(out.is_quiescent());
        assert_eq!(r.process(p(0)).received, vec![1]);
        assert_eq!(r.process(p(1)).received, vec![1]);
        let stats = r.stats();
        assert_eq!(stats.sends_attempted, 2);
        assert_eq!(stats.deliveries, 2);
        assert_eq!(stats.protocol_events, 2);
    }

    #[test]
    fn trace_records_all_step_kinds() {
        let mut r = ping_system(2, 1, Capacity::Bounded(1));
        r.run_until_quiescent(100).unwrap();
        let t = r.trace();
        assert!(t.count(|e| matches!(e, TraceEvent::Activated { .. })) >= 2);
        assert_eq!(t.count(|e| matches!(e, TraceEvent::Sent { .. })), 2);
        assert_eq!(t.count(|e| matches!(e, TraceEvent::Delivered { .. })), 2);
        assert_eq!(
            t.count(|e| matches!(
                e,
                TraceEvent::Protocol {
                    event: PingEvent::Got(_),
                    ..
                }
            )),
            2
        );
    }

    #[test]
    fn drop_on_full_is_counted() {
        let mut r = ping_system(2, 3, Capacity::Bounded(1));
        // Activate P0 three times without delivering: two sends hit a full channel.
        for _ in 0..3 {
            r.execute_move(Move::Activate(p(0))).unwrap();
        }
        assert_eq!(r.stats().lost_full, 2);
        assert_eq!(r.network().messages_in_flight(), 1);
    }

    #[test]
    fn loss_model_drops_in_transit() {
        let mut r = ping_system(2, 4, Capacity::Unbounded);
        r.set_loss(LossModel::first_k(2));
        for _ in 0..4 {
            r.execute_move(Move::Activate(p(0))).unwrap();
        }
        assert_eq!(r.stats().lost_in_transit, 2);
        assert_eq!(r.network().channel(p(0), p(1)).unwrap().len(), 2);
    }

    #[test]
    fn run_until_predicate_stops_early() {
        let mut r = ping_system(2, 5, Capacity::Unbounded);
        let out = r
            .run_until(1000, |r| !r.process(p(1)).received.is_empty())
            .unwrap();
        assert_eq!(out.stopped, StopCondition::Predicate);
        assert_eq!(r.process(p(1)).received.len(), 1);
    }

    #[test]
    fn run_until_quiescent_budget_error() {
        // Unbounded budget of pings would not finish in 3 steps.
        let mut r = ping_system(2, 50, Capacity::Unbounded);
        let err = r.run_until_quiescent(3).unwrap_err();
        assert_eq!(err, SimError::StepBudgetExhausted { budget: 3 });
    }

    #[test]
    fn scripted_strict_error_on_empty_delivery() {
        let processes = vec![PingProcess::new(p(0), 2, 0), PingProcess::new(p(1), 2, 0)];
        let network = NetworkBuilder::new(2)
            .capacity(Capacity::Bounded(1))
            .build();
        let sched = ScriptedScheduler::new(vec![Move::Deliver {
            from: p(0),
            to: p(1),
        }])
        .strict();
        let mut r = Runner::new(processes, network, sched, 0);
        assert!(matches!(r.step(), Err(SimError::EmptyChannel { .. })));
    }

    #[test]
    fn random_scheduler_also_reaches_quiescence() {
        let processes = (0..3).map(|i| PingProcess::new(p(i), 3, 2)).collect();
        let network = NetworkBuilder::new(3)
            .capacity(Capacity::Bounded(1))
            .build();
        let mut r = Runner::new(processes, network, RandomScheduler::new(), 11);
        let out = r.run_until_quiescent(10_000).unwrap();
        assert!(out.is_quiescent());
    }

    #[test]
    fn determinism_same_seed_same_trace() {
        let run = |seed| {
            let processes = (0..3).map(|i| PingProcess::new(p(i), 3, 2)).collect();
            let network = NetworkBuilder::new(3)
                .capacity(Capacity::Bounded(1))
                .build();
            let mut r = Runner::new(processes, network, RandomScheduler::new(), seed);
            r.set_loss(LossModel::probabilistic(0.2));
            r.run_steps(200).unwrap();
            format!("{:?}", r.trace().entries())
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
    }

    #[test]
    fn corrupt_all_records_trace_events() {
        let mut r = ping_system(2, 1, Capacity::Bounded(1));
        let mut rng = SimRng::seed_from(3);
        r.corrupt_all_processes(&mut rng);
        assert_eq!(
            r.trace()
                .count(|e| matches!(e, TraceEvent::Corrupted { .. })),
            2
        );
    }

    #[test]
    fn mark_adds_marker() {
        let mut r = ping_system(2, 0, Capacity::Bounded(1));
        r.mark(p(1), "request");
        assert_eq!(r.trace().markers().count(), 1);
    }

    #[test]
    fn take_trace_leaves_empty() {
        let mut r = ping_system(2, 1, Capacity::Bounded(1));
        r.run_until_quiescent(100).unwrap();
        let t = r.take_trace();
        assert!(!t.is_empty());
        assert!(r.trace().is_empty());
    }

    #[test]
    fn disabled_trace_recording() {
        let mut r = ping_system(2, 1, Capacity::Bounded(1));
        r.set_record_trace(false);
        r.run_until_quiescent(100).unwrap();
        assert!(r.trace().is_empty());
        assert!(r.stats().deliveries > 0, "stats still collected");
    }

    #[test]
    fn harness_channel_edits_are_visible_to_the_scheduler() {
        // Budget 0: no process ever has an enabled action or sends.
        let mut r = ping_system(2, 0, Capacity::Bounded(1));
        assert!(r.is_quiescent());
        assert_eq!(r.step().unwrap(), None);
        // Preload a message behind the runner's back (fault injection):
        // the cached view must pick it up via the network link version.
        r.network_mut()
            .channel_mut(p(0), p(1))
            .unwrap()
            .preload([PingMsg::Ping(9)]);
        assert!(!r.is_quiescent());
        assert_eq!(
            r.step().unwrap(),
            Some(Move::Deliver {
                from: p(0),
                to: p(1)
            })
        );
        assert!(r.is_quiescent());
    }

    #[test]
    fn crash_hides_activations_and_deliveries() {
        let mut r = ping_system(2, 0, Capacity::Bounded(1));
        r.network_mut()
            .channel_mut(p(0), p(1))
            .unwrap()
            .preload([PingMsg::Ping(1)]);
        r.crash(p(1));
        // The only potential move was a delivery to the crashed process.
        assert_eq!(r.step().unwrap(), None);
        assert!(r.view().is_quiescent());
        assert!(r.is_crashed(p(1)));
    }

    #[test]
    fn cached_view_tracks_request_injection() {
        let mut r = ping_system(2, 1, Capacity::Bounded(1));
        // Prime the cache while nothing has happened yet.
        let quiescent_before = r.view().activation_count();
        assert_eq!(quiescent_before, 2, "both pingers start enabled");
        r.run_until_quiescent(100).unwrap();
        assert_eq!(r.view().activation_count(), 0);
        assert!(r.view().is_quiescent());
    }

    #[test]
    fn ping_msg_variants_used() {
        // Silence "unused" pedantry and check the message shape.
        assert_eq!(PingMsg::Ping(3), PingMsg::Ping(3));
    }
}
