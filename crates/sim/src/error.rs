//! Error type for simulator operations.

use std::error::Error;
use std::fmt;

use crate::id::ProcessId;

/// Errors reported by simulator operations.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum SimError {
    /// A process id referenced a process outside `0..n`.
    UnknownProcess {
        /// The offending id.
        id: ProcessId,
        /// Number of processes in the system.
        n: usize,
    },
    /// An operation referenced the (nonexistent) channel from a process to
    /// itself.
    SelfChannel {
        /// The process involved.
        id: ProcessId,
    },
    /// A scripted scheduler or replay demanded a delivery from an empty
    /// channel.
    EmptyChannel {
        /// Sender of the requested delivery.
        from: ProcessId,
        /// Receiver of the requested delivery.
        to: ProcessId,
    },
    /// An initial-configuration construction does not fit in the channel
    /// capacity bound (the Theorem 1 dichotomy).
    CapacityExceeded {
        /// Sender side of the infeasible channel.
        from: ProcessId,
        /// Receiver side of the infeasible channel.
        to: ProcessId,
        /// Messages the construction requires in flight.
        required: usize,
        /// The channel capacity bound.
        bound: usize,
    },
    /// A run exhausted its step budget before meeting its stop condition.
    StepBudgetExhausted {
        /// The budget that was exhausted.
        budget: u64,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::UnknownProcess { id, n } => {
                write!(f, "unknown process {id} in a system of {n} processes")
            }
            SimError::SelfChannel { id } => {
                write!(f, "process {id} has no channel to itself")
            }
            SimError::EmptyChannel { from, to } => {
                write!(f, "channel {from} -> {to} is empty; cannot deliver")
            }
            SimError::CapacityExceeded {
                from,
                to,
                required,
                bound,
            } => write!(
                f,
                "configuration requires {required} in-flight messages on {from} -> {to} \
                 but the capacity bound is {bound}"
            ),
            SimError::StepBudgetExhausted { budget } => {
                write!(f, "step budget of {budget} exhausted before stop condition")
            }
        }
    }
}

impl Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = SimError::UnknownProcess {
            id: ProcessId::new(9),
            n: 3,
        };
        assert_eq!(
            e.to_string(),
            "unknown process P9 in a system of 3 processes"
        );

        let e = SimError::EmptyChannel {
            from: ProcessId::new(0),
            to: ProcessId::new(1),
        };
        assert!(e.to_string().contains("P0 -> P1"));

        let e = SimError::CapacityExceeded {
            from: ProcessId::new(1),
            to: ProcessId::new(2),
            required: 14,
            bound: 1,
        };
        assert!(e.to_string().contains("14"));
        assert!(e.to_string().contains("bound is 1"));

        let e = SimError::StepBudgetExhausted { budget: 100 };
        assert!(e.to_string().contains("100"));

        let e = SimError::SelfChannel {
            id: ProcessId::new(4),
        };
        assert!(e.to_string().contains("P4"));
    }

    #[test]
    fn implements_error_trait() {
        fn takes_error<E: Error>(_: E) {}
        takes_error(SimError::StepBudgetExhausted { budget: 1 });
    }
}
