//! Process identifiers and neighbor iteration for fully-connected networks.
//!
//! The paper assumes every process locally numbers its `n - 1` incident
//! channels from `1` to `n - 1` and "indifferently uses the notation `q` to
//! designate the process `q` or the local channel number of `q`". We follow
//! the same convention with global, zero-based [`ProcessId`]s: a process's
//! neighbors are simply all other identifiers (deviation D3 in DESIGN.md, a
//! pure renaming).

use std::fmt;

/// Identifier of a process in a system of `n` processes (`0..n`).
///
/// In the fully-connected topology of the paper, a `ProcessId` doubles as
/// the channel number used by every other process to address this one.
///
/// ```
/// use snapstab_sim::ProcessId;
/// let p = ProcessId::new(2);
/// assert_eq!(p.index(), 2);
/// assert_eq!(format!("{p}"), "P2");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct ProcessId(usize);

impl ProcessId {
    /// Creates a process identifier from a zero-based index.
    pub const fn new(index: usize) -> Self {
        ProcessId(index)
    }

    /// Returns the zero-based index of this process.
    pub const fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

impl From<usize> for ProcessId {
    fn from(index: usize) -> Self {
        ProcessId(index)
    }
}

impl From<ProcessId> for usize {
    fn from(id: ProcessId) -> Self {
        id.0
    }
}

/// Iterates over the neighbors of `me` in a fully-connected system of `n`
/// processes: every process other than `me`, in increasing id order.
///
/// ```
/// use snapstab_sim::{neighbors, ProcessId};
/// let ns: Vec<_> = neighbors(ProcessId::new(1), 4).collect();
/// assert_eq!(ns, vec![ProcessId::new(0), ProcessId::new(2), ProcessId::new(3)]);
/// ```
pub fn neighbors(me: ProcessId, n: usize) -> impl Iterator<Item = ProcessId> {
    (0..n).filter(move |&i| i != me.index()).map(ProcessId::new)
}

/// A per-neighbor table: one `T` slot for every process in the system,
/// where the owner's own slot is kept (for simplicity of indexing) but is
/// never semantically meaningful.
///
/// This mirrors the paper's arrays `State_p[1..n-1]`, `NeigState_p[1..n-1]`,
/// `F-Mes_p[1..n-1]`, etc., re-indexed by global [`ProcessId`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct PerNeighbor<T> {
    owner: ProcessId,
    slots: Vec<T>,
}

impl<T: Clone> PerNeighbor<T> {
    /// Creates a table for a system of `n` processes owned by `owner`, with
    /// every slot set to `init`.
    ///
    /// # Panics
    ///
    /// Panics if `owner.index() >= n` or `n == 0`.
    pub fn new(owner: ProcessId, n: usize, init: T) -> Self {
        assert!(n > 0, "system must have at least one process");
        assert!(owner.index() < n, "owner {owner} out of range for n={n}");
        PerNeighbor {
            owner,
            slots: vec![init; n],
        }
    }

    /// Creates a table by evaluating `f` at every neighbor (the owner's own
    /// slot is also filled by `f` but never read by neighbor iteration).
    pub fn from_fn(owner: ProcessId, n: usize, mut f: impl FnMut(ProcessId) -> T) -> Self {
        assert!(n > 0, "system must have at least one process");
        assert!(owner.index() < n, "owner {owner} out of range for n={n}");
        PerNeighbor {
            owner,
            slots: (0..n).map(|i| f(ProcessId::new(i))).collect(),
        }
    }
}

impl<T> PerNeighbor<T> {
    /// The process that owns this table.
    pub fn owner(&self) -> ProcessId {
        self.owner
    }

    /// Number of processes in the system (slots including the owner's).
    pub fn n(&self) -> usize {
        self.slots.len()
    }

    /// Shared access to the slot of neighbor `q`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is the owner (a process has no channel to itself) or is
    /// out of range.
    pub fn get(&self, q: ProcessId) -> &T {
        assert_ne!(q, self.owner, "{q} has no channel to itself");
        &self.slots[q.index()]
    }

    /// Exclusive access to the slot of neighbor `q`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is the owner or out of range.
    pub fn get_mut(&mut self, q: ProcessId) -> &mut T {
        assert_ne!(q, self.owner, "{q} has no channel to itself");
        &mut self.slots[q.index()]
    }

    /// Sets the slot of neighbor `q` to `value`.
    pub fn set(&mut self, q: ProcessId, value: T) {
        *self.get_mut(q) = value;
    }

    /// Iterates over `(neighbor, value)` pairs in increasing id order,
    /// skipping the owner's own slot.
    pub fn iter(&self) -> impl Iterator<Item = (ProcessId, &T)> {
        let owner = self.owner;
        self.slots
            .iter()
            .enumerate()
            .filter(move |(i, _)| *i != owner.index())
            .map(|(i, t)| (ProcessId::new(i), t))
    }

    /// Iterates mutably over `(neighbor, value)` pairs, skipping the owner.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (ProcessId, &mut T)> {
        let owner = self.owner;
        self.slots
            .iter_mut()
            .enumerate()
            .filter(move |(i, _)| *i != owner.index())
            .map(|(i, t)| (ProcessId::new(i), t))
    }

    /// True if `pred` holds at every neighbor slot.
    pub fn all(&self, mut pred: impl FnMut(&T) -> bool) -> bool {
        self.iter().all(|(_, t)| pred(t))
    }

    /// True if `pred` holds at some neighbor slot.
    pub fn any(&self, mut pred: impl FnMut(&T) -> bool) -> bool {
        self.iter().any(|(_, t)| pred(t))
    }

    /// Sets every neighbor slot to values produced by `f`.
    pub fn fill_with(&mut self, mut f: impl FnMut(ProcessId) -> T) {
        let owner = self.owner;
        for (i, slot) in self.slots.iter_mut().enumerate() {
            if i != owner.index() {
                *slot = f(ProcessId::new(i));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn process_id_roundtrip() {
        let p = ProcessId::new(7);
        assert_eq!(usize::from(p), 7);
        assert_eq!(ProcessId::from(7usize), p);
        assert_eq!(p.index(), 7);
    }

    #[test]
    fn process_id_display() {
        assert_eq!(ProcessId::new(0).to_string(), "P0");
        assert_eq!(ProcessId::new(12).to_string(), "P12");
    }

    #[test]
    fn process_id_ordering() {
        assert!(ProcessId::new(0) < ProcessId::new(1));
        assert_eq!(ProcessId::new(3), ProcessId::new(3));
    }

    #[test]
    fn neighbors_excludes_self() {
        let ns: Vec<_> = neighbors(ProcessId::new(0), 3).collect();
        assert_eq!(ns, vec![ProcessId::new(1), ProcessId::new(2)]);
        let ns: Vec<_> = neighbors(ProcessId::new(2), 3).collect();
        assert_eq!(ns, vec![ProcessId::new(0), ProcessId::new(1)]);
    }

    #[test]
    fn neighbors_of_singleton_system_is_empty() {
        assert_eq!(neighbors(ProcessId::new(0), 1).count(), 0);
    }

    #[test]
    fn per_neighbor_basics() {
        let mut t = PerNeighbor::new(ProcessId::new(1), 4, 0u8);
        assert_eq!(t.n(), 4);
        assert_eq!(t.owner(), ProcessId::new(1));
        t.set(ProcessId::new(0), 5);
        *t.get_mut(ProcessId::new(3)) += 2;
        assert_eq!(*t.get(ProcessId::new(0)), 5);
        assert_eq!(*t.get(ProcessId::new(2)), 0);
        assert_eq!(*t.get(ProcessId::new(3)), 2);
    }

    #[test]
    fn per_neighbor_iter_skips_owner() {
        let t = PerNeighbor::from_fn(ProcessId::new(2), 4, |q| q.index() * 10);
        let pairs: Vec<_> = t.iter().map(|(q, v)| (q.index(), *v)).collect();
        assert_eq!(pairs, vec![(0, 0), (1, 10), (3, 30)]);
    }

    #[test]
    fn per_neighbor_all_any() {
        let mut t = PerNeighbor::new(ProcessId::new(0), 3, 4u8);
        assert!(t.all(|&v| v == 4));
        assert!(!t.any(|&v| v == 0));
        t.set(ProcessId::new(2), 0);
        assert!(!t.all(|&v| v == 4));
        assert!(t.any(|&v| v == 0));
    }

    #[test]
    fn per_neighbor_fill_with() {
        let mut t = PerNeighbor::new(ProcessId::new(0), 3, 0usize);
        t.fill_with(|q| q.index() + 100);
        assert_eq!(*t.get(ProcessId::new(1)), 101);
        assert_eq!(*t.get(ProcessId::new(2)), 102);
    }

    #[test]
    #[should_panic(expected = "has no channel to itself")]
    fn per_neighbor_rejects_owner_access() {
        let t = PerNeighbor::new(ProcessId::new(1), 3, 0u8);
        let _ = t.get(ProcessId::new(1));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn per_neighbor_rejects_bad_owner() {
        let _ = PerNeighbor::new(ProcessId::new(5), 3, 0u8);
    }
}
