//! Message-loss models for unreliable channels.
//!
//! The paper assumes channels "are FIFO but not necessarily reliable
//! (messages can be lost)" subject to the fairness property: *if an origin
//! process sends infinitely many messages to a destination, then infinitely
//! many messages are eventually received*.
//!
//! [`LossModel::Probabilistic`] with `p < 1` satisfies the fairness property
//! with probability 1. The deterministic models exist for adversarial unit
//! tests (e.g. demonstrating the deadlock of the naive §4.1 protocol when
//! specific messages vanish) and remain fair as long as they pass infinitely
//! many messages.

use crate::id::ProcessId;
use crate::rng::SimRng;

/// Decides whether a given send attempt loses its message in transit.
///
/// Loss is applied *at send time*, after the capacity check: a message that
/// survives the loss model and finds room in the channel is guaranteed to be
/// delivered eventually (the scheduler is fair), mirroring the paper's
/// "any message that is never lost is received in a finite time".
#[derive(Clone, Debug, Default)]
pub enum LossModel {
    /// No message is ever lost.
    #[default]
    Reliable,
    /// Each send is independently lost with probability `p`.
    Probabilistic {
        /// Loss probability in `[0, 1)`. `1.0` would violate fairness and is
        /// rejected by [`LossModel::probabilistic`].
        p: f64,
    },
    /// Loses the first `k` sends on every ordered link, then none. Fair
    /// (only finitely many losses) but adversarial about *which* messages
    /// disappear.
    FirstK {
        /// How many initial sends per link are lost.
        k: u64,
    },
    /// Loses exactly the send attempts whose global send-sequence numbers
    /// (per ordered link) are in the script. Used by deterministic tests.
    Scripted {
        /// `(from, to, send_index)` triples to lose; `send_index` counts the
        /// sends on the `(from, to)` link starting at 0.
        drops: Vec<(ProcessId, ProcessId, u64)>,
    },
    /// Loses *every* message on the blocked directed links — a network
    /// partition (or a restricted topology, the paper's other future-work
    /// axis). Unfair on the blocked links by design; heal by swapping the
    /// model back via [`crate::Runner::set_loss`].
    Partition {
        /// Directed links that drop everything.
        blocked: Vec<(ProcessId, ProcessId)>,
    },
}

impl LossModel {
    /// A reliable model (no loss).
    pub fn reliable() -> Self {
        LossModel::Reliable
    }

    /// A fair-lossy model losing each message independently with
    /// probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1)`: losing *every* message would
    /// violate the paper's fairness assumption.
    pub fn probabilistic(p: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&p),
            "loss probability must be in [0,1) to preserve fairness, got {p}"
        );
        LossModel::Probabilistic { p }
    }

    /// Loses the first `k` messages on every link.
    pub fn first_k(k: u64) -> Self {
        LossModel::FirstK { k }
    }

    /// Loses exactly the scripted `(from, to, send_index)` attempts.
    pub fn scripted(drops: Vec<(ProcessId, ProcessId, u64)>) -> Self {
        LossModel::Scripted { drops }
    }

    /// Blocks the given directed links entirely (a partition). Blocking
    /// both directions of a pair models a cut edge; blocking all links
    /// across a node split models a full partition.
    pub fn partition(blocked: Vec<(ProcessId, ProcessId)>) -> Self {
        LossModel::Partition { blocked }
    }

    /// Convenience: blocks every link between `side_a` and `side_b`, both
    /// directions — a two-sided split.
    pub fn split(side_a: &[ProcessId], side_b: &[ProcessId]) -> Self {
        let mut blocked = Vec::new();
        for &a in side_a {
            for &b in side_b {
                blocked.push((a, b));
                blocked.push((b, a));
            }
        }
        LossModel::Partition { blocked }
    }

    /// Returns true if the `send_index`-th send on link `from → to` should
    /// be lost in transit.
    pub fn loses(&self, from: ProcessId, to: ProcessId, send_index: u64, rng: &mut SimRng) -> bool {
        match self {
            LossModel::Reliable => false,
            LossModel::Probabilistic { p } => rng.gen_bool(*p),
            LossModel::FirstK { k } => send_index < *k,
            LossModel::Scripted { drops } => drops
                .iter()
                .any(|&(f, t, i)| f == from && t == to && i == send_index),
            LossModel::Partition { blocked } => blocked.iter().any(|&(f, t)| f == from && t == to),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn reliable_never_loses() {
        let m = LossModel::reliable();
        let mut rng = SimRng::seed_from(0);
        for i in 0..100 {
            assert!(!m.loses(p(0), p(1), i, &mut rng));
        }
    }

    #[test]
    fn probabilistic_loses_roughly_p() {
        let m = LossModel::probabilistic(0.3);
        let mut rng = SimRng::seed_from(1);
        let lost = (0..10_000)
            .filter(|&i| m.loses(p(0), p(1), i, &mut rng))
            .count();
        assert!((2_500..3_500).contains(&lost), "lost {lost} of 10000");
    }

    #[test]
    fn probabilistic_zero_never_loses() {
        let m = LossModel::probabilistic(0.0);
        let mut rng = SimRng::seed_from(2);
        assert!((0..1000).all(|i| !m.loses(p(0), p(1), i, &mut rng)));
    }

    #[test]
    #[should_panic(expected = "fairness")]
    fn probabilistic_one_rejected() {
        let _ = LossModel::probabilistic(1.0);
    }

    #[test]
    fn first_k_loses_prefix_only() {
        let m = LossModel::first_k(3);
        let mut rng = SimRng::seed_from(3);
        assert!(m.loses(p(0), p(1), 0, &mut rng));
        assert!(m.loses(p(0), p(1), 2, &mut rng));
        assert!(!m.loses(p(0), p(1), 3, &mut rng));
        assert!(!m.loses(p(0), p(1), 100, &mut rng));
    }

    #[test]
    fn scripted_loses_exact_triples() {
        let m = LossModel::scripted(vec![(p(0), p(1), 5), (p(1), p(0), 0)]);
        let mut rng = SimRng::seed_from(4);
        assert!(m.loses(p(0), p(1), 5, &mut rng));
        assert!(!m.loses(p(0), p(1), 4, &mut rng));
        assert!(m.loses(p(1), p(0), 0, &mut rng));
        assert!(!m.loses(p(2), p(1), 5, &mut rng));
    }

    #[test]
    fn default_is_reliable() {
        assert!(matches!(LossModel::default(), LossModel::Reliable));
    }

    #[test]
    fn partition_blocks_listed_links_only() {
        let m = LossModel::partition(vec![(p(0), p(1))]);
        let mut rng = SimRng::seed_from(5);
        assert!((0..20).all(|i| m.loses(p(0), p(1), i, &mut rng)));
        assert!((0..20).all(|i| !m.loses(p(1), p(0), i, &mut rng)));
        assert!(!m.loses(p(0), p(2), 0, &mut rng));
    }

    #[test]
    fn split_blocks_both_directions_across_sides() {
        let m = LossModel::split(&[p(0), p(1)], &[p(2)]);
        let mut rng = SimRng::seed_from(6);
        for a in [p(0), p(1)] {
            assert!(m.loses(a, p(2), 0, &mut rng));
            assert!(m.loses(p(2), a, 0, &mut rng));
        }
        assert!(!m.loses(p(0), p(1), 0, &mut rng), "intra-side links live");
    }
}
