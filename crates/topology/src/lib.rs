//! # snapstab-topology — snap-stabilizing waves beyond complete graphs
//!
//! The paper proves its protocols for fully-connected networks and names
//! general topologies as an open extension (§5: "it is worth investigating
//! if the results presented in this paper could be extended to more
//! general networks"). This crate is that investigation, executable: a
//! **tree-structured PIF** in the same system model — bounded-capacity
//! lossy FIFO channels, arbitrary initial configurations — built from the
//! paper's own per-edge handshake.
//!
//! * [`link`] — Algorithm 1's five-valued flag discipline distilled to a
//!   single directed edge ([`link::ProbeUnit`] / [`link::ResponderUnit`]),
//!   with *deferred feedback*: the responder withholds its echo of the
//!   broadcast-trigger flag until the upper layer attaches the feedback
//!   value. Lemma 4's causality argument is per-edge and carries over
//!   verbatim (the `snapstab-mc` crate verifies the underlying handshake
//!   exhaustively).
//! * [`node`] — [`node::TreePifNode`]: waves propagate hop-by-hop down
//!   the tree and aggregates flow back up as deferred feedback;
//!   corrupted relay bookkeeping is reconciled on every activation.
//! * [`agg`] — ready-made aggregations: census ([`agg::Count`]), leader
//!   election ([`agg::MinId`]), sums and snapshots ([`agg::Gather`]).
//! * [`spec`] — Specification 1 lifted to trees, as a trace checker.
//!
//! Non-tree graphs run the protocol over a spanning tree
//! ([`snapstab_sim::Topology::bfs_spanning_tree`]); the experiment
//! `exp_topology` measures the latency/message trade against the flat
//! protocol on the complete graph.
//!
//! **Status.** Unlike the three protocols of the paper, the tree
//! composition has no published proof; DESIGN.md (X2) records the safety
//! argument (per-edge Lemma 4 + feedback-reset-before-echo) and the
//! liveness argument (induction over subtree height + reconciliation),
//! and the test suite validates both against arbitrary corruption — in
//! the same way the paper's own protocols are validated here.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod agg;
pub mod link;
pub mod node;
pub mod spec;

pub use agg::{Count, Gather, MinId, SumValue};
pub use link::{ProbeOutcome, ProbeReceipt, ProbeUnit, ResponderUnit};
pub use node::{TreeAggregate, TreeEvent, TreeMsg, TreeNodeState, TreePifNode};
pub use spec::{check_tree_wave, TreeWaveVerdict};
