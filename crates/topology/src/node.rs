//! The tree-structured PIF node: hop-by-hop wave propagation with
//! aggregated feedback over an arbitrary tree topology.
//!
//! ## Protocol
//!
//! A wave started at a root `r` must (1) deliver its payload to every
//! process and (2) return to `r` an aggregate (defined by a
//! [`TreeAggregate`]) over every process's contribution — Specification 1
//! lifted from the complete graph to a tree.
//!
//! Every directed tree edge runs the per-edge handshake of
//! [`crate::link`]: Algorithm 1's flag discipline, so the per-edge
//! causality of Lemma 4 holds verbatim. The composition:
//!
//! * the root force-starts a probe wave to each neighbor;
//! * when a node's responder fires `receive-brd` for a probe from `w`
//!   (necessarily genuine once the probe's wave was started, by Lemma 4),
//!   it resets its **relay context** for parent `w`: stores the payload,
//!   computes its own contribution, and force-starts probe waves to its
//!   remaining neighbors;
//! * a relay attaches its feedback — the aggregate over its subtree —
//!   only when all child waves completed; until then the responder
//!   *withholds* the broadcast-trigger echo and the parent retransmits;
//! * the root decides when all neighbor waves completed.
//!
//! ## Why this stays snap-stabilizing (informal; DESIGN.md X2)
//!
//! Safety is per-edge Lemma 4 plus one observation: the `receive-brd` that
//! resets the relay context fires *before* any broadcast-trigger echo can
//! flow on that edge (Lemma 4 guarantees `NeigState ≠ trigger` when the
//! started wave's flag reaches the trigger), so corrupted contexts and
//! corrupted attached feedback can never reach a started wave's
//! completion. Liveness: leaves attach feedback immediately, so by
//! induction on subtree height every probe wave terminates; corrupted
//! relay bookkeeping is **reconciled** on every activation (a relay
//! waiting on a child re-queues the child's wave if it is missing), so
//! even never-started computations terminate.
//!
//! The flat protocol needs `Θ(n)` messages per wave on the complete
//! graph; the tree wave needs `Θ(n)` messages on `n − 1` edges but pays
//! latency proportional to the tree depth — `exp_topology` measures the
//! trade.

use snapstab_core::flag::{Flag, FlagDomain};
use snapstab_core::request::RequestState;
use snapstab_sim::{ArbitraryState, Context, ProcessId, Protocol, SimRng, Topology};

use crate::link::{ProbeOutcome, ProbeUnit, ResponderUnit};

/// The aggregation an application runs over the tree.
pub trait TreeAggregate<B, V> {
    /// This process's own contribution to a wave carrying `payload`.
    fn local(&mut self, me: ProcessId, payload: &B) -> V;
    /// Combines an accumulator with one child subtree's aggregate.
    fn combine(&mut self, acc: V, child: V) -> V;
}

/// Messages of the tree protocol: each directed edge carries probes of its
/// own handshake and replies to the opposite handshake.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum TreeMsg<B, V> {
    /// A probe of the sender's link wave toward the receiver.
    Probe {
        /// The wave payload.
        payload: B,
        /// The sender's handshake flag.
        sender_state: Flag,
    },
    /// A reply to the receiver's link wave.
    Reply {
        /// The echoed flag.
        echoed: Flag,
        /// The attached feedback (`None` while only pre-trigger echoes
        /// flow).
        feedback: Option<V>,
    },
}

impl<B: ArbitraryState, V: ArbitraryState> ArbitraryState for TreeMsg<B, V> {
    fn arbitrary(rng: &mut SimRng) -> Self {
        if rng.gen_range(0..2) == 0 {
            TreeMsg::Probe {
                payload: B::arbitrary(rng),
                sender_state: Flag::arbitrary(rng),
            }
        } else {
            TreeMsg::Reply {
                echoed: Flag::arbitrary(rng),
                feedback: if rng.gen_range(0..2) == 0 {
                    None
                } else {
                    Some(V::arbitrary(rng))
                },
            }
        }
    }
}

/// Protocol events, consumed by the tree-wave specification checker.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum TreeEvent<B, V> {
    /// The root's starting action ran (`Request`: `Wait → In`).
    RootStarted,
    /// The root decided; `result` is the tree-wide aggregate.
    RootDecided {
        /// The aggregate over every process.
        result: V,
    },
    /// `receive-brd` fired: a wave from neighbor `from` delivered
    /// `payload` to this process.
    WaveReceived {
        /// The parent edge of the wave.
        from: ProcessId,
        /// The delivered payload.
        payload: B,
    },
    /// This process's subtree aggregate for parent `from` became ready.
    SubtreeReady {
        /// The parent edge.
        parent: ProcessId,
        /// The subtree aggregate.
        value: V,
    },
}

/// Who a link's current probe wave belongs to.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum LinkUser {
    /// The root wave of this process.
    Root,
    /// A relay of the wave received from this parent neighbor.
    Relay(ProcessId),
}

/// A relay context: the in-progress re-broadcast of a wave received from
/// one parent neighbor.
#[derive(Clone, PartialEq, Eq, Debug)]
struct RelayCtx<B, V> {
    payload: B,
    waiting: Vec<ProcessId>,
    acc: V,
}

/// The state projection of a tree node (every variable).
#[derive(Clone, PartialEq, Debug)]
pub struct TreeNodeState<B, V> {
    /// Root request variable.
    pub request: RequestState,
    /// Root wave payload.
    pub root_payload: B,
    /// Neighbors whose root-wave links are still incomplete.
    pub root_waiting: Vec<ProcessId>,
    /// Root accumulator.
    pub root_acc: Option<V>,
    /// Per-neighbor probe variables `(request, flag, payload)`.
    pub probes: Vec<(RequestState, Flag, B)>,
    /// Per-neighbor responder variables `(neig_state, feedback)`.
    pub resps: Vec<(Flag, Option<V>)>,
    /// Per-link current wave owner (`None` = idle); encoded as
    /// `Option<Option<ProcessId>>`: `Some(None)` = root, `Some(Some(w))` =
    /// relay of parent `w`.
    pub users: Vec<Option<Option<ProcessId>>>,
    /// Per-link queued wave owners.
    pub queues: Vec<Vec<Option<ProcessId>>>,
    /// Per-parent relay contexts `(payload, waiting, acc)`.
    pub relays: Vec<Option<(B, Vec<ProcessId>, V)>>,
}

/// A process of the tree PIF protocol.
#[derive(Clone, Debug)]
pub struct TreePifNode<B, V, A> {
    me: ProcessId,
    neighbors: Vec<ProcessId>,
    domain: FlagDomain,
    app: A,
    request: RequestState,
    root_payload: B,
    root_waiting: Vec<ProcessId>,
    root_acc: Option<V>,
    probes: Vec<ProbeUnit<B>>,
    resps: Vec<ResponderUnit<V>>,
    users: Vec<Option<LinkUser>>,
    queues: Vec<Vec<LinkUser>>,
    relays: Vec<Option<RelayCtx<B, V>>>,
}

impl<B, V, A> TreePifNode<B, V, A>
where
    B: Clone + std::fmt::Debug + PartialEq + 'static,
    V: Clone + std::fmt::Debug + PartialEq + 'static,
    A: TreeAggregate<B, V>,
{
    /// Creates a node for process `me` of `topology` (its constant
    /// neighbor set is read off the graph), with flag domain sized for
    /// single-message channels.
    ///
    /// # Panics
    ///
    /// Panics if `me` has no neighbors in `topology`.
    pub fn new(me: ProcessId, topology: &Topology, idle_payload: B, app: A) -> Self {
        Self::with_domain(me, topology, idle_payload, app, FlagDomain::PAPER)
    }

    /// Creates a node with an explicit flag domain (bounded-capacity
    /// deployments use [`FlagDomain::for_capacity`]).
    ///
    /// # Panics
    ///
    /// Panics if `me` has no neighbors in `topology`.
    pub fn with_domain(
        me: ProcessId,
        topology: &Topology,
        idle_payload: B,
        app: A,
        domain: FlagDomain,
    ) -> Self {
        let neighbors = topology.neighbors(me);
        assert!(
            !neighbors.is_empty(),
            "process {me:?} is isolated in the topology"
        );
        let deg = neighbors.len();
        TreePifNode {
            me,
            neighbors,
            domain,
            app,
            request: RequestState::Done,
            root_payload: idle_payload.clone(),
            root_waiting: Vec::new(),
            root_acc: None,
            probes: (0..deg)
                .map(|_| ProbeUnit::new(domain, idle_payload.clone()))
                .collect(),
            resps: (0..deg).map(|_| ResponderUnit::new(domain)).collect(),
            users: vec![None; deg],
            queues: vec![Vec::new(); deg],
            relays: vec![None; deg],
        }
    }

    /// This process's id.
    pub fn me(&self) -> ProcessId {
        self.me
    }

    /// The (constant) neighbor set.
    pub fn neighbors(&self) -> &[ProcessId] {
        &self.neighbors
    }

    /// Current root request state.
    pub fn request(&self) -> RequestState {
        self.request
    }

    /// The root result (meaningful right after a decision).
    pub fn result(&self) -> Option<&V> {
        self.root_acc.as_ref()
    }

    /// The application.
    pub fn app(&self) -> &A {
        &self.app
    }

    /// Externally requests a root wave of `payload`; refused while a wave
    /// is pending or running.
    pub fn request_wave(&mut self, payload: B) -> bool {
        if self.request.accepts_request() {
            self.root_payload = payload;
            self.request = RequestState::Wait;
            true
        } else {
            false
        }
    }

    fn pos(&self, w: ProcessId) -> Option<usize> {
        self.neighbors.iter().position(|&q| q == w)
    }

    /// True if `user`'s wave on link `i` is still wanted.
    fn user_is_live(&self, i: usize, user: LinkUser) -> bool {
        let child = self.neighbors[i];
        match user {
            LinkUser::Root => {
                self.request == RequestState::In && self.root_waiting.contains(&child)
            }
            LinkUser::Relay(par) => self
                .pos(par)
                .and_then(|pi| self.relays[pi].as_ref())
                .is_some_and(|ctx| ctx.waiting.contains(&child)),
        }
    }

    fn user_payload(&self, user: LinkUser) -> Option<B> {
        match user {
            LinkUser::Root => Some(self.root_payload.clone()),
            LinkUser::Relay(par) => self
                .pos(par)
                .and_then(|pi| self.relays[pi].as_ref())
                .map(|ctx| ctx.payload.clone()),
        }
    }

    /// Ensures `user`'s wave toward neighbor index `i` is running or
    /// queued (the self-healing reconciliation step).
    fn ensure_user(&mut self, i: usize, user: LinkUser) {
        if self.users[i] == Some(user) || self.queues[i].contains(&user) {
            return;
        }
        self.queues[i].push(user);
    }

    /// Starts the next queued live wave on an idle link, repairing the
    /// corruption-only wedge (`In` with a complete flag) first.
    fn dispatch(&mut self, i: usize) {
        if self.probes[i].is_wedged() {
            // A transient fault froze this link wave. Restart it if its
            // owner still wants it; abandon it otherwise.
            match self.users[i] {
                Some(user) if self.user_is_live(i, user) => {
                    if let Some(payload) = self.user_payload(user) {
                        self.probes[i].force_start(payload);
                    } else {
                        self.probes[i].abort();
                        self.users[i] = None;
                    }
                }
                _ => {
                    self.probes[i].abort();
                    self.users[i] = None;
                }
            }
        }
        if self.users[i].is_some() && self.probes[i].is_busy() {
            return;
        }
        // A completed or ownerless probe frees the link.
        if !self.probes[i].is_busy() {
            self.users[i] = None;
        }
        while self.users[i].is_none() {
            let Some(user) = (!self.queues[i].is_empty()).then(|| self.queues[i].remove(0)) else {
                return;
            };
            if !self.user_is_live(i, user) {
                continue; // stale queue entry (corruption or superseded wave)
            }
            let Some(payload) = self.user_payload(user) else {
                continue;
            };
            self.probes[i].force_start(payload);
            self.users[i] = Some(user);
        }
    }

    /// A probe wave on link `i` completed with feedback `v`: credit the
    /// owner.
    // The suggested match-guard collapse would change which arm handles a
    // completed probe whose root conditions fail (fall-through vs no-op),
    // so the nested `if` stays.
    #[allow(clippy::collapsible_match)]
    fn credit(&mut self, i: usize, v: V, ctx: &mut Context<'_, TreeMsg<B, V>, TreeEvent<B, V>>) {
        let child = self.neighbors[i];
        match self.users[i].take() {
            Some(LinkUser::Root) => {
                if self.request == RequestState::In && self.root_waiting.contains(&child) {
                    self.root_waiting.retain(|&q| q != child);
                    let acc = self.root_acc.take();
                    self.root_acc = Some(match acc {
                        Some(a) => self.app.combine(a, v),
                        None => v, // corrupted accumulator: keep going
                    });
                }
            }
            Some(LinkUser::Relay(par)) => {
                if let Some(pi) = self.pos(par) {
                    let ready = if let Some(relay) = self.relays[pi].as_mut() {
                        if relay.waiting.contains(&child) {
                            relay.waiting.retain(|&q| q != child);
                            let acc = relay.acc.clone();
                            relay.acc = self.app.combine(acc, v);
                        }
                        relay.waiting.is_empty()
                    } else {
                        false
                    };
                    if ready {
                        let relay = self.relays[pi].take().expect("checked above");
                        self.resps[pi].set_feedback(relay.acc.clone());
                        ctx.emit(TreeEvent::SubtreeReady {
                            parent: par,
                            value: relay.acc,
                        });
                    }
                }
            }
            None => {} // ownerless completion (corrupted bookkeeping)
        }
    }
}

impl<B, V, A> Protocol for TreePifNode<B, V, A>
where
    B: Clone + std::fmt::Debug + PartialEq + ArbitraryState + 'static,
    V: Clone + std::fmt::Debug + PartialEq + ArbitraryState + 'static,
    A: TreeAggregate<B, V> + Clone + std::fmt::Debug + 'static,
{
    type Msg = TreeMsg<B, V>;
    type Event = TreeEvent<B, V>;
    type State = TreeNodeState<B, V>;

    fn activate(&mut self, ctx: &mut Context<'_, Self::Msg, Self::Event>) -> bool {
        let mut acted = false;

        // A1: the root starting action.
        if self.request == RequestState::Wait {
            self.request = RequestState::In;
            self.root_waiting = self.neighbors.clone();
            self.root_acc = Some(self.app.local(self.me, &self.root_payload.clone()));
            // Supersede any stale Root-owned probe left over from an
            // earlier (possibly never-started) computation: the fresh
            // wave must carry the fresh payload, not be adopted onto a
            // leftover handshake.
            let payload = self.root_payload.clone();
            for i in 0..self.probes.len() {
                if self.users[i] == Some(LinkUser::Root) {
                    self.probes[i].force_start(payload.clone());
                }
            }
            ctx.emit(TreeEvent::RootStarted);
            acted = true;
        }

        // Reconciliation: every wanted wave is running or queued.
        if self.request == RequestState::In {
            for w in self.root_waiting.clone() {
                if let Some(i) = self.pos(w) {
                    self.ensure_user(i, LinkUser::Root);
                }
            }
        }
        for pi in 0..self.relays.len() {
            if let Some(waiting) = self.relays[pi].as_ref().map(|r| r.waiting.clone()) {
                let par = self.neighbors[pi];
                if waiting.is_empty() {
                    // A context with nothing left to wait for (a corrupted
                    // state — the genuine path finalizes in `credit`):
                    // finalize it now, or the parent's probe would stall
                    // at the trigger flag forever.
                    let relay = self.relays[pi].take().expect("checked above");
                    self.resps[pi].set_feedback(relay.acc.clone());
                    ctx.emit(TreeEvent::SubtreeReady {
                        parent: par,
                        value: relay.acc,
                    });
                    acted = true;
                    continue;
                }
                for c in waiting {
                    if let Some(i) = self.pos(c) {
                        self.ensure_user(i, LinkUser::Relay(par));
                    }
                }
            }
        }

        // Dispatch and retransmit (A2 per link).
        for i in 0..self.probes.len() {
            self.dispatch(i);
            if let Some((payload, s)) = self.probes[i].tick() {
                ctx.send(
                    self.neighbors[i],
                    TreeMsg::Probe {
                        payload,
                        sender_state: s,
                    },
                );
                acted = true;
            }
        }

        // Root decision.
        if self.request == RequestState::In && self.root_waiting.is_empty() {
            self.request = RequestState::Done;
            let result = match self.root_acc.clone() {
                Some(v) => v,
                // A corrupted In-state with no accumulator: decide with
                // the local contribution (no guarantee owed — the wave
                // was never started).
                None => self.app.local(self.me, &self.root_payload.clone()),
            };
            self.root_acc = Some(result.clone());
            ctx.emit(TreeEvent::RootDecided { result });
            acted = true;
        }

        acted
    }

    fn on_receive(
        &mut self,
        from: ProcessId,
        msg: Self::Msg,
        ctx: &mut Context<'_, Self::Msg, Self::Event>,
    ) {
        let Some(i) = self.pos(from) else {
            return; // not a topology neighbor: ignore (junk channel)
        };
        match msg {
            TreeMsg::Probe {
                payload,
                sender_state,
            } => {
                let receipt = self.resps[i].on_probe(sender_state);
                let no_ctx_to_ready = self.relays[i].is_none()
                    && self.resps[i].feedback().is_none()
                    && sender_state == self.domain.broadcast_value();
                if receipt.brd_fired || no_ctx_to_ready {
                    // (Re)start the relay for this parent. `brd_fired` is
                    // the genuine path; `no_ctx_to_ready` repairs corrupted
                    // states where the echo would otherwise be withheld
                    // forever (Termination for never-started waves).
                    if receipt.brd_fired {
                        ctx.emit(TreeEvent::WaveReceived {
                            from,
                            payload: payload.clone(),
                        });
                    }
                    let acc = self.app.local(self.me, &payload);
                    let children: Vec<ProcessId> = self
                        .neighbors
                        .iter()
                        .copied()
                        .filter(|&q| q != from)
                        .collect();
                    if children.is_empty() {
                        self.resps[i].set_feedback(acc.clone());
                        ctx.emit(TreeEvent::SubtreeReady {
                            parent: from,
                            value: acc,
                        });
                        self.relays[i] = None;
                    } else {
                        // Supersede any wave this parent had running.
                        for (ci, &c) in self.neighbors.clone().iter().enumerate() {
                            if c == from {
                                continue;
                            }
                            if self.users[ci] == Some(LinkUser::Relay(from)) {
                                self.probes[ci].force_start(payload.clone());
                            }
                        }
                        self.relays[i] = Some(RelayCtx {
                            payload,
                            waiting: children.clone(),
                            acc,
                        });
                        for c in children {
                            if let Some(ci) = self.pos(c) {
                                self.ensure_user(ci, LinkUser::Relay(from));
                                self.dispatch(ci);
                                if let Some((pl, s)) = self.probes[ci].tick() {
                                    ctx.send(
                                        self.neighbors[ci],
                                        TreeMsg::Probe {
                                            payload: pl,
                                            sender_state: s,
                                        },
                                    );
                                }
                            }
                        }
                    }
                }
                if let Some((echoed, feedback)) = {
                    // Re-read the feedback: a leaf just attached it above.
                    if receipt.reply.is_some() {
                        receipt.reply
                    } else if sender_state == self.domain.broadcast_value()
                        && !sender_state.is_complete(self.domain)
                    {
                        self.resps[i]
                            .feedback()
                            .cloned()
                            .map(|f| (sender_state, Some(f)))
                    } else {
                        None
                    }
                } {
                    ctx.send(from, TreeMsg::Reply { echoed, feedback });
                }
            }
            TreeMsg::Reply { echoed, feedback } => {
                match self.probes[i].on_reply(echoed, feedback) {
                    ProbeOutcome::Completed(v) => {
                        self.credit(i, v, ctx);
                        self.dispatch(i);
                        if let Some((pl, s)) = self.probes[i].tick() {
                            ctx.send(
                                from,
                                TreeMsg::Probe {
                                    payload: pl,
                                    sender_state: s,
                                },
                            );
                        }
                    }
                    ProbeOutcome::Advanced | ProbeOutcome::Ignored => {}
                }
            }
        }
    }

    fn has_enabled_action(&self) -> bool {
        self.request != RequestState::Done
            || self.probes.iter().any(|p| p.is_busy())
            || self.queues.iter().any(|q| !q.is_empty())
    }

    fn corrupt(&mut self, rng: &mut SimRng) {
        let deg = self.neighbors.len();
        let rand_neighbor = |rng: &mut SimRng, nb: &[ProcessId]| nb[rng.gen_range(0..nb.len())];
        let rand_subset = |rng: &mut SimRng, nb: &[ProcessId]| -> Vec<ProcessId> {
            nb.iter()
                .copied()
                .filter(|_| rng.gen_range(0..2) == 0)
                .collect()
        };
        self.request = RequestState::arbitrary(rng);
        self.root_payload = B::arbitrary(rng);
        self.root_waiting = rand_subset(rng, &self.neighbors.clone());
        self.root_acc = if rng.gen_range(0..2) == 0 {
            None
        } else {
            Some(V::arbitrary(rng))
        };
        for i in 0..deg {
            let mut probe = ProbeUnit::new(self.domain, B::arbitrary(rng));
            probe.corrupt_flags(
                RequestState::arbitrary(rng),
                self.domain.arbitrary_flag(rng),
            );
            self.probes[i] = probe;
            let fb = if rng.gen_range(0..2) == 0 {
                None
            } else {
                Some(V::arbitrary(rng))
            };
            self.resps[i].corrupt(self.domain.arbitrary_flag(rng), fb);
            self.users[i] = match rng.gen_range(0..3) {
                0 => None,
                1 => Some(LinkUser::Root),
                _ => Some(LinkUser::Relay(rand_neighbor(rng, &self.neighbors.clone()))),
            };
            self.queues[i] = (0..rng.gen_range(0..3))
                .map(|_| {
                    if rng.gen_range(0..2) == 0 {
                        LinkUser::Root
                    } else {
                        LinkUser::Relay(rand_neighbor(rng, &self.neighbors.clone()))
                    }
                })
                .collect();
            self.relays[i] = if rng.gen_range(0..2) == 0 {
                None
            } else {
                Some(RelayCtx {
                    payload: B::arbitrary(rng),
                    waiting: rand_subset(rng, &self.neighbors.clone()),
                    acc: V::arbitrary(rng),
                })
            };
        }
    }

    fn snapshot(&self) -> Self::State {
        TreeNodeState {
            request: self.request,
            root_payload: self.root_payload.clone(),
            root_waiting: self.root_waiting.clone(),
            root_acc: self.root_acc.clone(),
            probes: self
                .probes
                .iter()
                .map(|p| (p.request(), p.state(), p.payload().clone()))
                .collect(),
            resps: self
                .resps
                .iter()
                .map(|r| (r.neig_state(), r.feedback().cloned()))
                .collect(),
            users: self
                .users
                .iter()
                .map(|u| {
                    u.map(|u| match u {
                        LinkUser::Root => None,
                        LinkUser::Relay(w) => Some(w),
                    })
                })
                .collect(),
            queues: self
                .queues
                .iter()
                .map(|q| {
                    q.iter()
                        .map(|u| match u {
                            LinkUser::Root => None,
                            LinkUser::Relay(w) => Some(*w),
                        })
                        .collect()
                })
                .collect(),
            relays: self
                .relays
                .iter()
                .map(|r| {
                    r.as_ref()
                        .map(|c| (c.payload.clone(), c.waiting.clone(), c.acc.clone()))
                })
                .collect(),
        }
    }

    fn restore(&mut self, state: Self::State) {
        let decode = |u: Option<ProcessId>| match u {
            None => LinkUser::Root,
            Some(w) => LinkUser::Relay(w),
        };
        self.request = state.request;
        self.root_payload = state.root_payload;
        self.root_waiting = state.root_waiting;
        self.root_acc = state.root_acc;
        for (i, (req, flag, payload)) in state.probes.into_iter().enumerate() {
            let mut probe = ProbeUnit::new(self.domain, payload);
            probe.corrupt_flags(req, flag);
            self.probes[i] = probe;
        }
        for (i, (ns, fb)) in state.resps.into_iter().enumerate() {
            self.resps[i].corrupt(ns, fb);
        }
        for (i, u) in state.users.into_iter().enumerate() {
            self.users[i] = u.map(decode);
        }
        for (i, q) in state.queues.into_iter().enumerate() {
            self.queues[i] = q.into_iter().map(decode).collect();
        }
        for (i, r) in state.relays.into_iter().enumerate() {
            self.relays[i] = r.map(|(payload, waiting, acc)| RelayCtx {
                payload,
                waiting,
                acc,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agg::{Count, MinId};
    use snapstab_sim::{Capacity, NetworkBuilder, RandomScheduler, RoundRobin, Runner, Scheduler};

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    type CountNode = TreePifNode<u8, u64, Count>;

    fn count_system<S: Scheduler>(
        topo: &Topology,
        scheduler: S,
        seed: u64,
    ) -> Runner<CountNode, S> {
        let n = topo.n();
        let processes = (0..n)
            .map(|i| TreePifNode::new(p(i), topo, 0u8, Count))
            .collect();
        let network = NetworkBuilder::new(n)
            .capacity(Capacity::Bounded(1))
            .build();
        Runner::new(processes, network, scheduler, seed)
    }

    fn run_wave<S: Scheduler>(runner: &mut Runner<CountNode, S>, root: ProcessId) -> u64 {
        assert!(runner.process_mut(root).request_wave(7));
        runner
            .run_until(2_000_000, |r| {
                r.process(root).request() == RequestState::Done
            })
            .expect("wave decides");
        assert_eq!(runner.process(root).request(), RequestState::Done);
        *runner.process(root).result().expect("result present")
    }

    #[test]
    fn clean_count_wave_on_a_path() {
        let topo = Topology::path(5);
        let mut runner = count_system(&topo, RoundRobin::new(), 1);
        assert_eq!(run_wave(&mut runner, p(0)), 5);
    }

    #[test]
    fn clean_count_wave_from_an_interior_root() {
        let topo = Topology::path(6);
        let mut runner = count_system(&topo, RoundRobin::new(), 2);
        assert_eq!(run_wave(&mut runner, p(3)), 6);
    }

    #[test]
    fn clean_count_wave_on_star_and_binary_tree() {
        for topo in [Topology::star(7), Topology::binary_tree(7)] {
            let mut runner = count_system(&topo, RoundRobin::new(), 3);
            assert_eq!(run_wave(&mut runner, p(0)), 7);
        }
    }

    #[test]
    fn min_id_wave_elects_the_leader() {
        let topo = Topology::binary_tree(6);
        let ids = [40u64, 10, 30, 77, 5, 60];
        let processes: Vec<TreePifNode<u8, u64, MinId>> = (0..6)
            .map(|i| TreePifNode::new(p(i), &topo, 0u8, MinId { my_id: ids[i] }))
            .collect();
        let network = NetworkBuilder::new(6)
            .capacity(Capacity::Bounded(1))
            .build();
        let mut runner = Runner::new(processes, network, RoundRobin::new(), 4);
        assert!(runner.process_mut(p(2)).request_wave(1));
        runner
            .run_until(2_000_000, |r| {
                r.process(p(2)).request() == RequestState::Done
            })
            .expect("wave decides");
        assert_eq!(runner.process(p(2)).result(), Some(&5));
    }

    #[test]
    fn wave_completes_under_loss() {
        let topo = Topology::path(4);
        let mut runner = count_system(&topo, RandomScheduler::new(), 5);
        runner.set_loss(snapstab_sim::LossModel::probabilistic(0.25));
        assert_eq!(run_wave(&mut runner, p(0)), 4);
    }

    #[test]
    fn corrupted_start_still_serves_the_first_request() {
        for seed in 0..6 {
            let topo = Topology::binary_tree(5);
            let mut runner = count_system(&topo, RandomScheduler::new(), seed);
            let mut rng = SimRng::seed_from(seed + 100);
            snapstab_sim::CorruptionPlan::full().apply(&mut runner, &mut rng);
            // Drain corrupted computations first.
            let _ = runner.run_until(500_000, |r| r.process(p(0)).request() != RequestState::Wait);
            if runner.process(p(0)).request() != RequestState::Done {
                runner
                    .run_until(2_000_000, |r| {
                        r.process(p(0)).request() == RequestState::Done
                    })
                    .expect("corrupted wave drains");
            }
            assert_eq!(run_wave(&mut runner, p(0)), 5, "seed {seed}");
        }
    }

    #[test]
    fn concurrent_roots_both_decide_exactly() {
        let topo = Topology::path(5);
        let mut runner = count_system(&topo, RandomScheduler::new(), 9);
        assert!(runner.process_mut(p(0)).request_wave(1));
        assert!(runner.process_mut(p(4)).request_wave(2));
        runner
            .run_until(4_000_000, |r| {
                r.process(p(0)).request() == RequestState::Done
                    && r.process(p(4)).request() == RequestState::Done
            })
            .expect("both waves decide");
        assert_eq!(runner.process(p(0)).result(), Some(&5));
        assert_eq!(runner.process(p(4)).result(), Some(&5));
    }

    #[test]
    fn spanning_tree_runs_on_non_tree_graphs() {
        let ring = Topology::ring(6);
        let tree = ring.bfs_spanning_tree(p(0));
        assert!(tree.is_tree());
        let mut runner = count_system(&tree, RoundRobin::new(), 11);
        assert_eq!(run_wave(&mut runner, p(0)), 6);
    }

    #[test]
    fn snapshot_restore_roundtrip() {
        let topo = Topology::star(4);
        let mut node: CountNode = TreePifNode::new(p(0), &topo, 0u8, Count);
        let mut rng = SimRng::seed_from(42);
        node.corrupt(&mut rng);
        let snap = node.snapshot();
        let mut other: CountNode = TreePifNode::new(p(0), &topo, 0u8, Count);
        other.restore(snap.clone());
        assert_eq!(other.snapshot(), snap);
    }

    #[test]
    fn junk_from_non_neighbors_is_ignored() {
        let topo = Topology::path(3); // 0 - 1 - 2: 0 and 2 not adjacent
        let mut runner = count_system(&topo, RoundRobin::new(), 13);
        runner
            .network_mut()
            .channel_mut(p(2), p(0))
            .unwrap()
            .preload([TreeMsg::Probe {
                payload: 9u8,
                sender_state: Flag::new(3),
            }]);
        assert_eq!(run_wave(&mut runner, p(0)), 3);
    }

    #[test]
    fn request_refused_while_busy() {
        let topo = Topology::path(3);
        let mut runner = count_system(&topo, RoundRobin::new(), 14);
        assert!(runner.process_mut(p(0)).request_wave(1));
        assert!(
            !runner.process_mut(p(0)).request_wave(2),
            "pending wave refuses"
        );
    }

    #[test]
    fn empty_waiting_relay_context_finalizes() {
        // Regression: a corrupted relay context with an empty waiting list
        // must finalize (attach feedback) at the next activation, or a
        // parent's probe stalls at the trigger flag forever (found by the
        // X2 sweep, binary_tree(7), seed 38).
        let topo = Topology::path(3);
        let mut node: CountNode = TreePifNode::new(p(1), &topo, 0u8, Count);
        let mut rng = SimRng::seed_from(0);
        // Hand-craft the corrupted state: relay ctx for parent 0 with
        // nothing to wait for and no feedback attached.
        node.corrupt(&mut rng);
        let mut s = node.snapshot();
        s.request = RequestState::Done;
        s.relays = vec![Some((7u8, vec![], 2u64)), None];
        s.resps = vec![(Flag::new(3), None), (Flag::new(4), None)];
        s.users = vec![None, None];
        s.queues = vec![vec![], vec![]];
        s.probes = vec![
            (RequestState::Done, Flag::new(4), 0),
            (RequestState::Done, Flag::new(4), 0),
        ];
        node.restore(s);

        let mut rng2 = SimRng::seed_from(1);
        let mut sends = Vec::new();
        let mut events = Vec::new();
        let mut ctx = Context::new(p(1), 3, 0, &mut rng2, &mut sends, &mut events);
        node.activate(&mut ctx);
        assert!(
            events
                .iter()
                .any(|e| matches!(e, TreeEvent::SubtreeReady { .. })),
            "the empty context finalized: {events:?}"
        );
        let s = node.snapshot();
        assert_eq!(s.relays[0], None, "context cleared");
        assert_eq!(s.resps[0].1, Some(2), "feedback attached");
    }

    #[test]
    #[should_panic(expected = "isolated")]
    fn isolated_process_rejected() {
        let topo = Topology::from_edges(3, &[(0, 1)]); // 2 is isolated
        let _: CountNode = TreePifNode::new(p(2), &topo, 0, Count);
    }
}
