//! Ready-made aggregations for tree waves: the applications §4.1 names
//! (leader election, snapshot) plus basic census operations, each lifted
//! from the complete graph to arbitrary trees.

use snapstab_sim::ProcessId;

use crate::node::TreeAggregate;

/// Counts the processes the wave reached (a census / termination-size
/// check). The root's result must equal `n`.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct Count;

impl<B> TreeAggregate<B, u64> for Count {
    fn local(&mut self, _me: ProcessId, _payload: &B) -> u64 {
        1
    }
    fn combine(&mut self, acc: u64, child: u64) -> u64 {
        // Saturating: corrupted (never-started) computations may combine
        // arbitrary garbage; they owe no result, only termination.
        acc.saturating_add(child)
    }
}

/// Minimum identity over the tree — leader election (the tree analogue of
/// the paper's IDs-Learning giving `minID`).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct MinId {
    /// This process's constant identity.
    pub my_id: u64,
}

impl<B> TreeAggregate<B, u64> for MinId {
    fn local(&mut self, _me: ProcessId, _payload: &B) -> u64 {
        self.my_id
    }
    fn combine(&mut self, acc: u64, child: u64) -> u64 {
        acc.min(child)
    }
}

/// Sums a per-process value (load aggregation).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SumValue {
    /// This process's contribution.
    pub mine: u64,
}

impl<B> TreeAggregate<B, u64> for SumValue {
    fn local(&mut self, _me: ProcessId, _payload: &B) -> u64 {
        self.mine
    }
    fn combine(&mut self, acc: u64, child: u64) -> u64 {
        acc.saturating_add(child)
    }
}

/// Gathers `(process, value)` pairs — a global snapshot over the tree.
/// The root's result lists every process exactly once (sorted by id for
/// determinism).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Gather {
    /// This process's snapshot value.
    pub mine: u64,
}

impl<B> TreeAggregate<B, Vec<(ProcessId, u64)>> for Gather {
    fn local(&mut self, me: ProcessId, _payload: &B) -> Vec<(ProcessId, u64)> {
        vec![(me, self.mine)]
    }
    fn combine(
        &mut self,
        mut acc: Vec<(ProcessId, u64)>,
        child: Vec<(ProcessId, u64)>,
    ) -> Vec<(ProcessId, u64)> {
        acc.extend(child);
        acc.sort_by_key(|&(p, _)| p);
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn count_counts() {
        let mut c = Count;
        let one = <Count as TreeAggregate<u8, u64>>::local(&mut c, p(0), &0);
        assert_eq!(
            <Count as TreeAggregate<u8, u64>>::combine(&mut c, one, 3),
            4
        );
    }

    #[test]
    fn min_id_elects() {
        let mut m = MinId { my_id: 17 };
        let mine = <MinId as TreeAggregate<u8, u64>>::local(&mut m, p(0), &0);
        assert_eq!(
            <MinId as TreeAggregate<u8, u64>>::combine(&mut m, mine, 5),
            5
        );
        assert_eq!(
            <MinId as TreeAggregate<u8, u64>>::combine(&mut m, mine, 99),
            17
        );
    }

    #[test]
    fn gather_collects_sorted() {
        let mut g = Gather { mine: 7 };
        let a = <Gather as TreeAggregate<u8, _>>::local(&mut g, p(2), &0);
        let b = vec![(p(0), 1), (p(1), 2)];
        let merged = <Gather as TreeAggregate<u8, _>>::combine(&mut g, a, b);
        assert_eq!(merged, vec![(p(0), 1), (p(1), 2), (p(2), 7)]);
    }
}
