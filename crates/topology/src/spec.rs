//! Executable specification of a tree wave: Specification 1 lifted to
//! trees, checked on recorded traces.

use snapstab_sim::{ProcessId, Trace, TraceEvent};

use crate::node::{TreeEvent, TreeMsg};

/// Verdict for one started root wave.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TreeWaveVerdict {
    /// Start: the root's starting action ran after the request.
    pub started: bool,
    /// Termination + Decision: the root decided after starting.
    pub decided: bool,
    /// Correctness (broadcast): every other process received the wave's
    /// payload between the start and the decision.
    pub all_received: bool,
    /// Correctness (feedback): the decided result equals the expected
    /// aggregate.
    pub result_exact: bool,
    /// Processes that never saw the payload (diagnostics).
    pub missing: Vec<ProcessId>,
}

impl TreeWaveVerdict {
    /// True if the wave satisfied the whole specification.
    pub fn holds(&self) -> bool {
        self.started && self.decided && self.all_received && self.result_exact
    }
}

/// Checks the first root wave of `root` requested at `req_step`:
/// `payload` is what was broadcast, `expected` the correct tree-wide
/// aggregate.
pub fn check_tree_wave<B, V>(
    trace: &Trace<TreeMsg<B, V>, TreeEvent<B, V>>,
    root: ProcessId,
    n: usize,
    req_step: u64,
    payload: &B,
    expected: &V,
) -> TreeWaveVerdict
where
    B: Clone + std::fmt::Debug + PartialEq + 'static,
    V: Clone + std::fmt::Debug + PartialEq + 'static,
{
    let mut start_step = None;
    let mut decision_step = None;
    let mut result_exact = false;

    for entry in trace.iter() {
        if entry.step < req_step {
            continue;
        }
        if let TraceEvent::Protocol { p, event } = &entry.event {
            if *p != root {
                continue;
            }
            match event {
                TreeEvent::RootStarted if start_step.is_none() => {
                    start_step = Some(entry.step);
                }
                TreeEvent::RootDecided { result }
                    if start_step.is_some() && decision_step.is_none() =>
                {
                    decision_step = Some(entry.step);
                    result_exact = result == expected;
                }
                _ => {}
            }
        }
    }

    let (started, decided) = (start_step.is_some(), decision_step.is_some());
    let lo = start_step.unwrap_or(u64::MAX);
    let hi = decision_step.unwrap_or(u64::MAX);

    let mut missing = Vec::new();
    if started && decided {
        for i in 0..n {
            let q = ProcessId::new(i);
            if q == root {
                continue;
            }
            let got = trace.iter().any(|entry| {
                entry.step >= lo
                    && entry.step <= hi
                    && matches!(
                        &entry.event,
                        TraceEvent::Protocol { p, event: TreeEvent::WaveReceived { payload: pl, .. } }
                            if *p == q && pl == payload
                    )
            });
            if !got {
                missing.push(q);
            }
        }
    }

    TreeWaveVerdict {
        started,
        decided,
        all_received: started && decided && missing.is_empty(),
        result_exact,
        missing,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type T = Trace<TreeMsg<u8, u64>, TreeEvent<u8, u64>>;

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    fn proto(t: &mut T, step: u64, who: usize, e: TreeEvent<u8, u64>) {
        t.push(
            step,
            TraceEvent::Protocol {
                p: p(who),
                event: e,
            },
        );
    }

    #[test]
    fn perfect_wave_passes() {
        let mut t = T::new();
        proto(&mut t, 1, 0, TreeEvent::RootStarted);
        proto(
            &mut t,
            2,
            1,
            TreeEvent::WaveReceived {
                from: p(0),
                payload: 7,
            },
        );
        proto(
            &mut t,
            3,
            2,
            TreeEvent::WaveReceived {
                from: p(1),
                payload: 7,
            },
        );
        proto(&mut t, 4, 0, TreeEvent::RootDecided { result: 3 });
        let v = check_tree_wave(&t, p(0), 3, 0, &7, &3);
        assert!(v.holds(), "{v:?}");
    }

    #[test]
    fn wrong_result_fails() {
        let mut t = T::new();
        proto(&mut t, 1, 0, TreeEvent::RootStarted);
        proto(
            &mut t,
            2,
            1,
            TreeEvent::WaveReceived {
                from: p(0),
                payload: 7,
            },
        );
        proto(&mut t, 3, 0, TreeEvent::RootDecided { result: 9 });
        let v = check_tree_wave(&t, p(0), 2, 0, &7, &2);
        assert!(!v.result_exact);
        assert!(!v.holds());
    }

    #[test]
    fn missing_receiver_fails() {
        let mut t = T::new();
        proto(&mut t, 1, 0, TreeEvent::RootStarted);
        proto(&mut t, 4, 0, TreeEvent::RootDecided { result: 3 });
        let v = check_tree_wave(&t, p(0), 3, 0, &7, &3);
        assert_eq!(v.missing, vec![p(1), p(2)]);
        assert!(!v.holds());
    }

    #[test]
    fn pre_request_events_do_not_count() {
        let mut t = T::new();
        proto(&mut t, 1, 0, TreeEvent::RootStarted); // stale (before the request)
        proto(&mut t, 2, 0, TreeEvent::RootDecided { result: 3 });
        let v = check_tree_wave(&t, p(0), 2, 5, &7, &3);
        assert!(!v.started);
    }

    #[test]
    fn stale_payload_receipts_do_not_count() {
        let mut t = T::new();
        proto(&mut t, 1, 0, TreeEvent::RootStarted);
        proto(
            &mut t,
            2,
            1,
            TreeEvent::WaveReceived {
                from: p(0),
                payload: 99,
            },
        );
        proto(&mut t, 3, 0, TreeEvent::RootDecided { result: 2 });
        let v = check_tree_wave(&t, p(0), 2, 0, &7, &2);
        assert_eq!(v.missing, vec![p(1)]);
    }
}
