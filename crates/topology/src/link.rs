//! The per-edge handshake: Algorithm 1's five-valued flag discipline
//! distilled to a single directed link, with *deferred feedback*.
//!
//! Each directed link `u → w` runs one [`ProbeUnit`] at `u` (the wave
//! initiator side) against one [`ResponderUnit`] at `w`. The probe carries
//! `u`'s flag; the responder echoes it back; the probe's flag must climb
//! `0 → max` one echo at a time, exactly as in Algorithm 1, so Lemma 4's
//! causality argument applies per edge: the completing echo was sent by
//! `w` *after* `w` received a post-start probe of `u`.
//!
//! The one deliberate deviation from the flat protocol: the responder may
//! **withhold** its echo of the broadcast-trigger value (the paper's `3`)
//! until the upper layer provides the feedback value. The initiator keeps
//! retransmitting (Algorithm 1's A2), so termination is preserved as long
//! as the feedback eventually arrives — the tree layer guarantees that by
//! induction over subtree depth. Echoes of smaller flag values are never
//! withheld (they carry no feedback obligation), keeping the `0 → 3` climb
//! as fast as in the flat protocol.

use snapstab_core::flag::{Flag, FlagDomain};
use snapstab_core::request::RequestState;

/// The initiator side of one directed link wave.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ProbeUnit<B> {
    domain: FlagDomain,
    request: RequestState,
    payload: B,
    state: Flag,
}

/// What [`ProbeUnit::on_reply`] observed.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ProbeOutcome<V> {
    /// The echo did not advance the handshake (stale or duplicate).
    Ignored,
    /// The flag advanced but the wave is not complete.
    Advanced,
    /// The final increment happened: the link wave is complete and this is
    /// the feedback the responder attached (the `receive-fck`).
    Completed(V),
}

impl<B: Clone> ProbeUnit<B> {
    /// A quiescent unit (`Request = Done`).
    pub fn new(domain: FlagDomain, idle_payload: B) -> Self {
        ProbeUnit {
            domain,
            request: RequestState::Done,
            payload: idle_payload,
            state: domain.max(),
        }
    }

    /// The flag domain.
    pub fn domain(&self) -> FlagDomain {
        self.domain
    }

    /// Current request state of this link wave.
    pub fn request(&self) -> RequestState {
        self.request
    }

    /// The current flag.
    pub fn state(&self) -> Flag {
        self.state
    }

    /// The payload being waved.
    pub fn payload(&self) -> &B {
        &self.payload
    }

    /// Unconditionally starts (or restarts) a wave of `payload` — the
    /// upper layer's `Request ← Wait` plus the immediate A1.
    pub fn force_start(&mut self, payload: B) {
        self.payload = payload;
        self.request = RequestState::In;
        self.state = Flag::ZERO;
    }

    /// True while a wave is running.
    pub fn is_busy(&self) -> bool {
        self.request == RequestState::In
    }

    /// True in the corruption-only wedge `Request = In ∧ flag complete`:
    /// the unit neither retransmits nor can ever be completed by an echo
    /// (the protocol always sets `Done` atomically with the completing
    /// increment, so only a transient fault produces this combination).
    /// The owner must repair it via [`ProbeUnit::force_start`] or
    /// [`ProbeUnit::abort`].
    pub fn is_wedged(&self) -> bool {
        self.request == RequestState::In && self.state.is_complete(self.domain)
    }

    /// Abandons the wave (`Request ← Done`, no feedback delivered). Used
    /// to clear the corruption-only wedge when no live owner wants the
    /// wave restarted.
    pub fn abort(&mut self) {
        self.request = RequestState::Done;
    }

    /// A2: the probe to retransmit, if the wave is running. The caller
    /// sends `Probe { payload, sender_state }` on the link.
    pub fn tick(&self) -> Option<(B, Flag)> {
        if self.request == RequestState::In && !self.state.is_complete(self.domain) {
            Some((self.payload.clone(), self.state))
        } else {
            None
        }
    }

    /// A3 (initiator half): processes an echo. Completion **requires** an
    /// attached feedback: a genuine broadcast-value echo always carries
    /// one (the responder withholds until ready), so a `None` at the final
    /// step is stale by construction and is ignored.
    pub fn on_reply<V>(&mut self, echoed: Flag, feedback: Option<V>) -> ProbeOutcome<V> {
        if self.request != RequestState::In {
            return ProbeOutcome::Ignored;
        }
        if self.state != echoed || self.state.is_complete(self.domain) {
            return ProbeOutcome::Ignored;
        }
        let next = self.state.incremented(self.domain);
        if next.is_complete(self.domain) {
            match feedback {
                Some(v) => {
                    self.state = next;
                    self.request = RequestState::Done;
                    ProbeOutcome::Completed(v)
                }
                // A broadcast-value echo without feedback cannot be
                // genuine; refuse the increment and keep retransmitting.
                None => ProbeOutcome::Ignored,
            }
        } else {
            self.state = next;
            ProbeOutcome::Advanced
        }
    }

    /// Overwrites the variables with arbitrary in-domain values
    /// (transient-fault injection). The payload is overwritten by the
    /// caller, which knows `B`'s domain.
    pub fn corrupt_flags(&mut self, request: RequestState, state: Flag) {
        self.request = request;
        self.state = self.domain.clamp(state);
    }
}

/// The responder side of one directed link wave.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ResponderUnit<V> {
    domain: FlagDomain,
    neig_state: Flag,
    feedback: Option<V>,
}

/// What [`ResponderUnit::on_probe`] decided.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ProbeReceipt<V> {
    /// The `receive-brd` event fired: this is the first sight of the
    /// initiator's broadcast-trigger flag — the upper layer must reset its
    /// relay context for this link and begin computing the feedback.
    pub brd_fired: bool,
    /// The reply to send back, if any: `(echoed_flag, feedback)`. `None`
    /// when the echo is withheld (broadcast-trigger received but the
    /// feedback is not ready) or the initiator is already complete.
    pub reply: Option<(Flag, Option<V>)>,
}

impl<V: Clone> ResponderUnit<V> {
    /// A quiescent unit.
    pub fn new(domain: FlagDomain) -> Self {
        ResponderUnit {
            domain,
            neig_state: domain.max(),
            feedback: None,
        }
    }

    /// The last flag received from the initiator.
    pub fn neig_state(&self) -> Flag {
        self.neig_state
    }

    /// The currently attached feedback.
    pub fn feedback(&self) -> Option<&V> {
        self.feedback.as_ref()
    }

    /// Attaches the feedback (the upper layer's subtree aggregate is
    /// ready); subsequent broadcast-trigger echoes will carry it.
    pub fn set_feedback(&mut self, v: V) {
        self.feedback = Some(v);
    }

    /// Detaches the feedback (a new wave began on this link).
    pub fn clear_feedback(&mut self) {
        self.feedback = None;
    }

    /// A3 (responder half): processes a probe carrying `sender_state`.
    // Both `None` branches below are kept separate: they withhold the echo
    // for different paper-mapped reasons (qState = 4 vs feedback pending).
    #[allow(clippy::if_same_then_else)]
    pub fn on_probe(&mut self, sender_state: Flag) -> ProbeReceipt<V> {
        let sender_state = self.domain.clamp(sender_state);
        let brd_fired = self.neig_state != self.domain.broadcast_value()
            && sender_state == self.domain.broadcast_value();
        if brd_fired {
            // The new wave invalidates any previously attached feedback.
            self.feedback = None;
        }
        self.neig_state = sender_state;
        let reply = if sender_state.is_complete(self.domain) {
            None // the initiator is done; nothing to echo (paper: qState = 4)
        } else if sender_state == self.domain.broadcast_value() && self.feedback.is_none() {
            None // withheld: feedback not ready yet
        } else {
            Some((sender_state, self.feedback.clone()))
        };
        ProbeReceipt { brd_fired, reply }
    }

    /// Overwrites the variables with arbitrary values (fault injection).
    pub fn corrupt(&mut self, neig_state: Flag, feedback: Option<V>) {
        self.neig_state = self.domain.clamp(neig_state);
        self.feedback = feedback;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn domain() -> FlagDomain {
        FlagDomain::PAPER
    }

    /// Runs one clean link wave end to end over a lossless virtual link.
    #[test]
    fn clean_wave_completes_with_the_attached_feedback() {
        let mut probe: ProbeUnit<&str> = ProbeUnit::new(domain(), "");
        let mut resp: ResponderUnit<u32> = ResponderUnit::new(domain());
        resp.corrupt(Flag::ZERO, None);
        probe.force_start("hello");

        let mut completed = None;
        let mut brd_count = 0;
        for _ in 0..16 {
            if let Some((payload, s)) = probe.tick() {
                assert_eq!(payload, "hello");
                let receipt = resp.on_probe(s);
                if receipt.brd_fired {
                    brd_count += 1;
                    resp.set_feedback(42); // upper layer: leaf is ready at once
                }
                if let Some((echoed, f)) = receipt.reply {
                    if let ProbeOutcome::Completed(v) = probe.on_reply(echoed, f) {
                        completed = Some(v);
                        break;
                    }
                }
            }
        }
        assert_eq!(completed, Some(42));
        assert_eq!(brd_count, 1, "exactly one receive-brd per wave");
        assert!(!probe.is_busy());
    }

    #[test]
    fn withheld_echo_stalls_the_final_increment_only() {
        let mut probe: ProbeUnit<u8> = ProbeUnit::new(domain(), 0);
        let mut resp: ResponderUnit<u32> = ResponderUnit::new(domain());
        resp.corrupt(Flag::ZERO, None);
        probe.force_start(9);

        // Climb to the broadcast value without feedback.
        for _ in 0..8 {
            if probe.state() == domain().broadcast_value() {
                break;
            }
            let (_, s) = probe.tick().expect("busy");
            if let Some((echoed, f)) = resp.on_probe(s).reply {
                let _ = probe.on_reply::<u32>(echoed, f);
            }
        }
        assert_eq!(probe.state(), domain().broadcast_value());

        // Feedback not ready: the responder withholds; the probe stalls.
        let (_, s) = probe.tick().expect("busy");
        let receipt = resp.on_probe(s);
        assert!(receipt.reply.is_none(), "withheld");
        assert!(probe.is_busy());

        // Feedback arrives; the next retransmission completes the wave.
        resp.set_feedback(7);
        let (_, s) = probe.tick().expect("busy");
        let receipt = resp.on_probe(s);
        let (echoed, f) = receipt.reply.expect("released");
        assert_eq!(probe.on_reply(echoed, f), ProbeOutcome::Completed(7));
    }

    #[test]
    fn completion_without_feedback_is_refused() {
        let mut probe: ProbeUnit<u8> = ProbeUnit::new(domain(), 0);
        probe.force_start(1);
        // Force the flag to the broadcast value, then offer a bare echo.
        let _ = probe.on_reply::<u32>(Flag::new(0), None);
        let _ = probe.on_reply::<u32>(Flag::new(1), None);
        let _ = probe.on_reply::<u32>(Flag::new(2), None);
        assert_eq!(probe.state(), Flag::new(3));
        assert_eq!(
            probe.on_reply::<u32>(Flag::new(3), None),
            ProbeOutcome::Ignored
        );
        assert!(
            probe.is_busy(),
            "a feedback-less broadcast echo cannot complete the wave"
        );
    }

    #[test]
    fn receive_brd_resets_stale_feedback() {
        // A corrupted responder holds ready garbage; the genuine wave's
        // first broadcast-trigger probe clears it before any echo can
        // carry it.
        let mut resp: ResponderUnit<u32> = ResponderUnit::new(domain());
        resp.corrupt(Flag::new(1), Some(666));
        let receipt = resp.on_probe(Flag::new(3));
        assert!(receipt.brd_fired);
        assert!(receipt.reply.is_none(), "cleared and withheld, not leaked");
        assert_eq!(resp.feedback(), None);
    }

    #[test]
    fn non_trigger_echoes_are_never_withheld() {
        let mut resp: ResponderUnit<u32> = ResponderUnit::new(domain());
        resp.corrupt(Flag::ZERO, None);
        for s in 0..3u8 {
            let receipt = resp.on_probe(Flag::new(s));
            assert!(receipt.reply.is_some(), "flag {s} echo flows freely");
        }
    }

    #[test]
    fn complete_initiators_get_no_reply() {
        let mut resp: ResponderUnit<u32> = ResponderUnit::new(domain());
        let receipt = resp.on_probe(Flag::new(4));
        assert!(receipt.reply.is_none());
    }

    #[test]
    fn stale_echoes_are_ignored() {
        let mut probe: ProbeUnit<u8> = ProbeUnit::new(domain(), 0);
        probe.force_start(1);
        assert_eq!(
            probe.on_reply::<u32>(Flag::new(2), None),
            ProbeOutcome::Ignored
        );
        assert_eq!(probe.state(), Flag::ZERO);
        // Idle probes ignore everything.
        let mut idle: ProbeUnit<u8> = ProbeUnit::new(domain(), 0);
        assert_eq!(
            idle.on_reply::<u32>(Flag::new(4), Some(1)),
            ProbeOutcome::Ignored
        );
    }

    #[test]
    fn wedge_is_detected_and_repairable() {
        // The corruption-only combination: In with a complete flag.
        let mut probe: ProbeUnit<u8> = ProbeUnit::new(domain(), 0);
        probe.corrupt_flags(RequestState::In, Flag::new(4));
        assert!(probe.is_wedged());
        assert!(probe.tick().is_none(), "no retransmission from the wedge");
        assert_eq!(
            probe.on_reply::<u32>(Flag::new(4), Some(1)),
            ProbeOutcome::Ignored
        );
        // Repair path 1: abort.
        let mut aborted = probe.clone();
        aborted.abort();
        assert!(!aborted.is_wedged());
        assert!(!aborted.is_busy());
        // Repair path 2: restart.
        probe.force_start(5);
        assert!(!probe.is_wedged());
        assert!(probe.is_busy());
        assert_eq!(probe.state(), Flag::ZERO);
    }

    #[test]
    fn normal_operation_never_wedges() {
        let mut probe: ProbeUnit<u8> = ProbeUnit::new(domain(), 0);
        assert!(!probe.is_wedged(), "idle unit is not wedged");
        probe.force_start(1);
        for s in 0..3u8 {
            assert!(!probe.is_wedged());
            let _ = probe.on_reply::<u32>(Flag::new(s), None);
        }
        let _ = probe.on_reply(Flag::new(3), Some(9u32));
        assert!(!probe.is_wedged(), "completion goes straight to Done");
        assert!(!probe.is_busy());
    }

    #[test]
    fn restart_resets_the_flag() {
        let mut probe: ProbeUnit<u8> = ProbeUnit::new(domain(), 0);
        probe.force_start(1);
        let _ = probe.on_reply::<u32>(Flag::new(0), None);
        assert_eq!(probe.state(), Flag::new(1));
        probe.force_start(2);
        assert_eq!(probe.state(), Flag::ZERO);
        assert_eq!(probe.payload(), &2);
    }
}
