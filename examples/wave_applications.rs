//! The PIF as "a basic tool" (§4.1): snapshot, leader election, reset and
//! phase barrier — each a thin snap-stabilizing application of one wave.
//!
//! Run with: `cargo run --example wave_applications`

use snapstab_repro::apps::{
    BarrierProcess, LeaderProcess, ResetProcess, Resettable, SnapshotProcess,
};
use snapstab_repro::core::request::RequestState;
use snapstab_repro::sim::{
    Capacity, CorruptionPlan, NetworkBuilder, ProcessId, RandomScheduler, Runner, SimRng,
};

fn p(i: usize) -> ProcessId {
    ProcessId::new(i)
}

fn main() {
    let n = 4;

    // ---- Snapshot -------------------------------------------------------
    println!("== global snapshot ==");
    let processes: Vec<SnapshotProcess<u32>> = (0..n)
        .map(|i| SnapshotProcess::new(p(i), n, 11 * i as u32))
        .collect();
    let network = NetworkBuilder::new(n)
        .capacity(Capacity::Bounded(1))
        .build();
    let mut runner = Runner::new(processes, network, RandomScheduler::new(), 1);
    let mut rng = SimRng::seed_from(2);
    CorruptionPlan::full().apply(&mut runner, &mut rng);
    for i in 0..n {
        runner.process_mut(p(i)).set_value(11 * i as u32); // post-fault values
    }
    let _ = runner.run_until(500_000, |r| r.process(p(1)).request() == RequestState::Done);
    runner.process_mut(p(1)).request_snapshot();
    runner
        .run_until(1_000_000, |r| {
            r.process(p(1)).request() == RequestState::Done
        })
        .unwrap();
    println!(
        "P1's first post-fault snapshot: {:?}\n",
        runner.process(p(1)).snapshot_vector().unwrap()
    );

    // ---- Leader election -------------------------------------------------
    println!("== leader election ==");
    let ids = [509u64, 32, 284, 77];
    let processes: Vec<LeaderProcess> = (0..n)
        .map(|i| LeaderProcess::new(p(i), n, ids[i]))
        .collect();
    let network = NetworkBuilder::new(n)
        .capacity(Capacity::Bounded(1))
        .build();
    let mut runner = Runner::new(processes, network, RandomScheduler::new(), 3);
    let mut rng = SimRng::seed_from(4);
    CorruptionPlan::full().apply(&mut runner, &mut rng);
    let _ = runner.run_until(500_000, |r| r.process(p(0)).request() == RequestState::Done);
    runner.process_mut(p(0)).request_election();
    runner
        .run_until(1_000_000, |r| {
            r.process(p(0)).request() == RequestState::Done
        })
        .unwrap();
    let (id, at) = runner.process(p(0)).elected().unwrap();
    println!("P0 elected the leader: id {id} at {at} (ids were {ids:?})\n");

    // ---- Reset -----------------------------------------------------------
    println!("== global reset ==");
    #[derive(Clone, Debug)]
    struct Journal(Vec<&'static str>);
    impl Resettable for Journal {
        fn reset(&mut self) {
            self.0.clear();
        }
    }
    let processes: Vec<ResetProcess<Journal>> = (0..n)
        .map(|i| ResetProcess::new(p(i), n, Journal(vec!["stale", "entries"])))
        .collect();
    let network = NetworkBuilder::new(n)
        .capacity(Capacity::Bounded(1))
        .build();
    let mut runner = Runner::new(processes, network, RandomScheduler::new(), 5);
    runner.process_mut(p(2)).request_reset();
    runner
        .run_until(1_000_000, |r| {
            r.process(p(2)).request() == RequestState::Done
        })
        .unwrap();
    for i in 0..n {
        assert!(runner.process(p(i)).app().0.is_empty());
    }
    println!("one requested wave cleared every process's journal\n");

    // ---- Phase barrier ----------------------------------------------------
    println!("== phase barrier ==");
    let processes: Vec<BarrierProcess> = (0..n).map(|i| BarrierProcess::new(p(i), n)).collect();
    let network = NetworkBuilder::new(n)
        .capacity(Capacity::Bounded(1))
        .build();
    let mut runner = Runner::new(processes, network, RandomScheduler::new(), 6);
    for round in 1..=3u64 {
        for i in 0..n {
            assert!(runner.process_mut(p(i)).finish_work());
        }
        runner
            .run_until(1_000_000, |r| {
                (0..n).all(|i| r.process(p(i)).phase() == round)
            })
            .unwrap();
        println!("barrier {round} crossed by all {n} processes in lockstep");
    }
    println!("\nfour applications, one mechanism: the snap-stabilizing wave of Algorithm 1.");
}
