//! Termination detection — the last §4.1 application, live.
//!
//! A diffusing computation spreads work over 5 processes while a detector
//! (P0) repeatedly runs two-wave detections. Early detections honestly
//! report `active`; once the work exhausts, the detection confirms
//! termination — and its claim is *window-sound*: no process did anything
//! between the two waves (checked on the trace).
//!
//! ```text
//! cargo run --example termination_detection
//! ```

use snapstab_repro::apps::{check_detection, TerminationProcess};
use snapstab_repro::core::request::RequestState;
use snapstab_repro::sim::{
    Capacity, CorruptionPlan, NetworkBuilder, ProcessId, RandomScheduler, Runner, SimRng,
};

fn p(i: usize) -> ProcessId {
    ProcessId::new(i)
}

fn main() {
    let n = 5;
    let processes = (0..n).map(|i| TerminationProcess::new(p(i), n)).collect();
    let network = NetworkBuilder::new(n)
        .capacity(Capacity::Bounded(1))
        .build();
    let mut runner = Runner::new(processes, network, RandomScheduler::new(), 2024);

    // An adversarial start: everything corrupted, then fresh work seeded.
    CorruptionPlan::full().apply(&mut runner, &mut SimRng::seed_from(3));
    runner.process_mut(p(2)).seed_work(16);
    println!("corrupted start + 16 units of diffusing work seeded at P2\n");

    // Drain never-started computations (they owe termination only).
    runner
        .run_until(2_000_000, |r| {
            r.process(p(0)).request() == RequestState::Done
        })
        .expect("drain");

    for round in 1.. {
        let req_step = runner.step_count();
        assert!(runner.process_mut(p(0)).request_detection());
        runner
            .run_until(3_000_000, |r| {
                r.process(p(0)).request() == RequestState::Done
            })
            .expect("detection decides");
        let verdict = runner.process(p(0)).verdict().expect("verdict");
        let soundness = check_detection(runner.trace(), p(0), n, req_step);
        let budgets: Vec<u8> = (0..n).map(|i| runner.process(p(i)).budget()).collect();
        println!(
            "detection #{round}: verdict = {} | window-sound = {} | budgets now {:?}",
            if verdict {
                "TERMINATED"
            } else {
                "still active"
            },
            soundness.holds(),
            budgets,
        );
        if verdict {
            println!("\nthe two-wave detector confirmed global termination;");
            println!("every claim along the way was certified window-sound by the trace checker.");
            break;
        }
        // Let the computation progress between detections.
        let _ = runner.run_steps(400);
    }
}
