//! Mutual exclusion (Algorithm 3): a workload of critical-section
//! requests served from a corrupted start, with the trace analyzed for
//! exclusivity.
//!
//! Run with: `cargo run --example mutex_service`

use snapstab_repro::core::me::{MeConfig, MeProcess, ValueMode};
use snapstab_repro::core::request::RequestState;
use snapstab_repro::core::spec::analyze_me_trace;
use snapstab_repro::sim::{
    Capacity, CorruptionPlan, LossModel, NetworkBuilder, ProcessId, RandomScheduler, Runner, SimRng,
};

fn main() {
    let n = 4;
    let ids: Vec<u64> = vec![201, 13, 788, 454]; // P1 is the leader
    let config = MeConfig {
        cs_duration: 5,
        value_mode: ValueMode::Corrected,
        ..MeConfig::default()
    };
    let processes: Vec<MeProcess> = (0..n)
        .map(|i| MeProcess::with_config(ProcessId::new(i), n, ids[i], config))
        .collect();
    let network = NetworkBuilder::new(n)
        .capacity(Capacity::Bounded(1))
        .build();
    let mut runner = Runner::new(processes, network, RandomScheduler::new(), 0xCE11);
    runner.set_loss(LossModel::probabilistic(0.1));

    let mut rng = SimRng::seed_from(5);
    CorruptionPlan::full().apply(&mut runner, &mut rng);
    println!(
        "4-process system (leader: P1, smallest ID {}), corrupted start, 10% loss, CS \
         duration 5 activations",
        ids.iter().min().unwrap()
    );

    // Inject a workload: every process requests the CS twice.
    let mut pending = vec![2u32; n];
    let mut executed = 0u64;
    let budget = 600_000u64;
    while executed < budget && pending.iter().any(|&k| k > 0) {
        let out = runner.run_steps(500).expect("run");
        executed += out.steps;
        for (i, left) in pending.iter_mut().enumerate() {
            let p = ProcessId::new(i);
            if *left > 0 && runner.process(p).request() == RequestState::Done {
                runner.mark(p, "request");
                assert!(runner.process_mut(p).request_cs());
                *left -= 1;
            }
        }
    }
    // Let the final requests drain.
    while executed < budget
        && (0..n).any(|i| runner.process(ProcessId::new(i)).request() != RequestState::Done)
    {
        executed += runner.run_steps(500).expect("run").steps;
    }

    let report = analyze_me_trace(runner.trace(), n);
    println!("\nservice log (request step -> CS served step, latency):");
    for (p, req, srv) in &report.served {
        println!("  {p}: {req:>7} -> {srv:>7}  ({} steps)", srv - req);
    }
    println!("\nCS intervals observed: {}", report.intervals.len());
    println!(
        "genuine x genuine overlaps: {}",
        report.genuine_overlaps.len()
    );
    println!(
        "overlaps involving spurious (corrupted-state) CS: {}",
        report.spurious_overlaps.len()
    );
    assert!(report.exclusivity_holds(), "Specification 3 Correctness");
    assert_eq!(report.served.len(), 8, "all 8 requests served");
    println!(
        "\nall 8 requests served, zero genuine overlaps — Specification 3 holds from the \
         corrupted start."
    );
}
