//! The bounded-capacity extension (§4), live: why five flag values are
//! exactly a capacity-1 artifact, and how `2c + 3` values restore the
//! guarantee on fatter channels.
//!
//! Three acts:
//!
//! 1. the canonical stale adversary against the paper's protocol on
//!    capacity-1 channels — drives the flag to 3, never completes
//!    (Figure 1);
//! 2. the same adversary on capacity-2 channels — **completes a wave on
//!    garbage** (the paper's protocol silently breaks if deployed on
//!    deeper channels);
//! 3. the `2c + 3 = 7`-valued domain on the same channels — the adversary
//!    tops out at `2c + 1 = 5`, one short, and the full protocol stack
//!    serves an exact IDs-Learning request from a corrupted start.
//!
//! ```text
//! cargo run --example capacity_upgrade
//! ```

use snapstab_repro::core::capacity::{drive_stale, StaleConfig, StaleSchedule};
use snapstab_repro::core::flag::FlagDomain;
use snapstab_repro::core::idl::IdlProcess;
use snapstab_repro::core::request::RequestState;
use snapstab_repro::sim::{
    Capacity, CorruptionPlan, NetworkBuilder, ProcessId, RandomScheduler, Runner, SimRng,
};

fn p(i: usize) -> ProcessId {
    ProcessId::new(i)
}

fn main() {
    // Act 1 — the paper's protocol at its design capacity.
    let fig1 = drive_stale(
        &StaleConfig::canonical(1, FlagDomain::PAPER),
        StaleSchedule::Canonical,
    );
    println!(
        "act 1  [c=1, 5 values]  stale flag reaches {} (paper's Figure 1 bound: 3); \
         decided on garbage: {}",
        fig1.max_stale_flag, fig1.stale_decided
    );

    // Act 2 — the same protocol on capacity-2 channels.
    let broken = drive_stale(
        &StaleConfig::canonical(2, FlagDomain::PAPER),
        StaleSchedule::Canonical,
    );
    println!(
        "act 2  [c=2, 5 values]  stale flag reaches {}; decided on garbage: {} ← BROKEN",
        broken.max_stale_flag, broken.stale_decided
    );

    // Act 3 — the generalized domain.
    let fixed = drive_stale(
        &StaleConfig::canonical(2, FlagDomain::for_capacity(2)),
        StaleSchedule::Canonical,
    );
    println!(
        "act 3  [c=2, 7 values]  stale flag reaches {} (bound 2c+1 = 5); decided on garbage: {}",
        fixed.max_stale_flag, fixed.stale_decided
    );

    // …and the full stack on capacity-2 channels, corrupted start.
    let n = 4;
    let ids = [42u64, 7, 99, 23];
    let processes = (0..n)
        .map(|i| IdlProcess::for_capacity(p(i), n, ids[i], 2))
        .collect();
    let network = NetworkBuilder::new(n)
        .capacity(Capacity::Bounded(2))
        .build();
    let mut runner = Runner::new(processes, network, RandomScheduler::new(), 5);
    CorruptionPlan::full().apply(&mut runner, &mut SimRng::seed_from(11));
    let _ = runner.run_until(1_000_000, |r| {
        (0..n).all(|i| r.process(p(i)).request() != RequestState::Wait)
    });
    if runner.process(p(0)).request() != RequestState::Done {
        runner
            .run_until(2_000_000, |r| {
                r.process(p(0)).request() == RequestState::Done
            })
            .expect("drain");
    }
    runner.process_mut(p(0)).request_learning();
    runner
        .run_until(2_000_000, |r| {
            r.process(p(0)).request() == RequestState::Done
        })
        .expect("IDs-Learning decides");
    println!(
        "\nfull stack on capacity-2 channels (7-valued flags), corrupted start:\n\
         P0 learned min id = {} (expected 7), neighbor table = {:?}",
        runner.process(p(0)).idl().min_id(),
        (1..n)
            .map(|q| runner.process(p(0)).idl().id_of(p(q)))
            .collect::<Vec<_>>(),
    );
}
