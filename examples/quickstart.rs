//! Quickstart: the paper's own running example (§4.1) — process P0
//! broadcasts "How old are you?" and collects everyone's age, starting
//! from a fully corrupted configuration.
//!
//! Run with: `cargo run --example quickstart`

use snapstab_repro::core::pif::{PifApp, PifEvent, PifProcess};
use snapstab_repro::core::request::RequestState;
use snapstab_repro::sim::{
    Capacity, CorruptionPlan, LossModel, NetworkBuilder, ProcessId, RandomScheduler, Runner, SimRng,
};

/// The application above the PIF: each process knows its age (`Old_p` in
/// the paper) and answers every broadcast with it.
#[derive(Clone, Debug)]
struct AgeApp {
    old: u32,
    heard: Vec<(ProcessId, u32)>,
}

impl PifApp<&'static str, u32> for AgeApp {
    fn on_broadcast(&mut self, _from: ProcessId, _question: &&'static str) -> u32 {
        // receive-brd⟨How old are you?⟩: feed back Old_q. (A corrupted,
        // non-started computation may deliver a garbage question — footnote
        // 1 of the paper: no guarantee attaches to those, so the app just
        // answers; the *requested* wave is what snap-stabilization covers.)
        self.old
    }
    fn on_feedback(&mut self, from: ProcessId, age: &u32) {
        // receive-fck⟨x⟩: learn the neighbor's age.
        self.heard.push((from, *age));
    }
}

fn main() {
    let n = 4;
    let ages = [34u32, 27, 61, 45];
    let processes: Vec<PifProcess<&'static str, u32, AgeApp>> = (0..n)
        .map(|i| {
            PifProcess::with_initial_f(
                ProcessId::new(i),
                n,
                "How old are you?",
                0,
                AgeApp {
                    old: ages[i],
                    heard: Vec::new(),
                },
            )
        })
        .collect();
    let network = NetworkBuilder::new(n)
        .capacity(Capacity::Bounded(1))
        .build();
    let mut runner = Runner::new(processes, network, RandomScheduler::new(), 42);
    runner.set_loss(LossModel::probabilistic(0.15)); // unreliable channels

    // Transient faults hit every process: arbitrary variables everywhere.
    let mut rng = SimRng::seed_from(7);
    CorruptionPlan::processes_only().apply(&mut runner, &mut rng);
    println!("corrupted every process's variables; channels are lossy (p = 0.15)");

    // User discipline: wait until the (corrupted, non-started) computation
    // drains, then request.
    let p0 = ProcessId::new(0);
    runner
        .run_until(1_000_000, |r| r.process(p0).request() == RequestState::Done)
        .expect("corrupted computations terminate");
    assert!(runner.process_mut(p0).request_broadcast("How old are you?"));
    println!("P0 requests the broadcast of \"How old are you?\"");

    runner
        .run_until(1_000_000, |r| r.process(p0).request() == RequestState::Done)
        .expect("the wave terminates");

    println!("\nP0's wave decided; feedback events (from the trace):");
    for (step, e) in runner.trace().protocol_events_of(p0) {
        if let PifEvent::ReceiveFck { from, data } = e {
            println!("  step {step:>6}: receive-fck from {from}: age {data}");
        }
    }
    let mut heard = runner.process(p0).app().heard.clone();
    heard.sort();
    heard.dedup(); // the drained corrupted computation also produced feedbacks
    println!("\nP0 learned: {heard:?}");
    for (q, age) in &heard {
        assert_eq!(
            *age,
            ages[q.index()],
            "snap-stabilization: the answer is exact"
        );
    }
    println!(
        "every answer is exact despite the corrupted start and lossy channels \
         — that is snap-stabilization."
    );
}
