//! The same mutual-exclusion service — but every message is a real UDP
//! datagram: Algorithm 3 on one OS thread per process over loopback
//! sockets (`snapstab-net`), with the paper's §4 channel semantics
//! enforced in the receive path, judged by the unchanged Specification 3
//! checker.
//!
//! Run with: `cargo run --release --example udp_mutex_service`

use std::time::Duration;

use snapstab_repro::core::spec::analyze_me_trace;
use snapstab_repro::net::{udp_available, UdpLoopback};
use snapstab_repro::runtime::{run_mutex_service_on, LiveConfig, MutexServiceConfig};

fn main() {
    if !udp_available() {
        eprintln!("this environment forbids UDP loopback sockets; nothing to demo");
        return;
    }
    let n = 8;
    let cfg = MutexServiceConfig {
        n,
        requests_per_process: 25,
        cs_duration: 0,
        live: LiveConfig {
            loss: 0.1, // injected on top of whatever the kernel loses
            seed: 42,
            record_trace: true, // keep the merged trace for the spec check
            ..LiveConfig::default()
        },
        time_budget: Duration::from_secs(60),
    };

    println!(
        "UDP mutex service: {n} worker threads, {} requests/process, 10% injected loss",
        cfg.requests_per_process
    );
    // The transport object owns the demultiplexer threads; keep it alive
    // for the duration of the run.
    let transport = UdpLoopback::new();
    let report = run_mutex_service_on(&cfg, &transport).expect("bind loopback sockets");

    println!(
        "served {}/{} requests in {:.2}s — {:.0} req/s, {:.0} datagrams/s through the sockets",
        report.served,
        report.injected,
        report.wall.as_secs_f64(),
        report.requests_per_sec(),
        report.msgs_per_sec(),
    );
    let links = report.stats.links;
    println!(
        "link counters: {} sends, {} delivered, {} lost in transit, {} dropped on full lanes, {} dropped to keep FIFO",
        links.sends, links.delivered, links.lost_in_transit, links.lost_full, links.lost_reorder,
    );

    // The same executable specification that judges simulated and
    // in-memory live runs judges the UDP run.
    let trace = report.trace.expect("recording was on");
    let me = analyze_me_trace(&trace, n);
    println!(
        "Specification 3 on the merged trace: exclusivity holds = {}, {} of {} served",
        me.exclusivity_holds(),
        me.served.len(),
        report.injected,
    );
    assert!(me.exclusivity_holds() && me.all_served());
    println!("the UDP run satisfies the paper's mutual-exclusion specification");
}
