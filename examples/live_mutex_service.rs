//! A mutual-exclusion *service* on the live runtime: Algorithm 3 running
//! on one OS thread per process over a concurrent lossy transport,
//! absorbing a client request stream — then the merged trace checked
//! against Specification 3.
//!
//! Run with: `cargo run --release --example live_mutex_service`

use std::time::Duration;

use snapstab_repro::core::spec::analyze_me_trace;
use snapstab_repro::runtime::{run_mutex_service, LiveConfig, MutexServiceConfig};

fn main() {
    let n = 8;
    let cfg = MutexServiceConfig {
        n,
        requests_per_process: 25,
        cs_duration: 0,
        live: LiveConfig {
            loss: 0.1, // fair-lossy links: every message faces a 10% coin
            seed: 42,
            jitter: Some(Duration::from_micros(200)),
            record_trace: true, // keep the merged trace for the spec check
            ..LiveConfig::default()
        },
        time_budget: Duration::from_secs(60),
    };

    println!(
        "live mutex service: {n} worker threads, {} requests/process, 10% loss",
        cfg.requests_per_process
    );
    let report = run_mutex_service(&cfg);

    println!(
        "served {}/{} requests in {:.2}s — {:.0} req/s, {:.0} msgs/s through the links",
        report.served,
        report.injected,
        report.wall.as_secs_f64(),
        report.requests_per_sec(),
        report.msgs_per_sec(),
    );
    if let Some((min, mean, max)) = report.latency_min_mean_max() {
        println!(
            "service latency: min {:.2} / mean {:.2} / max {:.2} ms",
            min.as_secs_f64() * 1e3,
            mean.as_secs_f64() * 1e3,
            max.as_secs_f64() * 1e3,
        );
    }

    // The merged live trace is judged by the same executable
    // specification as simulator traces: no two genuine critical sections
    // may overlap (Correctness), every request is served (Start).
    let trace = report.trace.expect("recording was on");
    let spec = analyze_me_trace(&trace, n);
    println!(
        "Specification 3 on the merged live trace: {} CS intervals, \
         genuine overlaps: {}, all served: {}",
        spec.intervals.len(),
        spec.genuine_overlaps.len(),
        spec.all_served(),
    );
    assert!(spec.exclusivity_holds(), "mutual exclusion violated");
    assert!(spec.all_served(), "a client request was never served");
    println!("spec holds: live run is snap-stabilizing end to end");
}
