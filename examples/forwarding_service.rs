//! The snap-stabilizing message-forwarding service, end to end: client
//! payloads routed hop-by-hop along the process line through bounded
//! buffers, every hop transfer validated by the paper's flag handshake —
//! starting from buffers adversarially pre-filled with stale entries.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example forwarding_service
//! ```

use std::time::Duration;

use snapstab_repro::core::spec::analyze_forwarding_trace;
use snapstab_repro::net::{udp_available, UdpLoopback};
use snapstab_repro::runtime::{
    run_forwarding_service, run_forwarding_service_on, ForwardingServiceConfig, LiveConfig,
};

fn report(tag: &str, n: usize, r: &snapstab_repro::runtime::ForwardingServiceReport) {
    println!(
        "[{tag}] delivered {}/{} payloads in {:.2}s ({:.0} payloads/s, {:.0} msgs/s), \
         {} stale flush(es)",
        r.delivered,
        r.injected,
        r.wall.as_secs_f64(),
        r.payloads_per_sec(),
        r.msgs_per_sec(),
        r.spurious,
    );
    if let Some((min, mean, max)) = r.latency_min_mean_max() {
        println!(
            "[{tag}] end-to-end latency: min {:.2} / mean {:.2} / max {:.2} ms",
            min.as_secs_f64() * 1e3,
            mean.as_secs_f64() * 1e3,
            max.as_secs_f64() * 1e3,
        );
    }
    let spec = analyze_forwarding_trace(r.trace.as_ref().expect("trace recorded"), n);
    println!(
        "[{tag}] Specification 4: lost {}, duplicated {}, corrupt {}, spurious {} -> holds: {}",
        spec.lost.len(),
        spec.duplicate_ids.len(),
        spec.corrupt_deliveries.len(),
        spec.spurious,
        spec.holds(),
    );
    assert!(spec.holds(), "{spec:?}");
}

fn main() {
    let n = 5;
    // Adversarial start: every process's lanes and transfer slots are
    // stuffed with stale entries before the workers spawn, and 10% of
    // messages are lost in transit. The first injected payload is still
    // delivered exactly once — that is snap-stabilization.
    let cfg = ForwardingServiceConfig {
        n,
        payloads_per_process: 20,
        buffer_cap: 4,
        prefill_stale: true,
        live: LiveConfig {
            loss: 0.1,
            seed: 7,
            ..LiveConfig::default()
        },
        time_budget: Duration::from_secs(60),
    };
    report("inmem", n, &run_forwarding_service(&cfg));

    // The same service over real UDP datagram sockets, where the sandbox
    // allows them.
    if udp_available() {
        let udp_cfg = ForwardingServiceConfig {
            payloads_per_process: 5,
            ..cfg
        };
        let r = run_forwarding_service_on(&udp_cfg, &UdpLoopback::new())
            .expect("bind loopback sockets");
        report("udp", n, &r);
    } else {
        println!("[udp] UDP loopback unavailable in this sandbox; skipping");
    }
}
