//! Theorem 1, live: the adversarial initial configuration that defeats
//! *any* snap-stabilizing mutual exclusion over unbounded channels —
//! demonstrated against the paper's own Algorithm 3 — and why bounded
//! channels escape it.
//!
//! Run with: `cargo run --example impossibility_demo`

use snapstab_repro::impossibility::DoubleWinDemo;
use snapstab_repro::sim::ProcessId;

fn main() {
    let demo = DoubleWinDemo {
        n: 3,
        a: ProcessId::new(1),
        b: ProcessId::new(2),
        cs_duration: 8,
        seed: 0xD0,
        max_steps: 2_000_000,
    };
    println!("recording witness executions: E_a (P1 wins the CS) and E_b (P2 wins) ...");
    let outcome = demo.run(&[1, 2, 4, 8, 16, 32]).expect("demo runs");

    println!("\nthe adversarial configuration γ0:");
    println!(
        "  total 'sent by nobody' messages pre-loaded: {}",
        outcome.total_preloaded
    );
    println!(
        "  largest single-channel pre-load (|MesSeq|):  {}",
        outcome.max_channel_load
    );

    println!("\nfeasibility of γ0 by channel capacity:");
    for (cap, feasible) in &outcome.feasibility {
        match cap {
            Some(c) => println!(
                "  capacity {c:>3}: {}",
                if *feasible {
                    "EXISTS"
                } else {
                    "does not exist"
                }
            ),
            None => println!(
                "  unbounded  : {}",
                if *feasible {
                    "EXISTS"
                } else {
                    "does not exist"
                }
            ),
        }
    }

    println!("\nreplaying from γ0 on unbounded channels ...");
    println!(
        "  bad factor (two requesting processes in the CS) reached: {} (step {:?})",
        outcome.replay.violated(),
        outcome.replay.bad_factor_step
    );
    println!(
        "  genuine CS overlaps visible in the trace: {}",
        outcome.report.genuine_overlaps.len()
    );
    assert!(outcome.violation_exhibited());

    println!(
        "\nconclusion: with unbounded channels, an initial configuration exists from which \
         two genuine requesters execute the critical section simultaneously (Theorem 1). \
         With the paper's bounded capacity 1, that configuration cannot exist — which is \
         exactly the loophole Algorithms 1-3 exploit (§4)."
    );
}
