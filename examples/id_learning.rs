//! IDs-Learning (Algorithm 2): every process discovers its neighbors'
//! identities and the system's minimum ID — the leader — from a fully
//! corrupted configuration, all initiating concurrently.
//!
//! Run with: `cargo run --example id_learning`

use snapstab_repro::core::harness;
use snapstab_repro::core::idl::IdlProcess;
use snapstab_repro::core::request::RequestState;
use snapstab_repro::sim::{Capacity, ProcessId};

fn main() {
    let n = 5;
    // Deliberately unsorted identities; the minimum (7) sits at P2.
    let ids: Vec<u64> = vec![903, 411, 7, 560, 128];
    println!("system of {n} processes with identities {ids:?}");

    let mut runner = harness::random_system(
        n,
        Capacity::Bounded(1),
        |i| IdlProcess::new(ProcessId::new(i), n, ids[i]),
        0xBEEF,
    );
    harness::corrupt_everything(&mut runner, 99);
    println!("corrupted all variables and channel contents");

    // The user discipline: as soon as each process's (possibly corrupted,
    // non-started) computation drains to Done, issue its genuine request.
    // The computations overlap freely.
    for i in 0..n {
        let p = ProcessId::new(i);
        runner
            .run_until(1_000_000, |r| r.process(p).request() == RequestState::Done)
            .expect("corrupted computations terminate");
        assert!(runner.process_mut(p).request_learning());
    }
    println!("every process requested an IDs-Learning computation (overlapping waves)");

    harness::run_to_all_decisions(&mut runner, 5_000_000).expect("all computations decide");

    let true_min = *ids.iter().min().unwrap();
    println!("\nlearned state after all decisions:");
    for i in 0..n {
        let p = ProcessId::new(i);
        let idl = runner.process(p).idl();
        let tab: Vec<(usize, u64)> = (0..n)
            .filter(|&q| q != i)
            .map(|q| (q, idl.id_of(ProcessId::new(q))))
            .collect();
        println!("  {p}: minID = {:>3}, ID-Tab = {tab:?}", idl.min_id());
        assert_eq!(idl.min_id(), true_min);
        for (q, learned) in tab {
            assert_eq!(learned, ids[q]);
        }
    }
    println!(
        "\nall {n} concurrent computations decided with exact tables — the leader is the \
         process with ID {true_min}."
    );
}
