// Inline generic runner/checker types in assertions; aliasing them would hide
// which instantiation is under test.
#![allow(clippy::type_complexity)]
//! Tree waves on general topologies — the paper's §5 extension, live.
//!
//! A 9-process system on a binary tree recovers from a full transient
//! fault burst (every variable and every channel corrupted) and still
//! serves the very first requested wave exactly: a census, a leader
//! election and a snapshot, each aggregated hop-by-hop over the tree.
//!
//! ```text
//! cargo run --example tree_wave
//! ```

use snapstab_repro::core::request::RequestState;
use snapstab_repro::sim::{
    Capacity, CorruptionPlan, NetworkBuilder, ProcessId, RandomScheduler, Runner, SimRng, Topology,
};
use snapstab_repro::topology::{check_tree_wave, Count, Gather, MinId, TreePifNode};

fn p(i: usize) -> ProcessId {
    ProcessId::new(i)
}

fn main() {
    let n = 9;
    let topo = Topology::binary_tree(n);
    println!(
        "topology: binary tree over {n} processes (diameter {})",
        topo.diameter()
    );

    // 1) A census wave from the root, from a fully corrupted start.
    let processes: Vec<TreePifNode<u8, u64, Count>> = (0..n)
        .map(|i| TreePifNode::new(p(i), &topo, 0u8, Count))
        .collect();
    let network = NetworkBuilder::new(n)
        .capacity(Capacity::Bounded(1))
        .build();
    let mut runner = Runner::new(processes, network, RandomScheduler::new(), 42);
    let mut rng = SimRng::seed_from(7);
    CorruptionPlan::full().apply(&mut runner, &mut rng);
    println!("\n[census] every variable and channel corrupted; draining stale computations…");
    runner
        .run_until(1_000_000, |r| {
            r.process(p(0)).request() == RequestState::Done
        })
        .expect("drain");
    let req_step = runner.step_count();
    runner.process_mut(p(0)).request_wave(1);
    runner
        .run_until(5_000_000, |r| {
            r.process(p(0)).request() == RequestState::Done
        })
        .expect("wave decides");
    let verdict = check_tree_wave(runner.trace(), p(0), n, req_step, &1, &(n as u64));
    println!(
        "[census] first requested wave counted {} processes (expected {n}); spec holds: {}",
        runner.process(p(0)).result().expect("result"),
        verdict.holds()
    );

    // 2) Leader election: minimum identity over the tree.
    let ids: Vec<u64> = (0..n)
        .map(|i| ((i as u64) * 7919 + 13) % 1000 + 1)
        .collect();
    let min = *ids.iter().min().expect("non-empty");
    let processes: Vec<TreePifNode<u8, u64, MinId>> = (0..n)
        .map(|i| TreePifNode::new(p(i), &topo, 0u8, MinId { my_id: ids[i] }))
        .collect();
    let network = NetworkBuilder::new(n)
        .capacity(Capacity::Bounded(1))
        .build();
    let mut runner = Runner::new(processes, network, RandomScheduler::new(), 43);
    CorruptionPlan::full().apply(&mut runner, &mut SimRng::seed_from(8));
    runner
        .run_until(1_000_000, |r| {
            r.process(p(4)).request() == RequestState::Done
        })
        .expect("drain");
    runner.process_mut(p(4)).request_wave(1);
    runner
        .run_until(5_000_000, |r| {
            r.process(p(4)).request() == RequestState::Done
        })
        .expect("wave decides");
    println!(
        "\n[leader] ids {ids:?}\n[leader] initiator P4 learned the leader id: {} (expected {min})",
        runner.process(p(4)).result().expect("result")
    );

    // 3) A snapshot gathered over a spanning tree of a ring.
    let ring = Topology::ring(7);
    let tree = ring.bfs_spanning_tree(p(0));
    let processes: Vec<TreePifNode<u8, Vec<(ProcessId, u64)>, Gather>> = (0..7)
        .map(|i| {
            TreePifNode::new(
                p(i),
                &tree,
                0u8,
                Gather {
                    mine: 100 + i as u64,
                },
            )
        })
        .collect();
    let network = NetworkBuilder::new(7)
        .capacity(Capacity::Bounded(1))
        .build();
    let mut runner = Runner::new(processes, network, RandomScheduler::new(), 44);
    runner.process_mut(p(0)).request_wave(1);
    runner
        .run_until(5_000_000, |r| {
            r.process(p(0)).request() == RequestState::Done
        })
        .expect("wave decides");
    println!(
        "\n[snapshot] ring(7) via its BFS spanning tree; gathered: {:?}",
        runner.process(p(0)).result().expect("result")
    );
}
