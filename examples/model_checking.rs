//! Exhaustive verification of the handshake, live: the model checker
//! enumerates every 2-process initial configuration and every
//! interleaving, proves the paper's five-valued flag safe at capacity 1,
//! and *derives* the Figure 1 attack automatically against a four-valued
//! flag.
//!
//! ```text
//! cargo run --release --example model_checking
//! ```

use snapstab_repro::mc::explore_collect;
use snapstab_repro::mc::{explore, possible_termination, Params, SeedSet};

fn main() {
    // The paper's protocol: complete enumeration.
    let paper = Params::paper();
    let (report, reachable) = explore_collect(paper, &SeedSet::Exhaustive, 50_000_000);
    println!(
        "paper protocol (m = 5, capacity 1):\n  {} seeds → {} reachable configurations, \
         exhaustive = {}, violations = {}, deadlocks = {}",
        report.seed_count,
        report.states_explored,
        report.exhausted,
        report.violation.is_some() as u8,
        report.deadlocks,
    );
    let term = possible_termination(paper, &reachable);
    println!(
        "  possible termination: {}/{} configurations can reach a decision → {}",
        term.can_terminate,
        term.states,
        if term.holds() { "HOLDS" } else { "FAILS" }
    );

    // One value short: the checker invents the Figure 1 adversary itself.
    let small = Params::new(4, 1);
    let broken = explore(small, &SeedSet::Exhaustive, 50_000_000);
    let cex = broken.violation.expect("m = 4 must break");
    println!(
        "\nundersized domain (m = 4): violation = {:?}\n  seed: {:?}\n  shortest attack ({} moves): {:?}",
        cex.violation,
        cex.seed,
        cex.moves.len(),
        cex.moves,
    );

    // The capacity mismatch.
    let mismatch = explore(
        Params::new(5, 2),
        &SeedSet::Sampled {
            count: 100_000,
            rng_seed: 7,
        },
        50_000_000,
    );
    match mismatch.violation {
        Some(cex) => println!(
            "\ncapacity mismatch (m = 5 on capacity-2 channels): {:?} via {} moves — \
             the §4 extension needs 2c+3 = 7 values",
            cex.violation,
            cex.moves.len(),
        ),
        None => println!("\ncapacity mismatch: no violation in this sample (unexpected)"),
    }
}
