//! The sharded, batching mutex service on the live runtime: S independent
//! snap-stabilizing Algorithm 3 instances (one leader each) own
//! hash-partitioned slices of a resource space, and every critical-section
//! grant serves a batch of non-conflicting client requests — then the
//! grant log is audited and each shard's trace projection is checked
//! against Specification 3.
//!
//! Run with: `cargo run --release --example sharded_mutex_service`

use std::time::Duration;

use snapstab_repro::core::shard::project_shard_trace;
use snapstab_repro::core::spec::analyze_me_trace;
use snapstab_repro::runtime::{run_sharded_service, LiveConfig, ShardedServiceConfig};

fn main() {
    let n = 8;
    let shards = 4;
    let cfg = ShardedServiceConfig {
        n,
        shards,
        batch: 4,
        requests_per_process: 64,
        key_space: 1 << 12,
        cs_duration: 0,
        live: LiveConfig {
            seed: 42,
            record_trace: true, // keep the merged trace for the spec checks
            ..LiveConfig::default()
        },
        time_budget: Duration::from_secs(60),
    };

    println!(
        "sharded mutex service: {n} worker threads × {shards} shards \
         (leaders on processes 0..{shards}), batch ≤ {}, {} requests/process",
        cfg.batch, cfg.requests_per_process
    );
    let report = run_sharded_service(&cfg);

    println!(
        "served {}/{} requests in {:.2}s — {:.0} req/s over {} grants \
         ({:.2} requests per grant), {:.0} msgs/s through the links",
        report.served,
        report.injected.len(),
        report.wall.as_secs_f64(),
        report.requests_per_sec(),
        report.grant_log.len(),
        report.mean_batch(),
        report.msgs_per_sec(),
    );
    for (s, served) in report.per_shard_served.iter().enumerate() {
        println!("  shard {s}: {served} requests");
    }
    if let Some([p50, p99]) = report
        .latency_quantiles(&[0.5, 0.99])
        .map(|v| <[_; 2]>::try_from(v).expect("two quantiles"))
    {
        println!(
            "service latency: p50 {:.2} ms / p99 {:.2} ms",
            p50.as_secs_f64() * 1e3,
            p99.as_secs_f64() * 1e3,
        );
    }

    // The service-level audit: every batch conflict-free, every request
    // routed to the shard its key hashes to, every injected request
    // served exactly once.
    let audit = report.audit();
    assert!(audit.holds(), "grant-log audit failed: {audit:?}");
    println!("grant-log audit holds: batches conflict-free, routing exact, no request lost");

    // Each shard is a complete snap-stabilizing ME instance: project its
    // slice of the merged trace and judge it with the same Specification 3
    // checker the unsharded service uses.
    let trace = report.trace.expect("recording was on");
    for s in 0..shards {
        let spec = analyze_me_trace(&project_shard_trace(&trace, s), n);
        assert!(
            spec.exclusivity_holds(),
            "shard {s} mutual exclusion violated"
        );
        assert!(spec.all_served(), "shard {s} lost a request");
        println!(
            "shard {s}: {} CS intervals, genuine overlaps: 0, all served",
            spec.intervals.len()
        );
    }
    println!("spec holds per shard: the sharded composition is snap-stabilizing end to end");
}
