//! The snap-stabilization contract under *repeated* fault bursts: after
//! every burst, the very next requested computation is already correct —
//! there is no convergence window to wait out.
//!
//! Run with: `cargo run --example fault_injection`

use snapstab_repro::core::harness;
use snapstab_repro::core::idl::IdlProcess;
use snapstab_repro::core::request::RequestState;
use snapstab_repro::sim::{Capacity, CorruptionPlan, ProcessId, SimRng};

fn main() {
    let n = 4;
    let ids: Vec<u64> = vec![44, 17, 91, 63];
    let true_min = *ids.iter().min().unwrap();
    let mut runner = harness::random_system(
        n,
        Capacity::Bounded(1),
        |i| IdlProcess::new(ProcessId::new(i), n, ids[i]),
        2024,
    );
    let mut rng = SimRng::seed_from(31);
    let learner = ProcessId::new(3);

    println!("alternating fault bursts and requests at {learner} (true minID = {true_min}):\n");
    for burst in 1..=8 {
        // A transient fault burst: arbitrary variables AND channel junk.
        CorruptionPlan::full().apply(&mut runner, &mut rng);

        // The user discipline: wait for Done, then request.
        runner
            .run_until(1_000_000, |r| {
                r.process(learner).request() == RequestState::Done
            })
            .expect("corrupted computations drain");
        assert!(runner.process_mut(learner).request_learning());
        let before = runner.step_count();
        harness::run_to_decision(&mut runner, learner, 2_000_000).expect("decision");
        let steps = runner.step_count() - before;

        let got = runner.process(learner).idl().min_id();
        println!(
            "  burst {burst}: first post-fault request decided in {steps:>5} steps, \
             minID = {got} {}",
            if got == true_min {
                "(exact)"
            } else {
                "(WRONG!)"
            }
        );
        assert_eq!(
            got, true_min,
            "the FIRST request after faults is already exact"
        );
    }
    println!(
        "\neight bursts, eight first-request-exact decisions — faults never cost a \
         convergence phase (contrast: a self-stabilizing protocol may answer the first \
         post-fault request wrongly; see `cargo run -p snapstab-bench --bin exp_baseline`)."
    );
}
