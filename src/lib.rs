//! # snapstab-repro — reproduction of *Snap-Stabilization in
//! Message-Passing Systems* (Delaët, Devismes, Nesterenko, Tixeuil, 2008)
//!
//! This meta-crate re-exports the workspace members under one roof:
//!
//! * [`sim`] — the message-passing system model of §2: guarded-action
//!   processes, FIFO bounded/unbounded lossy channels, fair and
//!   adversarial schedulers, arbitrary initial configurations;
//! * [`core`] — the paper's contribution: the snap-stabilizing PIF
//!   (Algorithm 1), IDs-Learning (Algorithm 2), and Mutual Exclusion
//!   (Algorithm 3), plus executable Specifications 1–3 and Property 1 —
//!   and the first application layer the follow-up literature built on
//!   them: snap-stabilizing end-to-end *message forwarding*
//!   (`core::forward`, judged by executable Specification 4);
//! * [`baselines`] — the §4.1 naive PIF and three self-stabilizing
//!   comparators (Afek–Brown ABP, counter flushing, Dijkstra token ring);
//! * [`impossibility`] — Theorem 1 as a program: witness recording, the
//!   adversarial configuration `γ₀`, deterministic replay to the bad
//!   factor;
//! * [`apps`] — the PIF applications the paper names in §4.1 (snapshot,
//!   leader election, reset, phase barrier, termination detection), each
//!   snap-stabilizing by construction on top of Theorem 2;
//! * [`runtime`] — the *live* execution substrate: the same protocols on
//!   real OS threads over a pluggable concurrent transport, with merged
//!   traces the spec checkers accept, and a mutual-exclusion service
//!   front-end absorbing high-volume client request streams;
//! * [`net`] — the UDP datagram backend of the runtime's `Transport`
//!   abstraction: one socket per process, a 16-byte wire header, and the
//!   §4 channel semantics (FIFO, bounded capacity, silent drop-on-full)
//!   enforced in the receive path;
//! * [`mc`] — an exhaustive explicit-state model checker: the 2-process
//!   handshake verified over *every* initial configuration and *every*
//!   interleaving, with machine-found shortest counterexamples for every
//!   undersized flag domain (including the Figure 1 attack, rediscovered
//!   automatically);
//! * [`topology`] — the §5 open extension: tree-structured waves on
//!   general topologies, built from the paper's per-edge handshake with
//!   deferred feedback.
//!
//! The `core::capacity` module makes the §4 bounded-capacity remark
//! *tight*: channels of capacity `c` need exactly `2c + 3` flag values
//! (the paper's five are the `c = 1` instance — and demonstrably break at
//! `c = 2`).
//!
//! See the `examples/` directory for runnable walkthroughs and
//! `snapstab-bench` for the experiment suite that regenerates every paper
//! artifact (EXPERIMENTS.md records the results).
//!
//! ```
//! use snapstab_repro::core::idl::IdlProcess;
//! use snapstab_repro::core::harness;
//! use snapstab_repro::sim::ProcessId;
//!
//! let mut runner = harness::pif_system(3, |i| IdlProcess::new(ProcessId::new(i), 3, 10 + i as u64), 1);
//! runner.process_mut(ProcessId::new(0)).request_learning();
//! harness::run_to_decision(&mut runner, ProcessId::new(0), 100_000).unwrap();
//! assert_eq!(runner.process(ProcessId::new(0)).idl().min_id(), 10);
//! ```

#![forbid(unsafe_code)]

pub use snapstab_apps as apps;
pub use snapstab_baselines as baselines;
pub use snapstab_core as core;
pub use snapstab_impossibility as impossibility;
pub use snapstab_mc as mc;
pub use snapstab_net as net;
pub use snapstab_runtime as runtime;
pub use snapstab_sim as sim;
pub use snapstab_topology as topology;
