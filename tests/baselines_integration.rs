//! Integration tests of the baseline protocols: each baseline's documented
//! failure/convergence behaviour holds on the shared simulator, and the
//! snap-stabilizing counterpart is immune under identical conditions.

use snapstab_repro::baselines::abp::{AbpMsg, AbpProcess};
use snapstab_repro::baselines::counter_flush::{CfMsg, CfProcess};
use snapstab_repro::baselines::naive_pif::{NaiveMsg, NaivePifProcess};
use snapstab_repro::core::pif::{PifApp, PifProcess};
use snapstab_repro::core::request::RequestState;
use snapstab_repro::sim::{
    Capacity, LossModel, NetworkBuilder, ProcessId, RandomScheduler, RoundRobin, Runner,
};

fn p(i: usize) -> ProcessId {
    ProcessId::new(i)
}

#[derive(Clone, Debug)]
struct Answer(u32);

impl PifApp<u32, u32> for Answer {
    fn on_broadcast(&mut self, _from: ProcessId, _data: &u32) -> u32 {
        self.0
    }
    fn on_feedback(&mut self, _from: ProcessId, _data: &u32) {}
}

#[test]
fn naive_deadlocks_where_snap_completes_same_loss_schedule() {
    // Lose exactly the first message on 0 -> 1 in both systems.
    let loss = LossModel::scripted(vec![(p(0), p(1), 0)]);

    let naive_procs: Vec<NaivePifProcess> =
        (0..2).map(|i| NaivePifProcess::new(p(i), 2, 9)).collect();
    let network = NetworkBuilder::new(2)
        .capacity(Capacity::Bounded(1))
        .build();
    let mut naive = Runner::new(naive_procs, network, RoundRobin::new(), 1);
    naive.set_loss(loss.clone());
    naive.process_mut(p(0)).request_broadcast(1);
    naive.run_steps(20_000).expect("run");
    assert_eq!(
        naive.process(p(0)).request(),
        RequestState::In,
        "naive deadlocked"
    );

    let snap_procs: Vec<PifProcess<u32, u32, Answer>> = (0..2)
        .map(|i| PifProcess::with_initial_f(p(i), 2, 0, 0, Answer(9)))
        .collect();
    let network = NetworkBuilder::new(2)
        .capacity(Capacity::Bounded(1))
        .build();
    let mut snap = Runner::new(snap_procs, network, RoundRobin::new(), 1);
    snap.set_loss(loss);
    snap.process_mut(p(0)).request_broadcast(1);
    snap.run_until(20_000, |r| r.process(p(0)).request() == RequestState::Done)
        .expect("snap completes");
    assert_eq!(snap.process(p(0)).request(), RequestState::Done);
}

#[test]
fn abp_eventually_transfers_suffix_after_corruption() {
    // Self-stabilization: after the (possibly violated) first item, the
    // remaining transfers succeed in order.
    let queue: Vec<u32> = (1..=6).collect();
    let processes = vec![
        AbpProcess::sender(queue.clone(), 64),
        AbpProcess::receiver(64),
    ];
    let network = NetworkBuilder::new(2)
        .capacity(Capacity::Bounded(1))
        .build();
    let mut runner = Runner::new(processes, network, RandomScheduler::new(), 8);
    runner
        .network_mut()
        .channel_mut(p(1), p(0))
        .unwrap()
        .preload([AbpMsg::Ack { label: 0 }]); // matches the initial label
    runner
        .run_until(1_000_000, |r| {
            r.process(p(0)).progress() == Some(queue.len())
        })
        .expect("sender finishes");
    let _ = runner.run_steps(200);
    let delivered = runner.process(p(1)).delivered().to_vec();
    // The delivered sequence is a subsequence of the queue and contains a
    // suffix of it.
    let mut qi = 0;
    for d in &delivered {
        while qi < queue.len() && queue[qi] != *d {
            qi += 1;
        }
        assert!(
            qi < queue.len(),
            "delivered {d} out of order: {delivered:?}"
        );
        qi += 1;
    }
    assert!(
        delivered.ends_with(&queue[queue.len() - 3..]),
        "a suffix must transfer cleanly: {delivered:?}"
    );
}

#[test]
fn counter_flush_converges_after_one_wave() {
    // Pollute every channel toward the initiator with a stale reply whose
    // stamp will match the first wave exactly (worst case), then verify
    // waves 2..5 are all clean.
    let n = 3;
    let k = 4;
    let processes: Vec<CfProcess> = (0..n)
        .map(|i| CfProcess::new(p(i), n, k, 100 + i as u32))
        .collect();
    let network = NetworkBuilder::new(n)
        .capacity(Capacity::Bounded(1))
        .build();
    let mut runner = Runner::new(processes, network, RoundRobin::new(), 2);
    for i in 1..n {
        runner
            .network_mut()
            .channel_mut(p(i), p(0))
            .unwrap()
            .preload([CfMsg::Reply { c: 1, data: 666 }]); // counter starts 0; wave 1 is stamped 1
    }
    runner.process_mut(p(0)).request_wave();
    runner
        .run_until(100_000, |r| r.process(p(0)).request() == RequestState::Done)
        .expect("wave 1");
    assert_eq!(
        runner.process(p(0)).collected_from(p(1)),
        Some(666),
        "wave 1 is polluted by construction"
    );
    for wave in 2..=5 {
        runner.process_mut(p(0)).request_wave();
        runner
            .run_until(100_000, |r| r.process(p(0)).request() == RequestState::Done)
            .expect("wave");
        for i in 1..n {
            assert_eq!(
                runner.process(p(0)).collected_from(p(i)),
                Some(100 + i as u32),
                "wave {wave} must be clean (converged)"
            );
        }
    }
}

#[test]
fn naive_msg_and_cf_msg_shapes() {
    // Guard the message contracts the experiments rely on.
    assert_ne!(NaiveMsg::Brd(1), NaiveMsg::Fck(1));
    assert_ne!(CfMsg::Query { c: 1 }, CfMsg::Reply { c: 1, data: 0 });
}
