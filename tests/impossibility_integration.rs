//! End-to-end Theorem 1: the adversarial construction violates mutual
//! exclusion on unbounded channels, cannot exist on bounded channels, and
//! the bounded-channel protocol (the §4 control group) stays safe on the
//! very same witness material.

use snapstab_repro::core::me::{MeConfig, MeProcess, ValueMode};
use snapstab_repro::core::request::RequestState;
use snapstab_repro::impossibility::{
    replay_construction, AdversarialConstruction, DoubleWinDemo, Feasibility, MutualExclusionBad,
};
use snapstab_repro::sim::{Capacity, NetworkBuilder, ProcessId, RoundRobin, Runner, SimError};

fn p(i: usize) -> ProcessId {
    ProcessId::new(i)
}

#[test]
fn full_demo_dichotomy() {
    let demo = DoubleWinDemo::default();
    let outcome = demo.run(&[1, 2, 8]).expect("demo runs");

    // Unbounded: the violation is exhibited with two genuine requesters.
    assert!(outcome.violation_exhibited());
    assert!(outcome.replay.bad_factor_step.is_some());
    assert!(!outcome.report.genuine_overlaps.is_empty());

    // Bounded below the witness requirement: γ₀ does not exist.
    assert!(outcome.max_channel_load > 1);
    for (cap, feasible) in outcome.feasibility {
        match cap {
            Some(c) if c < outcome.max_channel_load => assert!(!feasible),
            Some(_) => {}
            None => assert!(feasible),
        }
    }
}

#[test]
fn construction_compose_and_install_roundtrip() {
    let demo = DoubleWinDemo::default();
    let wa = demo.record_witness(demo.a).expect("witness a");
    let wb = demo.record_witness(demo.b).expect("witness b");
    let windows = vec![&wa, &wb, &wa];
    let construction = AdversarialConstruction::compose(&windows);

    // Feasibility arithmetic matches the witness material.
    assert_eq!(
        construction.max_channel_load(),
        construction
            .channel_preload
            .values()
            .map(Vec::len)
            .max()
            .unwrap()
    );
    assert!(matches!(
        construction.feasibility(Capacity::Bounded(construction.max_channel_load())),
        Feasibility::Feasible
    ));
    assert!(matches!(
        construction.feasibility(Capacity::Bounded(1)),
        Feasibility::Infeasible { .. }
    ));

    // Installation on a bounded runner is refused and non-destructive.
    let config = MeConfig {
        cs_duration: demo.cs_duration,
        value_mode: ValueMode::Corrected,
        ..MeConfig::default()
    };
    let mk = |cap: Capacity| {
        let processes: Vec<MeProcess> = (0..3)
            .map(|i| MeProcess::with_config(p(i), 3, 100 + i as u64, config))
            .collect();
        let network = NetworkBuilder::new(3).capacity(cap).build();
        Runner::new(processes, network, RoundRobin::new(), 1)
    };
    let mut bounded = mk(Capacity::Bounded(1));
    assert!(matches!(
        construction.install(&mut bounded),
        Err(SimError::CapacityExceeded { .. })
    ));
    assert!(bounded.network().is_quiescent());

    // Installation on unbounded succeeds; the plain round-robin replay also
    // reaches the bad factor (the protagonist-priority replay is merely
    // deterministic about it).
    let mut unbounded = mk(Capacity::Unbounded);
    construction.install(&mut unbounded).expect("install");
    assert_eq!(
        unbounded.network().messages_in_flight(),
        construction.total_preloaded()
    );
    unbounded.mark(demo.a, "request");
    unbounded.mark(demo.b, "request");
    let report =
        replay_construction(&mut unbounded, &construction, &MutualExclusionBad).expect("replay");
    assert_eq!(report.moves_remaining, 0, "every recorded move replayed");
}

#[test]
fn witness_replay_is_deterministic() {
    // The same demo run twice produces identical violation steps —
    // everything is a pure function of the seeds.
    let demo = DoubleWinDemo::default();
    let a = demo.run(&[1]).expect("first run");
    let b = demo.run(&[1]).expect("second run");
    assert_eq!(a.replay.bad_factor_step, b.replay.bad_factor_step);
    assert_eq!(a.max_channel_load, b.max_channel_load);
    assert_eq!(a.total_preloaded, b.total_preloaded);
}

#[test]
fn protagonists_actually_requested_in_replay() {
    // The violation involves *requesting* processes (footnote 1 makes
    // anything else vacuous): both protagonists' intervals are genuine.
    let demo = DoubleWinDemo::default();
    let outcome = demo.run(&[1]).expect("demo runs");
    let (x, y) = outcome.report.genuine_overlaps[0];
    assert!(x.genuine && y.genuine);
    let pair = [x.p, y.p];
    assert!(pair.contains(&demo.a) && pair.contains(&demo.b));
}

#[test]
fn larger_system_also_violates() {
    let demo = DoubleWinDemo {
        n: 4,
        a: p(1),
        b: p(3),
        cs_duration: 8,
        seed: 0xF00,
        max_steps: 4_000_000,
    };
    let outcome = demo.run(&[1]).expect("demo runs");
    assert!(outcome.violation_exhibited());
}

#[test]
fn bounded_control_group_never_overlaps_on_witness_seeds() {
    // The §4 side: the same protocol, same seeds, bounded channels, random
    // corrupted starts — no genuine overlap (the T4 experiment measures
    // this broadly; here a quick spot check inside the test suite).
    use snapstab_repro::core::spec::analyze_me_trace;
    use snapstab_repro::sim::{CorruptionPlan, SimRng};
    for seed in 0..4 {
        let config = MeConfig {
            cs_duration: 8,
            value_mode: ValueMode::Corrected,
            ..MeConfig::default()
        };
        let processes: Vec<MeProcess> = (0..3)
            .map(|i| MeProcess::with_config(p(i), 3, 100 + i as u64, config))
            .collect();
        let network = NetworkBuilder::new(3)
            .capacity(Capacity::Bounded(1))
            .build();
        let mut runner = Runner::new(processes, network, RoundRobin::new(), seed);
        let mut rng = SimRng::seed_from(seed);
        CorruptionPlan::full().apply(&mut runner, &mut rng);
        for i in 1..3 {
            if runner.process(p(i)).request() == RequestState::Done {
                runner.mark(p(i), "request");
                runner.process_mut(p(i)).request_cs();
            }
        }
        runner.run_steps(120_000).expect("run");
        let report = analyze_me_trace(runner.trace(), 3);
        assert!(report.exclusivity_holds(), "seed {seed}");
    }
}
