//! Cross-backend conformance: the event-driven multiplexed runtime
//! (`MuxRunner`, N protocol instances over a small worker pool) is
//! equivalent to the thread-per-process backend (`LiveRunner`) under the
//! executable specifications — the same seeded workload driven through
//! both backends yields merged traces that the *same* Specification 3/4
//! checkers accept, with matching service totals.
//!
//! On top of the pairwise proptests, this file holds the scale
//! regressions the thread backend cannot reach — a seeded live PIF wave
//! at n = 1024 judged by Specification 1, and an n = 256 mutex run
//! judged by Specification 3 — and the chaos-on-mux sweep: seeded fault
//! bursts against the mux backend healed with zero manual intervention,
//! judged by the epoch-segmented Specification 3.
//!
//! The scale tests calibrate first on a mid-size wave and skip with a
//! warning when the box is too slow to finish inside the CI step's
//! 4-minute hard timeout (the same convention as the UDP skip guards).

use std::time::{Duration, Instant};

use proptest::prelude::*;
use snapstab_repro::core::pif::{PifApp, PifProcess};
use snapstab_repro::core::request::RequestState;
use snapstab_repro::core::spec::{
    analyze_forwarding_trace, analyze_me_epochs, analyze_me_trace, check_pif_wave,
};
use snapstab_repro::runtime::{
    run_forwarding_service, run_forwarding_service_mux, run_mutex_service,
    run_mutex_service_chaos_mux_on, run_mutex_service_mux, ChaosMix, ChaosPlan,
    ForwardingServiceConfig, InMemory, LiveConfig, MutexServiceConfig, MuxRunner, RuntimeBackend,
    TraceDetail,
};
use snapstab_repro::sim::ProcessId;

fn p(i: usize) -> ProcessId {
    ProcessId::new(i)
}

/// Echoes a fixed per-process feedback value (the same app shape as
/// `tests/live_runtime.rs`).
#[derive(Clone, Debug)]
struct Echo(u32);

impl PifApp<u32, u32> for Echo {
    fn on_broadcast(&mut self, _from: ProcessId, _data: &u32) -> u32 {
        self.0
    }
    fn on_feedback(&mut self, _from: ProcessId, _data: &u32) {}
}

type Proc = PifProcess<u32, u32, Echo>;

fn pif_fleet(n: usize) -> Vec<Proc> {
    (0..n)
        .map(|i| PifProcess::with_initial_f(p(i), n, 0, 0, Echo(100 + i as u32)))
        .collect()
}

/// One seeded PIF wave on the mux backend; asserts Specification 1 on
/// the merged trace and returns the wall-clock time to decision.
fn mux_pif_wave(n: usize, workers: usize, loss: f64, seed: u64, timeout: Duration) -> Duration {
    let cfg = LiveConfig {
        loss,
        seed,
        ..LiveConfig::default()
    };
    let started = Instant::now();
    let mut runner =
        MuxRunner::spawn_with_drivers(pif_fleet(n), (0..n).map(|_| None).collect(), cfg, workers);
    let payload = 7 + seed as u32;
    let request_step = runner.with_process_ctx(p(0), move |proc: &mut Proc, scribe| {
        let step = scribe.mark("request");
        assert!(proc.request_broadcast(payload));
        step
    });
    let decided = runner.wait_until(
        p(0),
        |proc: &Proc| proc.request() == RequestState::Done,
        timeout,
    );
    assert!(
        decided,
        "mux wave must decide (n={n}, workers={workers}, loss={loss}, seed={seed})"
    );
    let wall = started.elapsed();
    let report = runner.stop();
    let verdict = check_pif_wave(
        &report.trace,
        p(0),
        n,
        request_step,
        &payload,
        |q| 100 + q.index() as u32,
        |e| Some(e),
    );
    assert!(
        verdict.holds(),
        "mux Spec 1 verdict failed (n={n}, loss={loss}, seed={seed}): {verdict:?}"
    );
    wall
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]

    /// Property: the same seeded mutex workload driven through the
    /// thread backend and the mux backend yields two merged traces the
    /// same Specification 3 checker accepts, with identical service
    /// totals — the backends are interchangeable under the spec.
    #[test]
    fn mutex_backends_agree_under_spec3(
        seed in any::<u64>(),
        n in 3usize..5,
        loss_tier in 0usize..3,
    ) {
        let loss = [0.0, 0.1, 0.3][loss_tier];
        let cfg = MutexServiceConfig {
            n,
            requests_per_process: 2,
            cs_duration: 0,
            live: LiveConfig {
                loss,
                seed,
                ..LiveConfig::default()
            },
            time_budget: Duration::from_secs(40),
        };
        let total = 2 * n as u64;

        let threads = run_mutex_service(&cfg);
        let mux = run_mutex_service_mux(&cfg, 2);
        prop_assert_eq!(threads.served, total, "threads backend serves all");
        prop_assert_eq!(mux.served, total, "mux backend serves all");
        prop_assert_eq!(threads.injected, mux.injected, "same workload injected");

        for (backend, report) in [("threads", &threads), ("mux", &mux)] {
            let trace = report.trace.as_ref().expect("recording on");
            let me = analyze_me_trace(trace, n);
            prop_assert!(
                me.exclusivity_holds(),
                "{} genuine CS overlap: {:?}", backend, me.genuine_overlaps
            );
            prop_assert!(me.all_served(), "{} unserved: {:?}", backend, me.unserved);
            prop_assert_eq!(me.served.len(), total as usize, "{} served set", backend);
            // Link-counter sanity holds identically on both backends:
            // nothing delivered that was never enqueued, nothing
            // enqueued that was never sent.
            let links = &report.stats.links;
            prop_assert!(links.sends >= links.enqueued, "{} sends", backend);
            prop_assert!(links.enqueued >= links.delivered, "{} enqueued", backend);
            prop_assert!(links.delivered > 0, "{} delivered nothing", backend);
        }
    }

    /// Property: the forwarding service — adversarially stale-pre-filled
    /// buffers, arbitrary seed and loss tier — delivers every payload on
    /// both backends and both merged traces pass Specification 4.
    #[test]
    fn forwarding_backends_agree_under_spec4(
        seed in any::<u64>(),
        loss_tier in 0usize..2,
    ) {
        let loss = [0.0, 0.1][loss_tier];
        let n = 3;
        let cfg = ForwardingServiceConfig {
            n,
            payloads_per_process: 2,
            buffer_cap: 4,
            prefill_stale: true,
            live: LiveConfig {
                loss,
                seed,
                ..LiveConfig::default()
            },
            time_budget: Duration::from_secs(40),
        };
        let total = 2 * n as u64;

        let threads = run_forwarding_service(&cfg);
        let mux = run_forwarding_service_mux(&cfg, 2);
        prop_assert_eq!(threads.delivered, total, "threads backend delivers all");
        prop_assert_eq!(mux.delivered, total, "mux backend delivers all");

        for (backend, report) in [("threads", &threads), ("mux", &mux)] {
            let trace = report.trace.as_ref().expect("recording on");
            let spec = analyze_forwarding_trace(trace, n);
            prop_assert!(
                spec.holds(),
                "{} Spec 4 failed: lost {:?}, duplicates {:?}, corrupt {:?}, spurious {}",
                backend, spec.lost, spec.duplicate_ids, spec.corrupt_deliveries, spec.spurious
            );
        }
    }
}

/// Mid-size calibration wave: decides whether this box can finish the
/// n = 1024 scale regression inside the CI step's 4-minute budget.
/// Returns `None` (after printing a warning) when it cannot.
fn calibrate(test: &str) -> Option<Duration> {
    let calib = mux_pif_wave(64, 4, 0.0, 0xCA11B, Duration::from_secs(60));
    // The n = 1024 wave moves ~16× the messages of the n = 64 one
    // through the same pool; a box that needs more than 10s here
    // cannot finish the big wave inside the CI budget.
    if calib > Duration::from_secs(10) {
        eprintln!(
            "warning: under-provisioned box (n=64 mux wave took {calib:?}); skipping `{test}`"
        );
        return None;
    }
    Some(calib)
}

/// The scale regression the thread backend cannot reach: a seeded live
/// PIF wave across 1024 protocol instances on a 4-worker pool, judged by
/// the *unchanged* Specification 1 checker on the merged trace.
#[test]
fn mux_pif_wave_at_n_1024_passes_spec1() {
    if calibrate("mux_pif_wave_at_n_1024_passes_spec1").is_none() {
        return;
    }
    let wall = mux_pif_wave(1024, 4, 0.0, 0xB16, Duration::from_secs(150));
    eprintln!("n=1024 mux PIF wave decided in {wall:?}");
}

/// One mutex service run on the mux backend with a *spec-detail* trace
/// (markers and spec-relevant protocol events only — all Specification
/// 3 reads, and the only recording mode whose trace stays proportional
/// to protocol decisions rather than the leader's continuous wave
/// traffic at scale).
///
/// Specification 3's safety half — exclusivity — is asserted
/// unconditionally on whatever the run produced. Completeness (every
/// request served) is asserted only when the run finished inside its
/// budget: a budget-capped partial run means the box is too slow for
/// this n (skip material, returns `None`), while a run that stalls
/// *with budget to spare* is a genuine liveness failure and panics.
/// A completed run returns its wall clock.
fn mux_mutex_spec3_run(n: usize, budget: Duration) -> Option<Duration> {
    let cfg = MutexServiceConfig {
        n,
        requests_per_process: 1,
        cs_duration: 0,
        live: LiveConfig {
            seed: 0x256 + n as u64,
            detail: TraceDetail::Spec,
            ..LiveConfig::default()
        },
        time_budget: budget,
    };
    let report = run_mutex_service_mux(&cfg, 4);
    let trace = report.trace.as_ref().expect("recording on");
    let me = analyze_me_trace(trace, n);
    assert!(
        me.exclusivity_holds(),
        "genuine CS overlap at n={n}: {:?}",
        me.genuine_overlaps
    );
    if report.served < n as u64 {
        assert!(
            report.wall >= budget.mul_f64(0.9),
            "mux mutex service stalled at n={n}: served {}/{n} with budget to spare",
            report.served
        );
        eprintln!(
            "warning: under-provisioned box (served {}/{n} inside {budget:?} at n={n})",
            report.served
        );
        return None;
    }
    assert!(me.all_served(), "unserved at n={n}: {:?}", me.unserved);
    Some(report.wall)
}

/// A 256-instance mutex service run on the mux backend — four times past
/// the thread backend's practical ceiling — judged by Specification 3.
/// The n = 64 stage is a full Specification 3 check in its own right
/// and doubles as the provisioning probe: a box (or an unoptimized
/// debug build) the probe already saturates skips the n = 256 stage
/// with a warning instead of flaking; exclusivity is still asserted on
/// every trace this test produces.
#[test]
fn mux_mutex_service_at_n_256_passes_spec3() {
    // The single-leader rotation costs ~n² per full pass over the
    // requesters, so a probe the box cannot clear briskly predicts an
    // n = 256 stage far past the CI budget — skip before burning it.
    let Some(w64) = mux_mutex_spec3_run(64, Duration::from_secs(45)) else {
        eprintln!("skipping the n=256 stage");
        return;
    };
    if w64 > Duration::from_secs(4) {
        eprintln!(
            "warning: under-provisioned box (n=64 mux mutex probe took {w64:?}); \
             skipping the n=256 stage"
        );
        return;
    }
    match mux_mutex_spec3_run(256, Duration::from_secs(120)) {
        Some(w256) => eprintln!("n=256 mux mutex run served all in {w256:?}"),
        None => eprintln!("n=256 stage budget-capped; exclusivity checked on the partial trace"),
    }
}

/// Chaos on the mux backend: seeded `all`-mix fault bursts — state
/// corruption of *instances* (not threads), crash storms healed by the
/// supervisor's per-instance activity watchdog, partitions, drop
/// storms — against a running mux service, judged per epoch by
/// Specification 3 with zero manual intervention.
#[test]
fn mux_chaos_all_mix_passes_epoch_spec3() {
    let n = 3;
    let mut bursts = 0u32;
    for seed in 1..=4u64 {
        let cfg = MutexServiceConfig {
            n,
            requests_per_process: 6,
            cs_duration: 0,
            live: LiveConfig {
                loss: 0.0,
                seed,
                record_trace: true,
                ..LiveConfig::default()
            },
            time_budget: Duration::from_secs(30),
        };
        let plan = ChaosPlan {
            bursts: 2,
            quiet: Duration::from_millis(15),
            disruption: Duration::from_millis(15),
            ..ChaosPlan::profile(ChaosMix::All, seed)
        };
        let (report, chaos) =
            run_mutex_service_chaos_mux_on(&cfg, 2, &InMemory, &plan).expect("in-mem");
        assert_eq!(
            report.served,
            cfg.requests_per_process * n as u64,
            "every request served despite chaos on mux (seed {seed})"
        );
        assert_eq!(
            chaos.bursts_fired, plan.bursts,
            "every planned burst lands mid-run (seed {seed})"
        );
        let trace = report.trace.as_ref().expect("chaos runs record the trace");
        let epochs = analyze_me_epochs(trace, n, &chaos.fault_steps);
        assert!(
            epochs.holds(),
            "per-epoch Spec 3 must hold on mux (seed {seed}): {epochs:?}"
        );
        assert_eq!(
            epochs.epochs_checked(),
            chaos.fault_steps.len() + 1,
            "one epoch per authoritative corruption mark, plus the initial one"
        );
        bursts += chaos.bursts_fired;
    }
    assert_eq!(bursts, 8, "4 seeds × 2 bursts");
}

/// Instance-level fault targeting: `crash` marks an *instance* inert
/// while its pool worker keeps running its siblings, and `restart`
/// re-enqueues it — the wave blocked by the crash completes only after
/// the restart, on a single-worker pool hosting all instances.
#[test]
fn mux_instance_crash_is_independent_of_workers() {
    let n = 4;
    let mut runner = MuxRunner::spawn(pif_fleet(n), LiveConfig::default(), 1);
    assert!(runner.crash(p(2)), "first crash reports true");
    runner.with_process(p(0), |m: &mut Proc| assert!(m.request_broadcast(9)));
    // The wave needs P2's feedback; with P2 crashed it must not decide.
    let decided = runner.wait_until(
        p(0),
        |m: &Proc| m.request() == RequestState::Done,
        Duration::from_millis(300),
    );
    assert!(!decided, "wave must block while an instance is crashed");
    assert!(runner.restart(p(2)), "restart reports true");
    assert!(
        runner.wait_until(
            p(0),
            |m: &Proc| m.request() == RequestState::Done,
            Duration::from_secs(30),
        ),
        "wave must decide after the instance restarts"
    );
    let report = runner.stop();
    let markers: Vec<&str> = report.trace.markers().map(|(_, _, l)| l).collect();
    assert!(markers.contains(&"crash") && markers.contains(&"restart"));
}
