//! Live-vs-sim conformance: the executable specifications of
//! `snapstab_core::spec` accept merged traces of *live* multi-threaded
//! runs exactly as they accept simulated ones, across seeds and loss
//! rates — plus a crash/restart stress over a lossy transport.
//!
//! Every test here self-terminates well under 60 seconds: waits are
//! bounded, and a bound miss is a failure, not a hang.

use std::time::Duration;

use proptest::prelude::*;
use snapstab_repro::core::me::{MeConfig, MeProcess};
use snapstab_repro::core::pif::{PifApp, PifProcess};
use snapstab_repro::core::request::RequestState;
use snapstab_repro::core::spec::{analyze_me_trace, check_pif_wave};
use snapstab_repro::runtime::{run_mutex_service, LiveConfig, LiveRunner, MutexServiceConfig};
use snapstab_repro::sim::{
    Capacity, LossModel, NetworkBuilder, ProcessId, RandomScheduler, Runner,
};

fn p(i: usize) -> ProcessId {
    ProcessId::new(i)
}

/// Echoes a fixed per-process feedback value (the same app shape as the
/// PIF unit tests, duplicated here because that one is `cfg(test)`).
#[derive(Clone, Debug)]
struct Echo(u32);

impl PifApp<u32, u32> for Echo {
    fn on_broadcast(&mut self, _from: ProcessId, _data: &u32) -> u32 {
        self.0
    }
    fn on_feedback(&mut self, _from: ProcessId, _data: &u32) {}
}

type Proc = PifProcess<u32, u32, Echo>;

fn pif_fleet(n: usize) -> Vec<Proc> {
    (0..n)
        .map(|i| PifProcess::with_initial_f(p(i), n, 0, 0, Echo(100 + i as u32)))
        .collect()
}

/// One live PIF wave under the given loss; returns whether Specification 1
/// held on the merged trace.
fn live_pif_wave_holds(n: usize, loss: f64, seed: u64) -> bool {
    let cfg = LiveConfig {
        loss,
        seed,
        jitter: Some(Duration::from_micros(200)),
        ..LiveConfig::default()
    };
    let mut runner = LiveRunner::spawn(pif_fleet(n), cfg);
    let payload = 7 + seed as u32;
    let request_step = runner.with_process_ctx(p(0), move |proc: &mut Proc, scribe| {
        let step = scribe.mark("request");
        assert!(proc.request_broadcast(payload));
        step
    });
    let decided = runner.wait_until(
        p(0),
        |proc: &Proc| proc.request() == RequestState::Done,
        Duration::from_secs(30),
    );
    assert!(
        decided,
        "live wave must decide (n={n}, loss={loss}, seed={seed})"
    );
    let report = runner.stop();
    let verdict = check_pif_wave(
        &report.trace,
        p(0),
        n,
        request_step,
        &payload,
        |q| 100 + q.index() as u32,
        |e| Some(e),
    );
    assert!(
        verdict.holds(),
        "live Spec 1 verdict failed (n={n}, loss={loss}, seed={seed}): {verdict:?}"
    );
    verdict.holds()
}

/// The same wave in the deterministic simulator; returns whether
/// Specification 1 held.
fn sim_pif_wave_holds(n: usize, loss: f64, seed: u64) -> bool {
    let network = NetworkBuilder::new(n)
        .capacity(Capacity::Bounded(1))
        .build();
    let mut runner = Runner::new(pif_fleet(n), network, RandomScheduler::new(), seed);
    if loss > 0.0 {
        runner.set_loss(LossModel::probabilistic(loss));
    }
    let payload = 7 + seed as u32;
    runner.mark(p(0), "request");
    let request_step = runner.step_count();
    assert!(runner.process_mut(p(0)).request_broadcast(payload));
    runner
        .run_until(2_000_000, |r| {
            r.process(p(0)).request() == RequestState::Done
        })
        .expect("sim wave runs");
    let verdict = check_pif_wave(
        runner.trace(),
        p(0),
        n,
        request_step,
        &payload,
        |q| 100 + q.index() as u32,
        |e| Some(e),
    );
    verdict.holds()
}

/// The acceptance sweep: ≥100 seeded live runs across loss ∈ {0, 0.1,
/// 0.3}, every merged trace passing the Specification 1 checker, and the
/// matching simulator run passing the *same* predicate.
#[test]
fn live_pif_waves_satisfy_spec_across_seeds_and_loss() {
    let mut runs = 0;
    for &loss in &[0.0, 0.1, 0.3] {
        for seed in 0..34 {
            assert!(live_pif_wave_holds(3, loss, seed));
            runs += 1;
        }
        // The simulator agrees on the predicate for a sample of the seeds
        // (conformance: same checker, same verdict).
        for seed in 0..4 {
            assert!(
                sim_pif_wave_holds(3, loss, seed),
                "sim spec1 loss={loss} seed={seed}"
            );
        }
    }
    assert!(
        runs >= 100,
        "acceptance requires at least 100 live runs, got {runs}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]

    /// Property: a live mutual-exclusion service run — arbitrary seed,
    /// size and loss tier — yields a merged trace on which Specification 3
    /// holds (no two genuine critical sections overlap, every request
    /// served), exactly as a seeded simulator run of the same protocol
    /// does.
    #[test]
    fn live_me_service_trace_satisfies_spec3(
        seed in any::<u64>(),
        n in 3usize..5,
        loss_tier in 0usize..3,
    ) {
        let loss = [0.0, 0.1, 0.3][loss_tier];
        let cfg = MutexServiceConfig {
            n,
            requests_per_process: 2,
            cs_duration: 0,
            live: LiveConfig {
                loss,
                seed,
                jitter: Some(Duration::from_micros(100)),
                ..LiveConfig::default()
            },
            time_budget: Duration::from_secs(40),
        };
        let report = run_mutex_service(&cfg);
        let total = 2 * n as u64;
        prop_assert_eq!(report.served, total, "all live requests served");
        let trace = report.trace.expect("recording on");
        let me = analyze_me_trace(&trace, n);
        prop_assert!(
            me.exclusivity_holds(),
            "live genuine CS overlap: {:?}",
            me.genuine_overlaps
        );
        prop_assert!(me.all_served(), "unserved in live trace: {:?}", me.unserved);
        prop_assert_eq!(me.served.len(), total as usize);

        // The simulator run of the same fleet passes the same predicates.
        let processes: Vec<MeProcess> = (0..n)
            .map(|i| MeProcess::with_config(p(i), n, 100 + i as u64, MeConfig::default()))
            .collect();
        let network = NetworkBuilder::new(n).capacity(Capacity::Bounded(1)).build();
        let mut sim = Runner::new(processes, network, RandomScheduler::new(), seed);
        if loss > 0.0 {
            sim.set_loss(LossModel::probabilistic(loss));
        }
        let mut pending = vec![2u32; n];
        let mut executed = 0u64;
        while executed < 400_000 && pending.iter().any(|&r| r > 0) {
            executed += sim.run_steps(500).expect("sim run").steps;
            for (i, left) in pending.iter_mut().enumerate() {
                if *left > 0 && sim.process(p(i)).request() == RequestState::Done {
                    sim.mark(p(i), "request");
                    sim.process_mut(p(i)).request_cs();
                    *left -= 1;
                }
            }
        }
        // Let the last injected requests drain.
        let _ = sim.run_until(2_000_000, |r| {
            (0..n).all(|i| r.process(p(i)).request() == RequestState::Done)
        });
        let sim_report = analyze_me_trace(sim.trace(), n);
        prop_assert!(sim_report.exclusivity_holds(), "sim genuine CS overlap");
        prop_assert!(sim_report.all_served(), "sim unserved: {:?}", sim_report.unserved);
    }
}

/// Stress: a lossy jittered transport, one worker thread crashed mid-run
/// and restarted — the snap-stabilizing service serves every request and
/// the merged trace still satisfies mutual exclusion.
#[test]
fn lossy_crash_restart_stress_serves_everyone() {
    let n = 4;
    let processes: Vec<MeProcess> = (0..n)
        .map(|i| MeProcess::with_config(p(i), n, 100 + i as u64, MeConfig::default()))
        .collect();
    let cfg = LiveConfig {
        loss: 0.1,
        seed: 0xDEAD,
        jitter: Some(Duration::from_micros(100)),
        ..LiveConfig::default()
    };
    let mut runner = LiveRunner::spawn(processes, cfg);

    // First round of requests at every process.
    for i in 0..n {
        runner.with_process_ctx(p(i), |m: &mut MeProcess, scribe| {
            scribe.mark("request");
            assert!(m.request_cs());
        });
    }
    // Kill worker 2's thread mid-protocol; traffic keeps flowing among
    // the others, its inbox backlogs against the capacity bound.
    runner.crash(p(2));
    std::thread::sleep(Duration::from_millis(30));
    runner.restart(p(2));

    for i in 0..n {
        assert!(
            runner.wait_until(
                p(i),
                |m: &MeProcess| m.request() == RequestState::Done,
                Duration::from_secs(40),
            ),
            "request at P{i} must be served despite loss and the crash/restart"
        );
    }
    let report = runner.stop();
    let me = analyze_me_trace(&report.trace, n);
    assert!(
        me.exclusivity_holds(),
        "genuine CS overlap under crash/restart: {:?}",
        me.genuine_overlaps
    );
    assert!(me.all_served(), "unserved: {:?}", me.unserved);
    assert!(report.stats.links.lost_in_transit > 0, "loss was active");
    let markers: Vec<&str> = report.trace.markers().map(|(_, _, l)| l).collect();
    assert!(markers.contains(&"crash") && markers.contains(&"restart"));
}

/// The live runtime honours the §4 drop-on-full rule: with capacity-1
/// links and a flood of retransmissions, drops happen and the protocol
/// still decides (losses on a fair-lossy link are semantically harmless).
#[test]
fn drop_on_full_is_live_and_harmless() {
    let mut runner = LiveRunner::spawn(pif_fleet(3), LiveConfig::default());
    runner.with_process(p(0), |m: &mut Proc| assert!(m.request_broadcast(5)));
    assert!(runner.wait_until(
        p(0),
        |m: &Proc| m.request() == RequestState::Done,
        Duration::from_secs(30),
    ));
    let report = runner.stop();
    assert!(
        report.stats.links.sends >= report.stats.links.enqueued,
        "sends {} < enqueued {}",
        report.stats.links.sends,
        report.stats.links.enqueued
    );
}
