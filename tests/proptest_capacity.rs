// Index loops over parallel per-process arrays read clearer than enumerate here.
#![allow(clippy::needless_range_loop)]
//! Property-based tests for the bounded-capacity extension: the
//! `2c + 3`-valued handshake keeps every specification intact for
//! *arbitrary* capacities, seeds and corruption draws, and the stale
//! adversary can never exceed its proven `2c + 1` increment bound.

use proptest::prelude::*;
use snapstab_repro::core::capacity::{max_stale, StaleConfig};
use snapstab_repro::core::flag::{Flag, FlagDomain};
use snapstab_repro::core::idl::IdlProcess;
use snapstab_repro::core::pif::{PifApp, PifProcess};
use snapstab_repro::core::request::RequestState;
use snapstab_repro::core::spec::check_bare_pif_wave;
use snapstab_repro::sim::{
    Capacity, CorruptionPlan, LossModel, NetworkBuilder, ProcessId, RandomScheduler, Runner, SimRng,
};

fn p(i: usize) -> ProcessId {
    ProcessId::new(i)
}

#[derive(Clone, Debug)]
struct Answer(u32);

impl PifApp<u32, u32> for Answer {
    fn on_broadcast(&mut self, _from: ProcessId, _data: &u32) -> u32 {
        self.0
    }
    fn on_feedback(&mut self, _from: ProcessId, _data: &u32) {}
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 20, .. ProptestConfig::default() })]

    /// The stale adversary never drives `State_p[q]` past `2c + 1` against
    /// the generalized domain, for any configuration and schedule family.
    #[test]
    fn stale_bound_is_never_exceeded(
        capacity in 1usize..4,
        seed in any::<u64>(),
        schedules in 1u64..6,
    ) {
        let domain = FlagDomain::for_capacity(capacity);
        let mut rng = SimRng::seed_from(seed);
        let cfg = StaleConfig::arbitrary(&mut rng, capacity, domain);
        let out = max_stale(&cfg, schedules);
        prop_assert!(
            out.max_stale_flag <= Flag::new(2 * capacity as u8 + 1),
            "capacity {capacity}: {out:?}"
        );
        prop_assert!(!out.stale_decided);
        prop_assert!(out.completed, "Termination");
    }

    /// One value short of the required domain, the canonical adversary
    /// always completes a wave on stale data — the bound is tight for
    /// every capacity.
    #[test]
    fn one_value_short_always_breaks(capacity in 1usize..5) {
        let undersized = FlagDomain::with_max(2 * capacity as u8 + 1);
        let cfg = StaleConfig::canonical(capacity, undersized);
        let out = max_stale(&cfg, 0);
        prop_assert!(out.stale_decided, "capacity {capacity}: {out:?}");
    }

    /// Specification 1 holds at any sampled capacity with the matching
    /// domain, from arbitrary corrupted starts, with loss.
    #[test]
    fn pif_spec1_holds_at_any_capacity(
        capacity in 1usize..4,
        n in 2usize..5,
        seed in any::<u64>(),
        loss in 0u8..3,
    ) {
        let loss = f64::from(loss) * 0.1;
        let processes: Vec<PifProcess<u32, u32, Answer>> = (0..n)
            .map(|i| PifProcess::for_capacity(p(i), n, 0, 0, capacity, Answer(100 + i as u32)))
            .collect();
        let network = NetworkBuilder::new(n).capacity(Capacity::Bounded(capacity)).build();
        let mut runner = Runner::new(processes, network, RandomScheduler::new(), seed);
        if loss > 0.0 {
            runner.set_loss(LossModel::probabilistic(loss));
        }
        let mut rng = SimRng::seed_from(seed ^ 0xCAFE);
        CorruptionPlan::full().apply(&mut runner, &mut rng);

        let _ = runner.run_until(500_000, |r| r.process(p(0)).request() == RequestState::Done);
        let req_step = runner.step_count();
        prop_assert!(runner.process_mut(p(0)).request_broadcast(9));
        runner
            .run_until(5_000_000, |r| r.process(p(0)).request() == RequestState::Done)
            .expect("wave decides");
        let verdict =
            check_bare_pif_wave(runner.trace(), p(0), n, req_step, &9, |q| 100 + q.index() as u32);
        prop_assert!(verdict.holds(), "{verdict:?}");
    }

    /// IDs-Learning stays exact over multi-message channels.
    #[test]
    fn idl_exact_at_any_capacity(
        capacity in 1usize..4,
        n in 2usize..5,
        seed in any::<u64>(),
    ) {
        let ids: Vec<u64> = (0..n).map(|i| 1 + ((i as u64) * 653 + seed % 97) % 4000).collect();
        prop_assume!({
            let mut sorted = ids.clone();
            sorted.sort_unstable();
            sorted.windows(2).all(|w| w[0] != w[1])
        });
        let min = *ids.iter().min().expect("non-empty");
        let processes = (0..n)
            .map(|i| IdlProcess::for_capacity(p(i), n, ids[i], capacity))
            .collect();
        let network = NetworkBuilder::new(n).capacity(Capacity::Bounded(capacity)).build();
        let mut runner = Runner::new(processes, network, RandomScheduler::new(), seed);
        let mut rng = SimRng::seed_from(seed ^ 0xBEEF);
        CorruptionPlan::full().apply(&mut runner, &mut rng);

        let _ = runner.run_until(500_000, |r| {
            (0..n).all(|i| r.process(p(i)).request() != RequestState::Wait)
        });
        if runner.process(p(0)).request() != RequestState::Done {
            runner
                .run_until(2_000_000, |r| r.process(p(0)).request() == RequestState::Done)
                .expect("drain");
        }
        prop_assert!(runner.process_mut(p(0)).request_learning());
        runner
            .run_until(2_000_000, |r| r.process(p(0)).request() == RequestState::Done)
            .expect("IDL decides");
        prop_assert_eq!(runner.process(p(0)).idl().min_id(), min);
        for q in 1..n {
            prop_assert_eq!(runner.process(p(0)).idl().id_of(p(q)), ids[q]);
        }
    }

    /// Mismatched deployments (domain sized for a smaller capacity than
    /// the channels actually hold) are vulnerable: the canonical adversary
    /// completes a wave on stale data whenever `domain < 2c + 3`.
    #[test]
    fn mismatched_domain_is_always_vulnerable(
        capacity in 2usize..5,
        deficit in 1usize..3,
    ) {
        prop_assume!(capacity > deficit);
        let domain = FlagDomain::for_capacity(capacity - deficit);
        let cfg = StaleConfig::canonical(capacity, domain);
        let out = max_stale(&cfg, 0);
        prop_assert!(out.stale_decided, "capacity {capacity}, domain {domain:?}: {out:?}");
    }
}
