//! Property-based tests of the simulator substrate: channel/network
//! invariants and execution determinism under arbitrary drive.

use proptest::prelude::*;
use snapstab_repro::core::idl::IdlProcess;
use snapstab_repro::core::request::RequestState;
use snapstab_repro::sim::{
    Capacity, Channel, CorruptionPlan, LossModel, Network, NetworkBuilder, ProcessId, Protocol,
    RandomScheduler, RoundRobin, Runner, SimRng, SystemView, TraceEvent,
};

fn p(i: usize) -> ProcessId {
    ProcessId::new(i)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, .. ProptestConfig::default() })]

    /// A bounded channel never exceeds its capacity under any offer/pop
    /// interleaving, and preserves FIFO order of the accepted messages.
    #[test]
    fn channel_capacity_and_fifo(
        cap in 1usize..5,
        ops in proptest::collection::vec(any::<Option<u16>>(), 1..200),
    ) {
        let mut ch: Channel<u16> = Channel::new(Capacity::Bounded(cap));
        let mut model: std::collections::VecDeque<u16> = Default::default();
        for op in ops {
            match op {
                Some(v) => {
                    let accepted = ch.offer(v).is_enqueued();
                    prop_assert_eq!(accepted, model.len() < cap);
                    if accepted {
                        model.push_back(v);
                    }
                }
                None => {
                    prop_assert_eq!(ch.pop(), model.pop_front());
                }
            }
            prop_assert!(ch.len() <= cap);
            prop_assert_eq!(ch.len(), model.len());
        }
        let drained: Vec<u16> = std::iter::from_fn(|| ch.pop()).collect();
        let expected: Vec<u16> = model.into_iter().collect();
        prop_assert_eq!(drained, expected);
    }

    /// Message conservation over a full protocol run: enqueued sends plus
    /// pre-loaded messages equal deliveries plus what is still in flight.
    #[test]
    fn message_conservation(seed in any::<u64>(), n in 2usize..6) {
        let processes: Vec<IdlProcess> =
            (0..n).map(|i| IdlProcess::new(p(i), n, 10 + i as u64)).collect();
        let network = NetworkBuilder::new(n).capacity(Capacity::Bounded(1)).build();
        let mut runner = Runner::new(processes, network, RandomScheduler::new(), seed);
        runner.set_loss(LossModel::probabilistic(0.2));
        let mut rng = SimRng::seed_from(seed);
        CorruptionPlan::full().apply(&mut runner, &mut rng);
        let preloaded = runner.network().messages_in_flight() as u64;
        runner.process_mut(p(0)).request_learning();
        runner.run_steps(20_000).expect("run");
        let stats = runner.stats();
        let in_flight = runner.network().messages_in_flight() as u64;
        prop_assert_eq!(
            stats.sends_enqueued + preloaded,
            stats.deliveries + in_flight,
            "conservation: {:?}", stats
        );
        // And the trace agrees with the counters.
        let sent_in_trace = runner.trace().count(|e| matches!(
            e,
            TraceEvent::Sent { fate: snapstab_repro::sim::trace::SendFate::Enqueued, .. }
        )) as u64;
        prop_assert_eq!(sent_in_trace, stats.sends_enqueued);
        let delivered_in_trace =
            runner.trace().count(|e| matches!(e, TraceEvent::Delivered { .. })) as u64;
        prop_assert_eq!(delivered_in_trace, stats.deliveries);
    }

    /// Executions are a pure function of the seeds: identical runs produce
    /// identical traces, stats and final states.
    #[test]
    fn execution_is_deterministic(seed in any::<u64>()) {
        let run = || {
            let n = 4;
            let processes: Vec<IdlProcess> =
                (0..n).map(|i| IdlProcess::new(p(i), n, 10 + i as u64)).collect();
            let network = NetworkBuilder::new(n).capacity(Capacity::Bounded(1)).build();
            let mut runner = Runner::new(processes, network, RandomScheduler::new(), seed);
            runner.set_loss(LossModel::probabilistic(0.3));
            let mut rng = SimRng::seed_from(seed ^ 1);
            CorruptionPlan::full().apply(&mut runner, &mut rng);
            runner.process_mut(p(1)).request_learning();
            runner.run_steps(5_000).expect("run");
            (
                format!("{:?}", runner.stats()),
                format!("{:?}", runner.trace().entries().len()),
                format!("{:?}", (0..n).map(|i| runner.process(p(i)).snapshot()).collect::<Vec<_>>()),
            )
        };
        prop_assert_eq!(run(), run());
    }

    /// The corruption plan always respects channel capacity, and protocol
    /// state domains survive (request is one of the three values, flags in
    /// domain) — `I = C`, not `I ⊋ C`.
    #[test]
    fn corruption_stays_inside_the_configuration_space(
        seed in any::<u64>(),
        n in 2usize..6,
        cap in 1usize..4,
    ) {
        let processes: Vec<IdlProcess> =
            (0..n).map(|i| IdlProcess::new(p(i), n, 10 + i as u64)).collect();
        let network = NetworkBuilder::new(n).capacity(Capacity::Bounded(cap)).build();
        let mut runner = Runner::new(processes, network, RandomScheduler::new(), seed);
        let mut rng = SimRng::seed_from(seed);
        CorruptionPlan {
            corrupt_processes: true,
            corrupt_channels: true,
            max_preload_per_channel: cap,
        }
        .apply(&mut runner, &mut rng);
        for (f, t) in runner.network().links().collect::<Vec<_>>() {
            let ch = runner.network().channel(f, t).unwrap();
            prop_assert!(ch.len() <= cap);
            for m in ch.iter() {
                prop_assert!(m.sender_state.value() <= 4);
                prop_assert!(m.echoed_state.value() <= 4);
            }
        }
        for i in 0..n {
            let proc = runner.process(p(i));
            prop_assert!(matches!(
                proc.request(),
                RequestState::Wait | RequestState::In | RequestState::Done
            ));
            prop_assert_eq!(proc.idl().my_id(), 10 + i as u64, "identities are constants");
        }
    }

    /// Quiescence detection is sound: when the runner reports quiescence,
    /// no message is in flight and no internal action is enabled.
    #[test]
    fn quiescence_is_sound(seed in any::<u64>()) {
        let n = 3;
        let processes: Vec<IdlProcess> =
            (0..n).map(|i| IdlProcess::new(p(i), n, 10 + i as u64)).collect();
        let network = NetworkBuilder::new(n).capacity(Capacity::Bounded(1)).build();
        let mut runner = Runner::new(processes, network, RandomScheduler::new(), seed);
        runner.process_mut(p(0)).request_learning();
        let out = runner.run_until_quiescent(5_000_000).expect("wave drains");
        prop_assert!(out.is_quiescent());
        prop_assert_eq!(runner.network().messages_in_flight(), 0);
        prop_assert_eq!(runner.process(p(0)).request(), RequestState::Done);
    }

    /// The incrementally maintained non-empty-link set equals a fresh
    /// O(n²) scan after *any* sequence of sends, deliveries, guarded
    /// channel edits (preload / set_contents / clear), snapshot restores
    /// and full clears.
    #[test]
    fn incremental_links_equal_fresh_scan(
        n in 2usize..6,
        ops in proptest::collection::vec(any::<u64>(), 1..150),
    ) {
        let mut nw: Network<u16> =
            NetworkBuilder::new(n).capacity(Capacity::Bounded(2)).build();
        let mut snapshot = nw.snapshot();
        for op in ops {
            let from = p((op >> 8) as usize % n);
            let to = p((op >> 16) as usize % n);
            if from == to {
                continue;
            }
            match op % 7 {
                0 | 1 => {
                    nw.send(from, to, (op >> 24) as u16);
                }
                2 => {
                    let _ = nw.deliver(from, to);
                }
                3 => {
                    nw.channel_mut(from, to).unwrap().preload([1, 2]);
                }
                4 => {
                    nw.channel_mut(from, to).unwrap().set_contents([(op >> 24) as u16]);
                }
                5 => {
                    nw.channel_mut(from, to).unwrap().clear();
                }
                _ => {
                    if op & 0x80 == 0 {
                        snapshot = nw.snapshot();
                    } else {
                        nw.restore(&snapshot);
                    }
                }
            }
            let scan = nw.scan_non_empty_links();
            prop_assert_eq!(
                nw.non_empty_links(),
                scan.as_slice(),
                "incremental live set diverged from the scan"
            );
            prop_assert_eq!(
                nw.is_quiescent(),
                nw.messages_in_flight() == 0,
                "O(1) quiescence diverged from the message count"
            );
        }
    }

    /// The incremental step loop is observationally identical to the
    /// historical implementation that rebuilt the scheduler view from
    /// scratch each step: driving a runner through `step()` produces the
    /// same moves and a bit-identical trace as a replica whose moves are
    /// recomputed per step from a full O(n²) scan.
    #[test]
    fn incremental_step_loop_matches_rebuild_reference(
        seed in any::<u64>(),
        n in 2usize..5,
    ) {
        let build = || {
            let processes: Vec<IdlProcess> =
                (0..n).map(|i| IdlProcess::new(p(i), n, 10 + i as u64)).collect();
            let network = NetworkBuilder::new(n).capacity(Capacity::Bounded(1)).build();
            let mut runner = Runner::new(processes, network, RoundRobin::new(), seed);
            runner.process_mut(p(0)).request_learning();
            runner
        };
        let mut fast = build();
        let mut reference = build();
        // Replica of RoundRobin over a view rebuilt from scratch (the
        // pre-refactor semantics: applicable moves = activations in id
        // order, then links in row-major order).
        let mut cursor = 0usize;
        for _ in 0..600 {
            let fast_move = fast.step().expect("step");
            let enabled: Vec<bool> = (0..n)
                .map(|i| reference.process(p(i)).has_enabled_action())
                .collect();
            let links = reference.network().scan_non_empty_links();
            let view = SystemView::from_parts(enabled, links);
            let moves = view.applicable_moves();
            let reference_move = if moves.is_empty() {
                None
            } else {
                let mv = moves[cursor % moves.len()];
                cursor += 1;
                reference.execute_move(mv).expect("replay");
                Some(mv)
            };
            prop_assert_eq!(fast_move, reference_move);
            if fast_move.is_none() {
                break;
            }
        }
        prop_assert_eq!(
            format!("{:?}", fast.trace().entries()),
            format!("{:?}", reference.trace().entries()),
            "traces diverged between incremental and rebuild-per-step execution"
        );
    }

    /// The delta-based link resync in the runner's cached view agrees with
    /// a crash-filtered fresh scan under any interleaving of steps,
    /// guarded harness channel edits (which bump the link version several
    /// times between refreshes) and crashes.
    #[test]
    fn delta_link_resync_matches_filtered_scan(
        seed in any::<u64>(),
        n in 2usize..5,
        ops in proptest::collection::vec(any::<u64>(), 1..80),
    ) {
        let processes: Vec<IdlProcess> =
            (0..n).map(|i| IdlProcess::new(p(i), n, 10 + i as u64)).collect();
        let network = NetworkBuilder::new(n).capacity(Capacity::Bounded(2)).build();
        let mut runner = Runner::new(processes, network, RoundRobin::new(), seed);
        runner.process_mut(p(0)).request_learning();
        for op in ops {
            let from = p((op >> 8) as usize % n);
            let to = p((op >> 16) as usize % n);
            match op % 5 {
                0 => {
                    let _ = runner.step().expect("step");
                }
                1 if from != to => {
                    runner
                        .network_mut()
                        .channel_mut(from, to)
                        .unwrap()
                        .preload([snapstab_repro::core::pif::PifMsg {
                            broadcast: snapstab_repro::core::idl::IdlQuery,
                            feedback: (op >> 24) & 0xFF,
                            sender_state: snapstab_repro::core::flag::Flag::new((op % 5) as u8),
                            echoed_state: snapstab_repro::core::flag::Flag::new((op % 3) as u8),
                        }]);
                }
                2 if from != to => {
                    runner.network_mut().channel_mut(from, to).unwrap().clear();
                }
                3 if op % 11 == 3 => {
                    runner.crash(from);
                }
                _ => {
                    let _ = runner.step().expect("step");
                }
            }
            let crashed: Vec<bool> = (0..n).map(|i| runner.is_crashed(p(i))).collect();
            let expected: Vec<_> = runner
                .network()
                .scan_non_empty_links()
                .into_iter()
                .filter(|(_, to)| !crashed[to.index()])
                .collect();
            prop_assert_eq!(
                runner.view().non_empty_links(),
                expected.as_slice(),
                "delta-refreshed view diverged from the filtered scan"
            );
        }
    }
}
