//! Telemetry pipeline conformance: the snapshot monitor composed with
//! the *multiplexed* runtime backend, judged by executable
//! Specification 5 across loss tiers × chaos mixes; multi-initiator
//! runs whose decided cuts are attributed per requesting ledger; cut
//! differencing through `telemetry::Series`; and threshold alerts
//! recorded as `alert:` marks in the same merged trace the spec judges.
//!
//! Sized for a single-core CI runner under the telemetry step's
//! 4-minute timeout.

use std::time::Duration;

use snapstab_repro::core::spec::{analyze_me_epochs, analyze_snapshot_trace};
use snapstab_repro::runtime::{
    alert_marks, project_service_trace, run_monitored_mutex_service_chaos_mux_on,
    run_monitored_mutex_service_mux_on, AlertConfig, AlertKind, ChaosMix, ChaosPlan, InMemory,
    LiveConfig, MonitorConfig, MutexServiceConfig, Series,
};

const LOSS_TIERS: [f64; 3] = [0.0, 0.1, 0.3];
const WORKERS: usize = 2;

fn mutex_cfg(n: usize, loss: f64, seed: u64) -> MutexServiceConfig {
    MutexServiceConfig {
        n,
        requests_per_process: 3,
        cs_duration: 0,
        live: LiveConfig {
            loss,
            seed,
            record_trace: true,
            ..LiveConfig::default()
        },
        time_budget: Duration::from_secs(60),
    }
}

fn fast_monitor(initiators: usize) -> MonitorConfig {
    MonitorConfig {
        interval: Duration::from_millis(5),
        initiators,
        ..MonitorConfig::default()
    }
}

/// Monitored mutex on the mux pool across loss tiers: all requests
/// served, at least one cut spans the multiplexed instances, and the
/// merged trace passes Specification 5 with zero fabrications.
#[test]
fn monitored_mux_across_loss_tiers() {
    for (k, &loss) in LOSS_TIERS.iter().enumerate() {
        let n = 4;
        let cfg = mutex_cfg(n, loss, 90 + k as u64);
        let report = run_monitored_mutex_service_mux_on(&cfg, &fast_monitor(1), WORKERS, &InMemory)
            .expect("in-memory spawns");
        assert_eq!(
            report.served,
            cfg.requests_per_process * n as u64,
            "loss {loss}: monitoring must not eat requests"
        );
        assert!(!report.monitor.cuts.is_empty(), "loss {loss}: no cuts");
        let trace = report.trace.as_ref().expect("recording on");
        let spec = analyze_snapshot_trace(trace, n, &[]);
        assert!(spec.holds(), "loss {loss}: {spec:?}");
        assert!(spec.fabricated.is_empty());
        assert_eq!(spec.cuts_decided(), report.monitor.cuts.len());
    }
}

/// K = 2 initiators on the mux pool: every decided cut is attributed
/// to the ledger that requested it, the per-initiator tallies from the
/// live report agree with the spec verdict's, and `Series` differences
/// each ledger's chain independently.
#[test]
fn monitored_mux_multi_initiator_attribution_and_series() {
    let n = 4;
    let cfg = mutex_cfg(n, 0.1, 97);
    let mon = fast_monitor(2);
    let report = run_monitored_mutex_service_mux_on(&cfg, &mon, WORKERS, &InMemory)
        .expect("in-memory spawns");
    assert_eq!(report.served, cfg.requests_per_process * n as u64);
    assert_eq!(report.monitor.initiators, 2);
    assert!(!report.monitor.cuts.is_empty());

    let trace = report.trace.as_ref().expect("recording on");
    let spec = analyze_snapshot_trace(trace, n, &[]);
    assert!(spec.holds(), "{spec:?}");
    for stats in report.monitor.per_initiator() {
        assert_eq!(
            spec.cuts_of(stats.initiator),
            stats.cuts as usize,
            "ledger {:?}: live tally vs trace verdict",
            stats.initiator
        );
        assert_eq!(spec.refused_of(stats.initiator), stats.refused as usize);
    }

    // Differencing runs per ledger: the first point of each chain has
    // no predecessor (zero rates), later points difference against the
    // same initiator's previous cut only.
    let mut series = Series::default();
    let mut firsts = 0;
    let mut last_cut = [None::<u64>; 2];
    for cut in &report.monitor.cuts {
        let point = series.observe(cut);
        assert_eq!(point.initiator, cut.initiator);
        assert_eq!(point.served_total, cut.served_total());
        let slot = &mut last_cut[cut.initiator.index()];
        if slot.is_none() {
            assert_eq!(point.served_per_sec, 0.0, "first point of a chain");
            firsts += 1;
        }
        assert!(slot.is_none_or(|prev| prev < cut.cut));
        *slot = Some(cut.cut);
        let line = point.json_line();
        assert!(line.starts_with("{\"type\":\"cut\",\"initiator\":"));
    }
    assert!(
        (1..=2).contains(&firsts),
        "one chain head per active ledger"
    );
}

/// Monitor-on-mux under chaos: the composite instances are corrupted,
/// crashed and partitioned while multiplexed over the worker pool.
/// Spec 5 must hold with the authoritative fault steps, and the
/// projected service trace must satisfy Spec 3 per epoch.
#[test]
fn monitored_mux_under_chaos_all_mixes() {
    for (k, mix) in [ChaosMix::Corrupt, ChaosMix::Crash, ChaosMix::All]
        .into_iter()
        .enumerate()
    {
        let n = 4;
        let seed = 110 + k as u64;
        let cfg = mutex_cfg(n, 0.0, seed);
        let plan = ChaosPlan {
            bursts: 2,
            quiet: Duration::from_millis(15),
            disruption: Duration::from_millis(15),
            ..ChaosPlan::profile(mix, seed)
        };
        let (report, chaos) = run_monitored_mutex_service_chaos_mux_on(
            &cfg,
            &fast_monitor(1),
            WORKERS,
            &InMemory,
            &plan,
        )
        .expect("in-memory spawns");
        assert_eq!(chaos.bursts_fired, 2, "{mix:?}");
        assert_eq!(
            report.served,
            cfg.requests_per_process * n as u64,
            "{mix:?}: chaos must not eat requests"
        );
        let trace = report.trace.as_ref().expect("recording on");
        let spec = analyze_snapshot_trace(trace, n, &chaos.fault_steps);
        assert!(spec.holds(), "{mix:?}: {spec:?}");
        assert!(spec.cuts_decided() > 0, "{mix:?}: cuts must survive");
        let service = project_service_trace(trace);
        let epochs = analyze_me_epochs(&service, n, &chaos.fault_steps);
        assert!(epochs.holds(), "{mix:?}: {epochs:?}");
    }
}

/// The refusal-streak alert demo: repeated corruption bursts scramble
/// the monitor ledger and in-flight collections faster than the 1 ms
/// cut schedule can land clean waves, so the honest outcome — refuse,
/// never fabricate — arrives in streaks. The alert must fire, be
/// recorded as an `alert:` mark in the merged trace (where it is
/// ignored by — and so cannot break — Specification 5), and agree with
/// the spec's own per-ledger streak accounting.
#[test]
fn refusal_streak_alert_fires_under_chaos_and_lands_in_trace() {
    let n = 3;
    let seed = 131;
    let mut cfg = MutexServiceConfig {
        requests_per_process: 30,
        ..mutex_cfg(n, 0.3, seed)
    };
    // Delivery jitter stretches every wave past the cut schedule, so a
    // corrupted ledger meets several request attempts before it heals.
    cfg.live.jitter = Some(Duration::from_millis(2));
    let mon = MonitorConfig {
        interval: Duration::from_millis(1),
        initiators: 1,
        alerts: AlertConfig {
            refusal_streak: 2,
            ..AlertConfig::default()
        },
    };
    let plan = ChaosPlan {
        bursts: 8,
        quiet: Duration::from_millis(5),
        disruption: Duration::from_millis(12),
        ..ChaosPlan::profile(ChaosMix::Corrupt, seed)
    };
    let (report, chaos) =
        run_monitored_mutex_service_chaos_mux_on(&cfg, &mon, WORKERS, &InMemory, &plan)
            .expect("in-memory spawns");
    assert_eq!(
        report.served,
        cfg.requests_per_process * n as u64,
        "alerting must not eat requests"
    );
    let streak_alerts: Vec<_> = report
        .monitor
        .alerts
        .iter()
        .filter(|a| a.kind == AlertKind::RefusalStreak)
        .collect();
    assert!(
        !streak_alerts.is_empty(),
        "a 1ms schedule under corruption chaos must out-pace the waves \
         (refused {} times)",
        report.monitor.refused
    );

    let trace = report.trace.as_ref().expect("recording on");
    let marks = alert_marks(trace);
    for alert in &streak_alerts {
        assert!(
            marks
                .iter()
                .any(|(_, p, label)| { *p == alert.initiator && *label == alert.mark() }),
            "alert {alert:?} must be recorded in the merged trace"
        );
    }

    // The alerted streak really happened, per the spec's own ledger
    // accounting — and alert marks don't perturb the verdict.
    let spec = analyze_snapshot_trace(trace, n, &chaos.fault_steps);
    assert!(spec.holds(), "{spec:?}");
    let first = streak_alerts[0];
    assert!(
        spec.max_refusal_streak_of(first.initiator) >= first.streak as usize,
        "trace shows streak >= {}, alert claims {}",
        spec.max_refusal_streak_of(first.initiator),
        first.streak
    );
}
