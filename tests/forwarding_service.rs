//! Specification 4 acceptance for the forwarding subsystem, across every
//! substrate: ≥100 seeded simulator runs over loss ∈ {0, 0.1, 0.3} from
//! adversarial initial configurations (corrupted handshake state,
//! stale-pre-filled buffers, arbitrary channel contents), live
//! in-memory runs with stale-pre-filled buffers, proptest sim-vs-live
//! conformance on the shared deterministic workload, and a
//! skip-and-warn UDP forwarding run (`tests/udp_runtime.rs` style).
//!
//! Every trace — simulated or merged from live worker logs — is judged
//! by the *same* executable Specification 4 checker
//! ([`analyze_forwarding_trace`]): every injected payload delivered to
//! its destination exactly once with intact data, nothing lost; stale
//! pre-start flushes are reported (`spurious`/`stale_duplicates`)
//! rather than judged, and the live stale test below additionally pins
//! them to at-most-once.
//!
//! Every test self-terminates well under 60 seconds.

use std::time::Duration;

use proptest::prelude::*;
use snapstab_repro::core::forward::{run_sim_forwarding, SimForwardConfig};
use snapstab_repro::core::spec::analyze_forwarding_trace;
use snapstab_repro::net::{udp_available, UdpLoopback};
use snapstab_repro::runtime::{
    run_forwarding_service, run_forwarding_service_on, ForwardingServiceConfig, LiveConfig,
};

/// Skip-and-warn guard: returns `true` (and prints a warning) when the
/// sandbox forbids UDP loopback sockets.
fn skip_without_udp(test: &str) -> bool {
    if udp_available() {
        return false;
    }
    eprintln!("warning: UDP loopback unavailable in this sandbox; skipping `{test}`");
    true
}

/// The Specification 4 acceptance sweep on the simulator: 34 seeds × 3
/// loss tiers = 102 runs, every one starting from a fully adversarial
/// initial configuration (corrupted per-hop flags and acks,
/// stale-pre-filled lanes and transfer slots, arbitrary channel
/// contents), every trace passing the checker.
#[test]
fn sim_forwarding_spec4_holds_across_seeds_and_loss() {
    for &loss in &[0.0, 0.1, 0.3] {
        for seed in 0..34 {
            let cfg = SimForwardConfig {
                n: 4,
                payloads_per_process: 2,
                buffer_cap: 2,
                loss,
                seed,
                corrupt: true,
                ..SimForwardConfig::default()
            };
            let report = run_sim_forwarding(&cfg);
            assert_eq!(
                report.delivered, 8,
                "loss {loss}, seed {seed}: every injected payload delivered"
            );
            let spec = analyze_forwarding_trace(&report.trace, cfg.n);
            assert!(spec.holds(), "loss {loss}, seed {seed}: {spec:?}");
            assert_eq!(spec.delivered.len(), 8);
        }
    }
}

/// The live counterpart: seeded runs across the same loss tiers on the
/// in-memory transport, buffers adversarially pre-filled before the
/// workers spawn, merged traces passing the same checker.
#[test]
fn live_forwarding_spec4_holds_across_seeds_and_loss() {
    for &loss in &[0.0, 0.1, 0.3] {
        for seed in 0..2 {
            let cfg = ForwardingServiceConfig {
                n: 4,
                payloads_per_process: 2,
                buffer_cap: 2,
                prefill_stale: true,
                live: LiveConfig {
                    loss,
                    seed,
                    jitter: Some(Duration::from_micros(100)),
                    ..LiveConfig::default()
                },
                time_budget: Duration::from_secs(45),
            };
            let report = run_forwarding_service(&cfg);
            assert_eq!(
                report.delivered, 8,
                "loss {loss}, seed {seed}: every payload delivered live"
            );
            let trace = report.trace.expect("recording on by default");
            let spec = analyze_forwarding_trace(&trace, cfg.n);
            assert!(spec.holds(), "loss {loss}, seed {seed}: {spec:?}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 5, ..ProptestConfig::default() })]

    /// Property: a live forwarding run — arbitrary seed, line length and
    /// buffer capacity, lossy and jittered, stale-pre-filled buffers —
    /// delivers every injected payload and its merged trace satisfies
    /// Specification 4.
    #[test]
    fn live_forwarding_conforms(
        seed in any::<u64>(),
        n in 3usize..6,
        buffer_cap in 1usize..4,
    ) {
        let cfg = ForwardingServiceConfig {
            n,
            payloads_per_process: 2,
            buffer_cap,
            prefill_stale: true,
            live: LiveConfig {
                loss: 0.1,
                seed,
                jitter: Some(Duration::from_micros(100)),
                ..LiveConfig::default()
            },
            time_budget: Duration::from_secs(40),
        };
        let report = run_forwarding_service(&cfg);
        prop_assert_eq!(report.delivered, 2 * n as u64, "all live payloads delivered");
        let trace = report.trace.expect("recording on by default");
        let spec = analyze_forwarding_trace(&trace, n);
        prop_assert!(spec.holds(), "live spec 4 failed: {:?}", spec);
    }

    /// The simulator mirror of the same service passes the same
    /// predicate on the same deterministic workload stream
    /// (`forward_workload` keyed by the seed) — same protocol, same
    /// checker, only the substrate differs.
    #[test]
    fn sim_forwarding_conforms(
        seed in any::<u64>(),
        n in 3usize..6,
        buffer_cap in 1usize..4,
    ) {
        let cfg = SimForwardConfig {
            n,
            payloads_per_process: 2,
            buffer_cap,
            loss: 0.1,
            seed,
            corrupt: true,
            ..SimForwardConfig::default()
        };
        let report = run_sim_forwarding(&cfg);
        prop_assert_eq!(report.delivered, 2 * n as u64, "all sim payloads delivered");
        let spec = analyze_forwarding_trace(&report.trace, n);
        prop_assert!(spec.holds(), "sim spec 4 failed: {:?}", spec);
    }
}

/// Forwarding over real UDP loopback sockets: the same service, the same
/// Specification 4 checker, the kernel's datagram stack underneath —
/// skipped with a warning where the sandbox forbids sockets.
#[test]
fn udp_forwarding_spec4_holds() {
    if skip_without_udp("udp_forwarding_spec4_holds") {
        return;
    }
    for &(loss, seed) in &[(0.0, 0xF0D0u64), (0.1, 0xF0D1), (0.3, 0xF0D3)] {
        let cfg = ForwardingServiceConfig {
            n: 3,
            payloads_per_process: 2,
            buffer_cap: 2,
            prefill_stale: true,
            live: LiveConfig {
                loss,
                seed,
                ..LiveConfig::default()
            },
            time_budget: Duration::from_secs(45),
        };
        let report =
            run_forwarding_service_on(&cfg, &UdpLoopback::new()).expect("bind loopback sockets");
        assert_eq!(
            report.delivered, 6,
            "loss {loss}: every payload delivered over UDP"
        );
        let trace = report.trace.expect("recording on by default");
        let spec = analyze_forwarding_trace(&trace, cfg.n);
        assert!(spec.holds(), "loss {loss}: {spec:?}");
    }
}

/// Stale pre-filled entries must be flushed end-to-end at most once
/// each *when only the buffers are corrupted*: `prefill_stale` loads
/// lanes and transfer slots but leaves the hop flags idle, so every
/// stale entry's handshake starts from flag 0 and the per-hop
/// exactly-once argument covers it. (`holds()` does not judge stale
/// flushes — corrupted *mid-climb flags* can legitimately double-flush
/// a slot entry — so this test asserts `stale_duplicates` explicitly.)
#[test]
fn live_stale_flushes_are_at_most_once() {
    let cfg = ForwardingServiceConfig {
        n: 5,
        payloads_per_process: 1,
        buffer_cap: 4,
        prefill_stale: true,
        live: LiveConfig {
            seed: 0x57A1E,
            ..LiveConfig::default()
        },
        time_budget: Duration::from_secs(45),
    };
    let report = run_forwarding_service(&cfg);
    assert_eq!(report.delivered, 5);
    let trace = report.trace.expect("recording on by default");
    let spec = analyze_forwarding_trace(&trace, cfg.n);
    assert!(spec.holds(), "{spec:?}");
    // Buffers-only corruption ⇒ clean handshakes ⇒ no stale id flushed
    // twice. `holds()` deliberately does not check this; assert it
    // directly.
    assert!(
        spec.stale_duplicates.is_empty(),
        "clean-flag stale entries must flush at most once: {:?}",
        spec.stale_duplicates
    );
    // Whatever was flushed spuriously is visible in both the report and
    // the spec analysis.
    assert!(
        spec.spurious >= report.spurious as usize,
        "trace sees at least the collected flushes \
         (some may still be buffered at stop): {} < {}",
        spec.spurious,
        report.spurious
    );
}
