// Inline generic runner/checker types in assertions; aliasing them would hide
// which instantiation is under test.
#![allow(clippy::type_complexity)]
//! Cross-crate validation of the model checker:
//!
//! 1. **Conformance (bisimulation)** — the MC transition function and the
//!    real `PifCore` agree on every protocol-visible variable along random
//!    walks from random corrupted configurations;
//! 2. **Counterexample replay** — an attack path found by the checker
//!    against an undersized domain *executes on the real protocol* and
//!    breaks Specification 1 there too;
//! 3. the headline verdicts (paper safe, undersizings broken) as tests.

use snapstab_repro::core::flag::{Flag, FlagDomain};
use snapstab_repro::core::pif::{PifApp, PifMsg, PifProcess};
use snapstab_repro::core::request::RequestState;
use snapstab_repro::mc::{
    apply, explore, successors, Config, Fifo, McMove, MsgPq, MsgQp, Params, ReqP, ReqQ, SeedSet,
};
use snapstab_repro::sim::{Capacity, Move, NetworkBuilder, ProcessId, RoundRobin, Runner, SimRng};

fn p0() -> ProcessId {
    ProcessId::new(0)
}
fn p1() -> ProcessId {
    ProcessId::new(1)
}

#[derive(Clone, Debug)]
struct Echo;

impl PifApp<u32, u32> for Echo {
    fn on_broadcast(&mut self, _from: ProcessId, _data: &u32) -> u32 {
        1
    }
    fn on_feedback(&mut self, _from: ProcessId, _data: &u32) {}
}

type Proc = PifProcess<u32, u32, Echo>;

/// Builds the real 2-process system mirroring an MC configuration.
fn realize(config: &Config, params: Params) -> Runner<Proc, RoundRobin> {
    let domain = FlagDomain::with_max(params.max_flag());
    let mk = |i: usize| PifProcess::with_domain(ProcessId::new(i), 2, 0u32, 0u32, domain, Echo);
    let network = NetworkBuilder::new(2)
        .capacity(Capacity::Bounded(params.cap))
        .build();
    let mut runner = Runner::new(vec![mk(0), mk(1)], network, RoundRobin::new(), 0);

    {
        let p = runner.process_mut(p0());
        let mut s = p.core().snapshot();
        s.request = match config.req_p {
            ReqP::In => RequestState::In,
            ReqP::Done => RequestState::Done,
        };
        s.state[1] = Flag::new(config.state_p);
        s.neig_state[1] = Flag::new(config.neig_p);
        p.core_mut().restore(s);
    }
    {
        let q = runner.process_mut(p1());
        let mut s = q.core().snapshot();
        s.request = match config.req_q {
            ReqQ::Wait => RequestState::Wait,
            ReqQ::In => RequestState::In,
            ReqQ::Done => RequestState::Done,
        };
        s.state[0] = Flag::new(config.state_q);
        s.neig_state[0] = Flag::new(config.neig_q);
        q.core_mut().restore(s);
    }
    runner
        .network_mut()
        .channel_mut(p0(), p1())
        .unwrap()
        .preload(config.pq.iter().map(|m: MsgPq| PifMsg {
            broadcast: 0u32,
            feedback: 0u32,
            sender_state: Flag::new(m.sender),
            echoed_state: Flag::new(m.echoed),
        }));
    runner
        .network_mut()
        .channel_mut(p1(), p0())
        .unwrap()
        .preload(config.qp.iter().map(|m: MsgQp| PifMsg {
            broadcast: 0u32,
            feedback: 0u32,
            sender_state: Flag::new(m.sender),
            echoed_state: Flag::new(m.echoed),
        }));
    runner
}

/// Protocol-visible observation of the real system, for comparison.
fn observe(
    runner: &Runner<Proc, RoundRobin>,
) -> (
    RequestState,
    u8,
    u8,
    RequestState,
    u8,
    u8,
    Vec<(u8, u8)>,
    Vec<(u8, u8)>,
) {
    let flags = |msgs: Vec<PifMsg<u32, u32>>| {
        msgs.iter()
            .map(|m| (m.sender_state.value(), m.echoed_state.value()))
            .collect::<Vec<_>>()
    };
    (
        runner.process(p0()).request(),
        runner.process(p0()).core().state_of(p1()).value(),
        runner.process(p0()).core().neig_state_of(p1()).value(),
        runner.process(p1()).request(),
        runner.process(p1()).core().state_of(p0()).value(),
        runner.process(p1()).core().neig_state_of(p0()).value(),
        flags(runner.network().channel(p0(), p1()).unwrap().contents()),
        flags(runner.network().channel(p1(), p0()).unwrap().contents()),
    )
}

/// The same observation of an MC configuration.
fn observe_mc(
    c: &Config,
) -> (
    RequestState,
    u8,
    u8,
    RequestState,
    u8,
    u8,
    Vec<(u8, u8)>,
    Vec<(u8, u8)>,
) {
    (
        match c.req_p {
            ReqP::In => RequestState::In,
            ReqP::Done => RequestState::Done,
        },
        c.state_p,
        c.neig_p,
        match c.req_q {
            ReqQ::Wait => RequestState::Wait,
            ReqQ::In => RequestState::In,
            ReqQ::Done => RequestState::Done,
        },
        c.state_q,
        c.neig_q,
        c.pq.iter().map(|m| (m.sender, m.echoed)).collect(),
        c.qp.iter().map(|m| (m.sender, m.echoed)).collect(),
    )
}

fn mirror_move(mv: McMove) -> Option<Move> {
    match mv {
        McMove::ActivateP => Some(Move::Activate(p0())),
        McMove::ActivateQ => Some(Move::Activate(p1())),
        McMove::DeliverPq => Some(Move::Deliver {
            from: p0(),
            to: p1(),
        }),
        McMove::DeliverQp => Some(Move::Deliver {
            from: p1(),
            to: p0(),
        }),
        // Losses are mirrored by popping the channel head directly.
        McMove::LosePq | McMove::LoseQp => None,
    }
}

/// Random seed in the MC seed space.
fn random_config(params: Params, rng: &mut SimRng) -> Config {
    let f = |rng: &mut SimRng| rng.gen_range(0..params.m as usize) as u8;
    let mut pq = Fifo::empty();
    for _ in 0..rng.gen_range(0..params.cap + 1) {
        let _ = pq.push(
            MsgPq {
                sender: f(rng),
                echoed: f(rng),
                genuine: false,
            },
            params.cap,
        );
    }
    let mut qp = Fifo::empty();
    for _ in 0..rng.gen_range(0..params.cap + 1) {
        let _ = qp.push(
            MsgQp {
                sender: f(rng),
                echoed: f(rng),
                echo_genuine: false,
                fb_genuine: false,
            },
            params.cap,
        );
    }
    Config {
        req_p: ReqP::In,
        state_p: f(rng),
        neig_p: f(rng),
        req_q: match rng.gen_range(0..3) {
            0 => ReqQ::Wait,
            1 => ReqQ::In,
            _ => ReqQ::Done,
        },
        state_q: f(rng),
        neig_q: f(rng),
        g_neig_q: false,
        g_fmes_q: false,
        pq,
        qp,
    }
}

#[test]
fn mc_model_bisimulates_the_real_protocol() {
    // 60 random walks × 40 steps, at both supported capacities.
    for (params, walks) in [(Params::paper(), 40u64), (Params::new(7, 2), 20)] {
        for walk in 0..walks {
            let mut rng = SimRng::seed_from(walk * 131 + params.cap as u64);
            let mut mc = random_config(params, &mut rng);
            let mut real = realize(&mc, params);
            assert_eq!(
                observe_mc(&mc),
                observe(&real),
                "initial mirror, walk {walk}"
            );

            for step in 0..40 {
                let succ = successors(&mc, params);
                if succ.is_empty() {
                    break;
                }
                let (mv, mc_step) = succ[rng.gen_range(0..succ.len())];
                // Mirror on the real system.
                match mirror_move(mv) {
                    Some(real_mv) => real.execute_move(real_mv).expect("mirrored move applies"),
                    None => {
                        // A loss: pop the same channel head.
                        let (a, b) = if mv == McMove::LosePq {
                            (p0(), p1())
                        } else {
                            (p1(), p0())
                        };
                        real.network_mut()
                            .channel_mut(a, b)
                            .unwrap()
                            .pop()
                            .expect("loss mirrors a non-empty channel");
                    }
                }
                mc = mc_step.next;
                assert_eq!(
                    observe_mc(&mc),
                    observe(&real),
                    "divergence at walk {walk} step {step} after {mv:?}"
                );
            }
        }
    }
}

#[test]
fn counterexample_replays_as_a_real_attack() {
    // Find the shortest attack against the undersized 4-value domain…
    let params = Params::new(4, 1);
    let report = explore(params, &SeedSet::Exhaustive, 10_000_000);
    let cex = report.violation.expect("m = 4 breaks");

    // …and run it against the real protocol.
    let mut runner = realize(&cex.seed, params);
    let req_step = runner.step_count();
    runner.mark(p0(), "request");
    for &mv in &cex.moves {
        match mirror_move(mv) {
            Some(real_mv) => runner.execute_move(real_mv).expect("attack move applies"),
            None => {
                let (a, b) = if mv == McMove::LosePq {
                    (p0(), p1())
                } else {
                    (p1(), p0())
                };
                runner
                    .network_mut()
                    .channel_mut(a, b)
                    .unwrap()
                    .pop()
                    .expect("loss applies");
            }
        }
    }
    // The handshake completed on stale data: State_p[q] is at the domain
    // max although q never received any post-start message of p…
    assert_eq!(
        runner.process(p0()).core().state_of(p1()),
        Flag::new(params.max_flag()),
        "the attack completes the handshake"
    );
    // …so one activation later, p decides a wave nobody answered.
    runner.execute_move(Move::Activate(p0())).unwrap();
    assert_eq!(runner.process(p0()).request(), RequestState::Done);
    let verdict = snapstab_repro::core::spec::check_bare_pif_wave(
        runner.trace(),
        p0(),
        2,
        req_step,
        &0u32,
        |_q| 1u32,
    );
    assert!(
        !verdict.holds(),
        "the MC attack breaks Specification 1 for real: {verdict:?}"
    );
}

#[test]
fn paper_domain_verified_safe_by_sampled_enumeration() {
    let report = explore(
        Params::paper(),
        &SeedSet::Sampled {
            count: 20_000,
            rng_seed: 3,
        },
        5_000_000,
    );
    assert!(report.verified_safe(), "{report:?}");
    assert!(report.exhausted);
}

#[test]
fn every_undersized_domain_has_a_counterexample() {
    for m in [2u8, 3, 4] {
        let report = explore(Params::new(m, 1), &SeedSet::Exhaustive, 10_000_000);
        let cex = report
            .violation
            .unwrap_or_else(|| panic!("m = {m} must break"));
        // BFS gives shortest-by-construction: the attack needs at most
        // 2 moves per stale increment plus bookkeeping.
        assert!(
            cex.moves.len() <= 2 * m as usize + 2,
            "m = {m}: {}",
            cex.moves.len()
        );
    }
}

#[test]
fn capacity_mismatch_counterexample_found_by_search() {
    let report = explore(
        Params::new(5, 2),
        &SeedSet::Sampled {
            count: 50_000,
            rng_seed: 7,
        },
        20_000_000,
    );
    assert!(
        report.violation.is_some(),
        "5 values at capacity 2 must break: {report:?}"
    );
}

#[test]
fn mc_move_application_is_deterministic() {
    let params = Params::paper();
    let mut rng = SimRng::seed_from(99);
    for _ in 0..200 {
        let c = random_config(params, &mut rng);
        for mv in McMove::ALL {
            assert_eq!(apply(&c, mv, params), apply(&c, mv, params));
        }
    }
}
