//! Transport conformance for the UDP backend: seeded PIF waves and the
//! mutex/sharded services over UDP loopback pass the *same* executable
//! specification checkers as the in-memory live runtime
//! (`tests/live_runtime.rs`), plus direct datagram-level checks that the
//! receive path enforces the paper's §4 channel semantics (FIFO by
//! dropping out-of-order/duplicate datagrams; bounded capacity with
//! silent, counted drop-on-full).
//!
//! Environments that forbid socket creation (some sandboxes) are
//! detected with `udp_available()`: every test then skips with a warning
//! instead of failing, so CI stays meaningful on both kinds of runner.
//!
//! Every test self-terminates well under 60 seconds: waits are bounded,
//! and a bound miss is a failure, not a hang.

use std::time::{Duration, Instant};

use snapstab_repro::core::request::RequestState;
use snapstab_repro::core::spec::{analyze_me_trace, check_pif_wave};
use snapstab_repro::net::wire::{encode_datagram, Header};
use snapstab_repro::net::{udp_available, UdpLoopback};
use snapstab_repro::runtime::{
    run_mutex_service_on, run_sharded_service_on, Link, LiveConfig, LiveRunner, MutexServiceConfig,
    ShardedServiceConfig, Transport,
};
use snapstab_repro::sim::ProcessId;

/// Skip-and-warn guard: returns `true` (and prints a warning) when the
/// sandbox forbids UDP loopback sockets.
fn skip_without_udp(test: &str) -> bool {
    if udp_available() {
        return false;
    }
    eprintln!("warning: UDP loopback unavailable in this sandbox; skipping `{test}`");
    true
}

fn p(i: usize) -> ProcessId {
    ProcessId::new(i)
}

/// Echoes a fixed per-process feedback value (the same app shape as
/// `tests/live_runtime.rs`).
#[derive(Clone, Debug)]
struct Echo(u32);

impl snapstab_repro::core::pif::PifApp<u32, u32> for Echo {
    fn on_broadcast(&mut self, _from: ProcessId, _data: &u32) -> u32 {
        self.0
    }
    fn on_feedback(&mut self, _from: ProcessId, _data: &u32) {}
}

type Proc = snapstab_repro::core::pif::PifProcess<u32, u32, Echo>;

fn pif_fleet(n: usize) -> Vec<Proc> {
    (0..n)
        .map(|i| {
            snapstab_repro::core::pif::PifProcess::with_initial_f(
                p(i),
                n,
                0,
                0,
                Echo(100 + i as u32),
            )
        })
        .collect()
}

/// One PIF wave over UDP loopback; asserts Specification 1 on the merged
/// trace — the same predicate, verbatim, as the in-memory live tests.
fn udp_pif_wave_holds(n: usize, loss: f64, seed: u64) {
    let cfg = LiveConfig {
        loss,
        seed,
        jitter: Some(Duration::from_micros(200)),
        ..LiveConfig::default()
    };
    let transport = UdpLoopback::new();
    let drivers = (0..n).map(|_| None).collect();
    let mut runner = LiveRunner::spawn_with_transport(pif_fleet(n), drivers, cfg, &transport)
        .expect("bind loopback sockets");
    let payload = 7 + seed as u32;
    let request_step = runner.with_process_ctx(p(0), move |proc: &mut Proc, scribe| {
        let step = scribe.mark("request");
        assert!(proc.request_broadcast(payload));
        step
    });
    let decided = runner.wait_until(
        p(0),
        |proc: &Proc| proc.request() == RequestState::Done,
        Duration::from_secs(30),
    );
    assert!(
        decided,
        "UDP wave must decide (n={n}, loss={loss}, seed={seed})"
    );
    let report = runner.stop();
    let verdict = check_pif_wave(
        &report.trace,
        p(0),
        n,
        request_step,
        &payload,
        |q| 100 + q.index() as u32,
        |e| Some(e),
    );
    assert!(
        verdict.holds(),
        "UDP Spec 1 verdict failed (n={n}, loss={loss}, seed={seed}): {verdict:?}"
    );
}

/// Seeded PIF waves across loss tiers, every merged trace passing the
/// Specification 1 checker — the UDP counterpart of the in-memory
/// acceptance sweep.
#[test]
fn udp_pif_waves_satisfy_spec_across_seeds_and_loss() {
    if skip_without_udp("udp_pif_waves_satisfy_spec_across_seeds_and_loss") {
        return;
    }
    for &loss in &[0.0, 0.1, 0.3] {
        for seed in 0..6 {
            udp_pif_wave_holds(3, loss, seed);
        }
    }
}

/// A seeded mutex-service run over UDP loopback completes and its merged
/// trace passes the unchanged Specification 3 checker.
#[test]
fn udp_mutex_service_trace_satisfies_spec3() {
    if skip_without_udp("udp_mutex_service_trace_satisfies_spec3") {
        return;
    }
    let cfg = MutexServiceConfig {
        n: 3,
        requests_per_process: 2,
        live: LiveConfig {
            seed: 0xD06,
            ..LiveConfig::default()
        },
        time_budget: Duration::from_secs(45),
        ..MutexServiceConfig::default()
    };
    let report = run_mutex_service_on(&cfg, &UdpLoopback::new()).expect("bind loopback sockets");
    assert_eq!(report.served, 6, "all requests served over UDP");
    let trace = report.trace.expect("recording on by default");
    let me = analyze_me_trace(&trace, cfg.n);
    assert!(
        me.exclusivity_holds(),
        "genuine CS overlaps over UDP: {:?}",
        me.genuine_overlaps
    );
    assert!(me.all_served(), "unserved over UDP: {:?}", me.unserved);
    assert_eq!(me.served.len(), 6);
}

/// A lossy mutex-service run over UDP still serves everything: the
/// worker retransmission backoff pushes requests through both the
/// injected loss and any real datagram loss.
#[test]
fn udp_lossy_mutex_service_still_serves() {
    if skip_without_udp("udp_lossy_mutex_service_still_serves") {
        return;
    }
    let cfg = MutexServiceConfig {
        n: 3,
        requests_per_process: 1,
        live: LiveConfig {
            loss: 0.2,
            seed: 0x10_55,
            record_trace: false,
            ..LiveConfig::default()
        },
        time_budget: Duration::from_secs(45),
        ..MutexServiceConfig::default()
    };
    let report = run_mutex_service_on(&cfg, &UdpLoopback::new()).expect("bind loopback sockets");
    assert_eq!(report.served, 3, "all requests served under 20% loss");
    assert!(report.stats.links.lost_in_transit > 0, "loss was active");
}

/// The sharded, batching service over UDP loopback: grant-log audit holds
/// and each shard's projected trace passes Specification 3 — identical
/// predicates to `tests/sharded_service.rs`.
#[test]
fn udp_sharded_service_audits_and_passes_per_shard_spec3() {
    if skip_without_udp("udp_sharded_service_audits_and_passes_per_shard_spec3") {
        return;
    }
    let cfg = ShardedServiceConfig {
        n: 3,
        shards: 2,
        batch: 3,
        requests_per_process: 6,
        key_space: 4, // small space: conflicts must split across grants
        live: LiveConfig {
            seed: 0x5AD,
            ..LiveConfig::default()
        },
        time_budget: Duration::from_secs(45),
        ..ShardedServiceConfig::default()
    };
    let report = run_sharded_service_on(&cfg, &UdpLoopback::new()).expect("bind loopback sockets");
    assert_eq!(report.served, 18, "all requests served over UDP");
    let audit = report.audit();
    assert!(audit.holds(), "{audit:?}");
    let trace = report.trace.expect("recording on by default");
    for s in 0..cfg.shards {
        let shard_trace = snapstab_repro::core::shard::project_shard_trace(&trace, s);
        let me = analyze_me_trace(&shard_trace, cfg.n);
        assert!(
            me.exclusivity_holds(),
            "shard {s} genuine CS overlap over UDP: {:?}",
            me.genuine_overlaps
        );
        assert!(me.all_served(), "shard {s} unserved: {:?}", me.unserved);
    }
}

/// Polls a link until its stats satisfy `pred` or the deadline passes.
fn wait_stats<F>(
    link: &std::sync::Arc<dyn Link<u32>>,
    pred: F,
) -> snapstab_repro::runtime::LinkStats
where
    F: Fn(&snapstab_repro::runtime::LinkStats) -> bool,
{
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let stats = link.stats();
        if pred(&stats) {
            return stats;
        }
        assert!(
            Instant::now() < deadline,
            "stats never converged: {stats:?}"
        );
        std::thread::sleep(Duration::from_millis(1));
    }
}

/// Out-of-order and duplicate datagrams are dropped in the receive path
/// (FIFO and duplication-freedom restored by the sequence-number guard),
/// and the drops are counted per link.
#[test]
fn out_of_order_and_duplicate_datagrams_are_dropped() {
    if skip_without_udp("out_of_order_and_duplicate_datagrams_are_dropped") {
        return;
    }
    let transport = UdpLoopback::new();
    let cfg = LiveConfig {
        capacity: 8, // roomy: this test is about ordering, not capacity
        ..LiveConfig::default()
    };
    let links = Transport::<u32>::connect(&transport, 2, &cfg, None).expect("bind");
    let link = links[1].as_ref().expect("0 -> 1").clone();
    let to_addr = transport.endpoint_addrs()[1];

    // Craft raw datagrams on the link 0 -> 1, playing an adversarial
    // network. They must leave process 0's *genuine* socket — the demux
    // ignores datagrams whose source does not match the claimed sender.
    let socket = transport.endpoint_socket(0);
    let mut buf = Vec::new();
    let mut inject = |seq: u64, value: u32| {
        let header = Header {
            from: 0,
            to: 1,
            lane: 0,
            seq,
        };
        encode_datagram(header, &value, &mut buf);
        socket.send_to(&buf, to_addr).expect("inject datagram");
        // Keep kernel-side ordering deterministic on loopback.
        std::thread::sleep(Duration::from_millis(2));
    };
    inject(1, 10);
    inject(3, 30); // seq 2 "lost in the network": accepted, FIFO intact
    inject(2, 20); // late straggler: must be dropped
    inject(3, 30); // duplicate: must be dropped

    let stats = wait_stats(&link, |s| s.enqueued + s.lost_reorder >= 4);
    assert_eq!(stats.enqueued, 2, "exactly the in-order datagrams entered");
    assert_eq!(stats.lost_reorder, 2, "straggler + duplicate counted");
    assert_eq!(stats.lost_full, 0);
    // Delivery order is the accepted sequence order: FIFO preserved.
    assert_eq!(link.try_recv(), Some(10));
    assert_eq!(link.try_recv(), Some(30));
    assert_eq!(link.try_recv(), None);
}

/// A spoofed datagram from a foreign socket — claiming to be process 0
/// but not sent from its socket — is ignored entirely: it neither
/// delivers nor advances the FIFO sequence guard (a stray `seq` near
/// `u64::MAX` would otherwise deafen the link forever, making its loss
/// probability 1 and breaking the fair-loss assumption).
#[test]
fn spoofed_datagrams_from_foreign_sockets_are_ignored() {
    if skip_without_udp("spoofed_datagrams_from_foreign_sockets_are_ignored") {
        return;
    }
    let transport = UdpLoopback::new();
    let links =
        Transport::<u32>::connect(&transport, 2, &LiveConfig::default(), None).expect("bind");
    let link = links[1].as_ref().expect("0 -> 1").clone();
    let to_addr = transport.endpoint_addrs()[1];

    // An attacker/stale-test socket forges a huge sequence number.
    let foreign = std::net::UdpSocket::bind(("127.0.0.1", 0)).expect("bind foreign socket");
    let mut buf = Vec::new();
    let header = Header {
        from: 0,
        to: 1,
        lane: 0,
        seq: u64::MAX,
    };
    encode_datagram(header, &99u32, &mut buf);
    foreign
        .send_to(&buf, to_addr)
        .expect("send spoofed datagram");
    std::thread::sleep(Duration::from_millis(20));
    let stats = link.stats();
    assert_eq!(
        (stats.enqueued, stats.lost_reorder),
        (0, 0),
        "spoofed datagram must not touch the link at all"
    );

    // The genuine link still works: its own seq 1 is delivered.
    assert_eq!(link.send(7), snapstab_repro::sim::SendFate::Enqueued);
    let stats = wait_stats(&link, |s| s.enqueued >= 1);
    assert_eq!(stats.lost_reorder, 0);
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        if let Some(m) = link.try_recv() {
            assert_eq!(m, 7);
            break;
        }
        assert!(Instant::now() < deadline, "genuine datagram never arrived");
        std::thread::yield_now();
    }
}

/// A datagram arriving at a full lane is dropped *silently* — the sender
/// saw `Enqueued` for every send — and the drop is counted (§4).
#[test]
fn drop_on_full_is_silent_and_counted() {
    if skip_without_udp("drop_on_full_is_silent_and_counted") {
        return;
    }
    let transport = UdpLoopback::new();
    let cfg = LiveConfig {
        capacity: 1,
        ..LiveConfig::default()
    };
    let links = Transport::<u32>::connect(&transport, 2, &cfg, None).expect("bind");
    let link = links[1].as_ref().expect("0 -> 1").clone();

    // Three sends without the receiver draining: the sender cannot tell
    // them apart (all fates are local `Enqueued`), but only one fits the
    // capacity-1 lane.
    for value in [42u32, 43, 44] {
        assert_eq!(
            link.send(value),
            snapstab_repro::sim::SendFate::Enqueued,
            "a remote drop must stay silent at the sender"
        );
        std::thread::sleep(Duration::from_millis(2));
    }
    let stats = wait_stats(&link, |s| s.enqueued + s.lost_full >= 3);
    assert_eq!(stats.sends, 3);
    assert_eq!(stats.enqueued, 1, "one message fits the capacity-1 lane");
    assert_eq!(stats.lost_full, 2, "the overflow is counted, not reported");
    assert_eq!(stats.lost_reorder, 0);
    assert_eq!(link.try_recv(), Some(42));
    assert_eq!(link.try_recv(), None, "dropped messages are gone");
}
