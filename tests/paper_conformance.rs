//! Paper-conformance suite: one test per lettered action of Algorithms
//! 1–3, checking the exact transition the paper's pseudocode prescribes.
//! This is the traceability matrix from the paper text to the code.

use snapstab_repro::core::flag::Flag;
use snapstab_repro::core::me::{MeBroadcast, MeFeedback, MeProcess};
use snapstab_repro::core::pif::{PifApp, PifMsg, PifProcess};
use snapstab_repro::core::request::RequestState;
use snapstab_repro::sim::{
    Capacity, Move, NetworkBuilder, ProcessId, Protocol, RoundRobin, Runner,
};

fn p(i: usize) -> ProcessId {
    ProcessId::new(i)
}

#[derive(Clone, Debug)]
struct Ans(u32);

impl PifApp<u32, u32> for Ans {
    fn on_broadcast(&mut self, _from: ProcessId, _d: &u32) -> u32 {
        self.0
    }
    fn on_feedback(&mut self, _from: ProcessId, _d: &u32) {}
}

type Pif = PifProcess<u32, u32, Ans>;

fn pif_pair() -> Runner<Pif, RoundRobin> {
    let mk = |i: usize| PifProcess::with_initial_f(p(i), 2, 0u32, 0u32, Ans(100 + i as u32));
    let network = NetworkBuilder::new(2)
        .capacity(Capacity::Bounded(1))
        .build();
    Runner::new(vec![mk(0), mk(1)], network, RoundRobin::new(), 0)
}

/// **Algorithm 1, A1** :: `(Request = Wait) → Request ← In; ∀q State[q] ← 0`.
#[test]
fn alg1_a1_start_resets_flags() {
    let mut r = pif_pair();
    // Force a non-zero flag so the reset is observable.
    let mut s = r.process(p(0)).core().snapshot();
    s.state[1] = Flag::new(2);
    r.process_mut(p(0)).core_mut().restore(s);
    r.process_mut(p(0)).request_broadcast(7);
    assert_eq!(r.process(p(0)).request(), RequestState::Wait);
    r.execute_move(Move::Activate(p(0))).unwrap();
    assert_eq!(r.process(p(0)).request(), RequestState::In, "Wait → In");
    assert_eq!(
        r.process(p(0)).core().state_of(p(1)),
        Flag::ZERO,
        "State[q] ← 0"
    );
}

/// **Algorithm 1, A2 (retransmit half)** :: while `Request = In` and some
/// flag is below 4, send `⟨PIF, B-Mes, F-Mes[q], State[q], NeigState[q]⟩`.
#[test]
fn alg1_a2_sends_exact_message_shape() {
    let mut r = pif_pair();
    r.process_mut(p(0)).request_broadcast(7);
    r.execute_move(Move::Activate(p(0))).unwrap(); // A1 + A2 in one atomic step
    let ch = r.network().channel(p(0), p(1)).unwrap();
    let msg = ch.peek().expect("A2 sent");
    assert_eq!(msg.broadcast, 7, "carries B-Mes");
    assert_eq!(msg.sender_state, Flag::ZERO, "carries State[q]");
    // NeigState starts at the clean-init value 4.
    assert_eq!(msg.echoed_state, Flag::new(4), "carries NeigState[q]");
}

/// **Algorithm 1, A2 (decision half)** :: when every `State[q] = 4`,
/// `Request ← Done`.
#[test]
fn alg1_a2_decides_when_all_flags_complete() {
    let mut r = pif_pair();
    let mut s = r.process(p(0)).core().snapshot();
    s.request = RequestState::In;
    s.state[1] = Flag::new(4);
    r.process_mut(p(0)).core_mut().restore(s);
    r.execute_move(Move::Activate(p(0))).unwrap();
    assert_eq!(r.process(p(0)).request(), RequestState::Done);
    assert!(r.network().is_quiescent(), "a deciding A2 sends nothing");
}

/// **Algorithm 1, A3 (receive-brd guard)** :: the event fires iff
/// `NeigState[q] ≠ 3 ∧ qState = 3`, and `NeigState[q] ← qState` after.
#[test]
fn alg1_a3_receive_brd_guard() {
    let mut r = pif_pair();
    // qState = 3 with NeigState = 3 already: no event.
    let mut s = r.process(p(0)).core().snapshot();
    s.neig_state[1] = Flag::new(3);
    r.process_mut(p(0)).core_mut().restore(s);
    let msg = |ss: u8| PifMsg {
        broadcast: 7u32,
        feedback: 0u32,
        sender_state: Flag::new(ss),
        echoed_state: Flag::new(0),
    };
    r.network_mut()
        .channel_mut(p(1), p(0))
        .unwrap()
        .preload([msg(3)]);
    r.execute_move(Move::Deliver {
        from: p(1),
        to: p(0),
    })
    .unwrap();
    let brd_events = r
        .trace()
        .protocol_events_of(p(0))
        .filter(|(_, e)| matches!(e, snapstab_repro::core::pif::PifEvent::ReceiveBrd { .. }))
        .count();
    assert_eq!(brd_events, 0, "NeigState already 3: no event");

    // Now flip NeigState below 3 and deliver again: the event fires once.
    let mut s = r.process(p(0)).core().snapshot();
    s.neig_state[1] = Flag::new(2);
    r.process_mut(p(0)).core_mut().restore(s);
    r.network_mut()
        .channel_mut(p(1), p(0))
        .unwrap()
        .preload([msg(3)]);
    r.execute_move(Move::Deliver {
        from: p(1),
        to: p(0),
    })
    .unwrap();
    let brd_events = r
        .trace()
        .protocol_events_of(p(0))
        .filter(|(_, e)| matches!(e, snapstab_repro::core::pif::PifEvent::ReceiveBrd { .. }))
        .count();
    assert_eq!(brd_events, 1);
    assert_eq!(r.process(p(0)).core().neig_state_of(p(1)), Flag::new(3));
}

/// **Algorithm 1, A3 (echo increment)** :: `State[q]` increments iff the
/// incoming `pState` equals it and it is below 4.
#[test]
fn alg1_a3_echo_increment_guard() {
    let mut r = pif_pair();
    let mut s = r.process(p(0)).core().snapshot();
    s.request = RequestState::In;
    s.state[1] = Flag::new(2);
    r.process_mut(p(0)).core_mut().restore(s);
    let msg = |es: u8| PifMsg {
        broadcast: 0u32,
        feedback: 0u32,
        sender_state: Flag::new(4),
        echoed_state: Flag::new(es),
    };
    // Mismatched echo: no increment.
    r.network_mut()
        .channel_mut(p(1), p(0))
        .unwrap()
        .preload([msg(1)]);
    r.execute_move(Move::Deliver {
        from: p(1),
        to: p(0),
    })
    .unwrap();
    assert_eq!(r.process(p(0)).core().state_of(p(1)), Flag::new(2));
    // Matching echo: increment by exactly one.
    r.network_mut()
        .channel_mut(p(1), p(0))
        .unwrap()
        .preload([msg(2)]);
    r.execute_move(Move::Deliver {
        from: p(1),
        to: p(0),
    })
    .unwrap();
    assert_eq!(r.process(p(0)).core().state_of(p(1)), Flag::new(3));
}

/// **Algorithm 1, A3 (reply guard)** :: a reply is sent iff the incoming
/// `qState < 4`.
#[test]
fn alg1_a3_reply_guard() {
    let mut r = pif_pair();
    let msg = |ss: u8| PifMsg {
        broadcast: 0u32,
        feedback: 0u32,
        sender_state: Flag::new(ss),
        echoed_state: Flag::new(4),
    };
    // qState = 4: no reply.
    r.network_mut()
        .channel_mut(p(1), p(0))
        .unwrap()
        .preload([msg(4)]);
    r.execute_move(Move::Deliver {
        from: p(1),
        to: p(0),
    })
    .unwrap();
    assert!(r.network().channel(p(0), p(1)).unwrap().is_empty());
    // qState = 2: reply sent.
    r.network_mut()
        .channel_mut(p(1), p(0))
        .unwrap()
        .preload([msg(2)]);
    r.execute_move(Move::Deliver {
        from: p(1),
        to: p(0),
    })
    .unwrap();
    assert_eq!(r.network().channel(p(0), p(1)).unwrap().len(), 1);
}

fn me_trio() -> Runner<MeProcess, RoundRobin> {
    // P0 is the leader (smallest id).
    let processes: Vec<MeProcess> = (0..3)
        .map(|i| MeProcess::new(p(i), 3, 10 + i as u64))
        .collect();
    let network = NetworkBuilder::new(3)
        .capacity(Capacity::Bounded(1))
        .build();
    Runner::new(processes, network, RoundRobin::new(), 0)
}

/// **Algorithm 3, A0** :: phase 0 starts IDL, takes a pending request into
/// account (`Request`: `Wait → In`), and moves to phase 1.
#[test]
fn alg3_a0_takes_request_and_starts_idl() {
    let mut r = me_trio();
    r.process_mut(p(1)).request_cs();
    assert_eq!(r.process(p(1)).request(), RequestState::Wait);
    assert_eq!(r.process(p(1)).phase(), 0);
    r.execute_move(Move::Activate(p(1))).unwrap();
    assert_eq!(r.process(p(1)).request(), RequestState::In, "request taken");
    assert_eq!(r.process(p(1)).phase(), 1, "phase 0 → 1");
    // The IDL layer was started and (within the same atomic step) launched
    // its PIF wave with the IDL broadcast.
    assert_eq!(*r.process(p(1)).pif().b_mes(), MeBroadcast::Idl);
    assert_eq!(r.process(p(1)).pif().request(), RequestState::In);
}

/// **Algorithm 3, A5** :: `receive-brd⟨ASK⟩ from q` answers `YES` iff
/// `Value = q`.
#[test]
fn alg3_a5_ask_answer_follows_value() {
    let mut r = me_trio();
    // P0's Value is initially 0 (itself): everyone gets NO.
    let ask = PifMsg {
        broadcast: MeBroadcast::Ask,
        feedback: MeFeedback::Ok,
        sender_state: Flag::new(3),
        echoed_state: Flag::new(4),
    };
    r.network_mut()
        .channel_mut(p(1), p(0))
        .unwrap()
        .preload([ask.clone()]);
    r.execute_move(Move::Deliver {
        from: p(1),
        to: p(0),
    })
    .unwrap();
    let reply = r.network().channel(p(0), p(1)).unwrap().peek().cloned();
    assert!(
        matches!(reply, Some(m) if m.feedback == MeFeedback::No),
        "leader favours itself: NO to P1"
    );
}

/// **Algorithm 3, A6** :: `receive-brd⟨EXIT⟩` resets the phase to 0 and
/// feeds back `OK`.
#[test]
fn alg3_a6_exit_resets_phase() {
    let mut r = me_trio();
    r.run_steps(40).unwrap(); // advance P2 out of phase 0
    let exit = PifMsg {
        broadcast: MeBroadcast::Exit,
        feedback: MeFeedback::Ok,
        sender_state: Flag::new(3),
        echoed_state: Flag::new(4),
    };
    // Ensure the receive-brd guard fires (NeigState ≠ 3).
    let mut s = r.process(p(2)).snapshot();
    s.pif.neig_state[1] = Flag::new(0);
    r.process_mut(p(2)).restore(s);
    r.network_mut()
        .channel_mut(p(1), p(2))
        .unwrap()
        .set_contents([exit]);
    r.execute_move(Move::Deliver {
        from: p(1),
        to: p(2),
    })
    .unwrap();
    assert_eq!(r.process(p(2)).phase(), 0, "EXIT forces phase 0");
    let reply = r.network().channel(p(2), p(1)).unwrap().peek().cloned();
    assert!(matches!(reply, Some(m) if m.feedback == MeFeedback::Ok));
}

/// **Algorithm 3, A7** :: `receive-brd⟨EXITCS⟩ from q` advances `Value`
/// iff `Value = q`.
#[test]
fn alg3_a7_exitcs_guarded_increment() {
    let mut r = me_trio();
    let exitcs = |ns: u8| PifMsg {
        broadcast: MeBroadcast::ExitCs,
        feedback: MeFeedback::Ok,
        sender_state: Flag::new(3),
        echoed_state: Flag::new(ns),
    };
    // Value_P0 = 0 (self); an EXITCS from P2 is not the favoured process.
    r.network_mut()
        .channel_mut(p(2), p(0))
        .unwrap()
        .preload([exitcs(4)]);
    r.execute_move(Move::Deliver {
        from: p(2),
        to: p(0),
    })
    .unwrap();
    assert_eq!(r.process(p(0)).value(), 0, "non-favoured release ignored");
    // Point Value at P2 and repeat: increment mod n.
    let mut s = r.process(p(0)).snapshot();
    s.value = 2;
    s.pif.neig_state = vec![Flag::new(0), Flag::new(0), Flag::new(0)];
    r.process_mut(p(0)).restore(s);
    r.network_mut()
        .channel_mut(p(2), p(0))
        .unwrap()
        .set_contents([exitcs(4)]);
    r.execute_move(Move::Deliver {
        from: p(2),
        to: p(0),
    })
    .unwrap();
    assert_eq!(r.process(p(0)).value(), 0, "(2 + 1) mod 3 = 0");
}

/// **Algorithm 3, A8/A9** :: `receive-fck⟨YES⟩` sets `Privileges[q]`,
/// `receive-fck⟨NO⟩` clears it. (Exercised through a full ASK wave.)
#[test]
fn alg3_a8_a9_privileges_track_answers() {
    let mut r = me_trio();
    // Drive the full system until P0 (the leader, favouring itself) wins
    // and enters the CS exactly once it requests.
    r.mark(p(0), "request");
    r.process_mut(p(0)).request_cs();
    r.run_until(500_000, |r| r.process(p(0)).request() == RequestState::Done)
        .unwrap();
    assert_eq!(r.process(p(0)).counters().cs_entries, 1);
    // Non-leaders asked and were answered NO by the leader while it
    // favoured itself; their Privileges toward it must be false now.
    assert!(!r.process(p(1)).winner() || r.process(p(1)).value() == 1);
}
