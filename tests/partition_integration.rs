//! Network partitions — the flip side of the §2 fairness assumption.
//!
//! The paper's liveness properties (Start, Termination) rest on fair-lossy
//! channels: infinitely many sends imply infinitely many receipts. A
//! partition breaks fairness on the cut links, so waves crossing the cut
//! stall — safely. Once the partition heals (fairness restored), pending
//! computations complete, and the *next* requested computation is exact:
//! snap-stabilization treats a healed partition just like any other
//! transient fault history.

use snapstab_repro::core::idl::IdlProcess;
use snapstab_repro::core::me::MeProcess;
use snapstab_repro::core::request::RequestState;
use snapstab_repro::core::spec::{analyze_me_trace, check_idl_result};
use snapstab_repro::sim::{
    Capacity, LossModel, NetworkBuilder, ProcessId, RandomScheduler, Runner,
};

fn p(i: usize) -> ProcessId {
    ProcessId::new(i)
}

fn idl_system(n: usize, seed: u64) -> (Runner<IdlProcess, RandomScheduler>, Vec<u64>) {
    let ids: Vec<u64> = (0..n).map(|i| 100 - 7 * i as u64).collect();
    let processes = (0..n).map(|i| IdlProcess::new(p(i), n, ids[i])).collect();
    let network = NetworkBuilder::new(n)
        .capacity(Capacity::Bounded(1))
        .build();
    (
        Runner::new(processes, network, RandomScheduler::new(), seed),
        ids,
    )
}

#[test]
fn wave_stalls_across_a_partition() {
    let (mut runner, _) = idl_system(4, 1);
    runner.set_loss(LossModel::split(&[p(0), p(1)], &[p(2), p(3)]));
    runner.process_mut(p(0)).request_learning();
    runner.run_steps(100_000).unwrap();
    assert_eq!(
        runner.process(p(0)).request(),
        RequestState::In,
        "the wave cannot cross the cut"
    );
    // Within its side, the handshake completed.
    assert_eq!(runner.process(p(0)).pif().state_of(p(1)).value(), 4);
    assert!(runner.process(p(0)).pif().state_of(p(2)).value() < 4);
}

#[test]
fn healed_partition_completes_the_pending_wave() {
    let (mut runner, ids) = idl_system(4, 2);
    runner.set_loss(LossModel::split(&[p(0)], &[p(2)]));
    runner.process_mut(p(0)).request_learning();
    runner.run_steps(50_000).unwrap();
    assert_eq!(runner.process(p(0)).request(), RequestState::In);
    // Heal.
    runner.set_loss(LossModel::reliable());
    runner
        .run_until(1_000_000, |r| {
            r.process(p(0)).request() == RequestState::Done
        })
        .expect("the pending wave completes after healing");
    let v = check_idl_result(runner.process(p(0)).idl(), p(0), &ids, true, true);
    assert!(v.holds(), "{v:?}");
}

#[test]
fn post_heal_requests_are_exact_with_leftover_cut_state() {
    // Partition during heavy activity leaves arbitrary junk (half-finished
    // handshakes, stale NeigStates) on both sides; after healing, the next
    // request is exact — the leftover state is just another arbitrary
    // configuration.
    let (mut runner, ids) = idl_system(4, 3);
    // Everyone requests during the partition.
    runner.set_loss(LossModel::split(&[p(0), p(1)], &[p(2), p(3)]));
    for i in 0..4 {
        runner.process_mut(p(i)).request_learning();
    }
    runner.run_steps(60_000).unwrap();
    runner.set_loss(LossModel::probabilistic(0.1)); // heal into a lossy (fair) network
    runner
        .run_until(2_000_000, |r| {
            (0..4).all(|i| r.process(p(i)).request() == RequestState::Done)
        })
        .expect("all pending waves complete");
    // Fresh request after the healing.
    assert!(runner.process_mut(p(3)).request_learning());
    runner
        .run_until(2_000_000, |r| {
            r.process(p(3)).request() == RequestState::Done
        })
        .expect("post-heal wave completes");
    let v = check_idl_result(runner.process(p(3)).idl(), p(3), &ids, true, true);
    assert!(v.holds(), "{v:?}");
}

#[test]
fn me_safety_survives_partitions() {
    let n = 4;
    let processes: Vec<MeProcess> = (0..n)
        .map(|i| MeProcess::new(p(i), n, 10 + i as u64))
        .collect();
    let network = NetworkBuilder::new(n)
        .capacity(Capacity::Bounded(1))
        .build();
    let mut runner = Runner::new(processes, network, RandomScheduler::new(), 4);
    // Request on both sides, partition mid-run, heal, drain.
    for i in [1usize, 3] {
        runner.mark(p(i), "request");
        runner.process_mut(p(i)).request_cs();
    }
    runner.run_steps(5_000).unwrap();
    runner.set_loss(LossModel::split(&[p(0), p(1)], &[p(2), p(3)]));
    runner.run_steps(30_000).unwrap();
    runner.set_loss(LossModel::reliable());
    runner
        .run_until(2_000_000, |r| {
            [1usize, 3]
                .iter()
                .all(|&i| r.process(p(i)).request() == RequestState::Done)
        })
        .expect("requests served after healing");
    let report = analyze_me_trace(runner.trace(), n);
    assert!(report.exclusivity_holds(), "{:?}", report.genuine_overlaps);
    assert_eq!(report.served.len(), 2);
}
