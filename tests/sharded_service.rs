//! Sim-vs-live conformance for the sharded, batching mutex service.
//!
//! The same service layer — hash-partitioned resource keys over `S`
//! independent Algorithm 3 instances, batched grants — runs on both
//! substrates (`snapstab_core::shard::run_sim_sharded_service` in the
//! deterministic simulator, `snapstab_runtime::run_sharded_service` on
//! real OS threads), and both are judged by the same executable
//! specifications:
//!
//! * every granted batch is conflict-free and routed to the right shard,
//!   and every injected request is served exactly once
//!   ([`GrantLog::audit`]);
//! * each shard's projection of the merged trace satisfies
//!   Specification 3 (no two genuine critical sections overlap, every
//!   protocol-level request served) via [`analyze_me_trace`] — the
//!   *same* checker the unsharded service uses.
//!
//! Every test self-terminates well under 60 seconds.

use std::time::Duration;

use proptest::prelude::*;
use snapstab_repro::core::shard::{project_shard_trace, run_sim_sharded_service, SimShardedConfig};
use snapstab_repro::core::spec::analyze_me_trace;
use snapstab_repro::runtime::{run_sharded_service, LiveConfig, ShardedServiceConfig};

proptest! {
    #![proptest_config(ProptestConfig { cases: 5, ..ProptestConfig::default() })]

    /// Property: a live sharded service run — arbitrary seed, size,
    /// shard count, batch size and (small) key space — serves every
    /// injected request in conflict-free, correctly-routed batches, and
    /// every shard's trace projection satisfies Specification 3.
    #[test]
    fn live_sharded_service_conforms(
        seed in any::<u64>(),
        n in 3usize..5,
        shards in 1usize..4,
        batch in 1usize..4,
        key_tier in 0usize..2,
    ) {
        let key_space = [3u64, 64][key_tier]; // tiny spaces force conflicts
        let cfg = ShardedServiceConfig {
            n,
            shards,
            batch,
            requests_per_process: 3,
            key_space,
            cs_duration: 0,
            live: LiveConfig {
                loss: 0.1,
                seed,
                jitter: Some(Duration::from_micros(100)),
                ..LiveConfig::default()
            },
            time_budget: Duration::from_secs(40),
        };
        let report = run_sharded_service(&cfg);
        let total = 3 * n as u64;
        prop_assert_eq!(report.served, total, "all live requests served");
        let audit = report.audit();
        prop_assert!(audit.holds(), "live grant audit failed: {:?}", audit);
        let trace = report.trace.expect("recording on by default");
        for s in 0..shards {
            let shard_trace = project_shard_trace(&trace, s);
            let me = analyze_me_trace(&shard_trace, n);
            prop_assert!(
                me.exclusivity_holds(),
                "live shard {} genuine CS overlap: {:?}",
                s,
                me.genuine_overlaps
            );
            prop_assert!(
                me.all_served(),
                "live shard {} unserved: {:?}",
                s,
                me.unserved
            );
        }
    }

    /// The simulator mirror of the same service passes the same
    /// predicates — same partition function, same batching queue, same
    /// grant log, same checkers; only the substrate differs.
    #[test]
    fn sim_sharded_service_conforms(
        seed in any::<u64>(),
        n in 3usize..5,
        shards in 1usize..4,
        batch in 1usize..4,
    ) {
        let cfg = SimShardedConfig {
            n,
            shards,
            batch,
            requests_per_process: 2,
            key_space: 4,
            seed,
            ..SimShardedConfig::default()
        };
        let report = run_sim_sharded_service(&cfg);
        let total = 2 * n as u64;
        prop_assert_eq!(report.served, total, "all sim requests served");
        let audit = report.grant_log.audit(shards, &report.injected);
        prop_assert!(audit.holds(), "sim grant audit failed: {:?}", audit);
        for s in 0..shards {
            let shard_trace = project_shard_trace(&report.trace, s);
            let me = analyze_me_trace(&shard_trace, n);
            prop_assert!(
                me.exclusivity_holds(),
                "sim shard {} genuine CS overlap: {:?}",
                s,
                me.genuine_overlaps
            );
            prop_assert!(me.all_served(), "sim shard {} unserved: {:?}", s, me.unserved);
        }
    }
}

/// A focused deterministic case: a single hot key cannot be served twice
/// in one grant, and each shard's leader really is a different process —
/// the multi-leader placement the sharded service promises.
#[test]
fn hot_key_serializes_and_leaders_are_spread() {
    let n = 3;
    let shards = 3;
    let cfg = ShardedServiceConfig {
        n,
        shards,
        batch: 4,
        requests_per_process: 4,
        key_space: 1, // every request names the same resource
        cs_duration: 0,
        live: LiveConfig {
            seed: 0xFEED,
            ..LiveConfig::default()
        },
        time_budget: Duration::from_secs(40),
    };
    let report = run_sharded_service(&cfg);
    assert_eq!(report.served, 12);
    let audit = report.audit();
    assert!(audit.holds(), "{audit:?}");
    // One key ⇒ one shard gets all traffic, and every grant carries
    // exactly one request despite batch = 4.
    for grant in report.grant_log.grants() {
        assert_eq!(grant.requests.len(), 1, "hot key must serialize");
    }
    assert_eq!(
        report.per_shard_served.iter().filter(|&&c| c > 0).count(),
        1,
        "a single key lives in a single shard"
    );
    // Leaders are spread round-robin: shard s is led by process s % n.
    // The designated leader holds the minimum identity, so it correctly
    // believes it leads from the start (other processes' beliefs converge
    // only once their own IDL waves complete, which a short run need not
    // reach on idle shards).
    for s in 0..shards {
        assert_eq!(report.processes[s % n].shard(s).my_id(), 1);
        assert!(
            report.processes[s % n].shard(s).is_leader(),
            "shard {s}'s designated leader must believe it leads"
        );
    }
}
