//! Crash failures — the paper's conclusion: "it is worth investigating if
//! the results presented in this paper could be extended to [networks]
//! where nodes are subject to permanent aka crash failures".
//!
//! These tests *demonstrate why that is future work*: the paper's
//! protocols hinge on collecting a feedback from **every** process, so a
//! single crash blocks every in-flight wave (the Termination property is
//! lost), while safety survives. They also confirm the simulator's crash
//! semantics so downstream research on crash-tolerant variants has a
//! substrate to build on.

use snapstab_repro::core::idl::IdlProcess;
use snapstab_repro::core::me::MeProcess;
use snapstab_repro::core::request::RequestState;
use snapstab_repro::core::spec::analyze_me_trace;
use snapstab_repro::sim::{Capacity, NetworkBuilder, ProcessId, RandomScheduler, Runner};

fn p(i: usize) -> ProcessId {
    ProcessId::new(i)
}

#[test]
fn crashed_process_stops_participating() {
    let n = 3;
    let processes: Vec<IdlProcess> = (0..n)
        .map(|i| IdlProcess::new(p(i), n, 10 + i as u64))
        .collect();
    let network = NetworkBuilder::new(n)
        .capacity(Capacity::Bounded(1))
        .build();
    let mut runner = Runner::new(processes, network, RandomScheduler::new(), 1);
    runner.crash(p(2));
    assert!(runner.is_crashed(p(2)));
    assert!(!runner.is_crashed(p(0)));
    runner.process_mut(p(2)).request_learning();
    // The crashed process never starts anything.
    let out = runner.run_steps(5_000).unwrap();
    assert!(out.is_quiescent() || runner.is_quiescent());
    assert_eq!(runner.process(p(2)).request(), RequestState::Wait);
}

#[test]
fn a_single_crash_blocks_every_wave() {
    // Termination of a started wave requires a feedback from everyone: a
    // crashed peer blocks it forever — the impossibility intuition behind
    // the paper's future-work remark.
    let n = 3;
    let processes: Vec<IdlProcess> = (0..n)
        .map(|i| IdlProcess::new(p(i), n, 10 + i as u64))
        .collect();
    let network = NetworkBuilder::new(n)
        .capacity(Capacity::Bounded(1))
        .build();
    let mut runner = Runner::new(processes, network, RandomScheduler::new(), 2);
    runner.crash(p(1));
    runner.process_mut(p(0)).request_learning();
    runner.run_steps(100_000).unwrap();
    assert_eq!(
        runner.process(p(0)).request(),
        RequestState::In,
        "the wave can never collect P1's feedback"
    );
    // The initiator's flag toward the live peer completed; toward the
    // crashed peer it is stuck below completion.
    assert!(runner.process(p(0)).pif().state_of(p(1)).value() < 4);
    assert_eq!(runner.process(p(0)).pif().state_of(p(2)).value(), 4);
}

#[test]
fn crash_preserves_me_safety_but_kills_liveness() {
    let n = 3;
    // P0 is the leader.
    let processes: Vec<MeProcess> = (0..n)
        .map(|i| MeProcess::new(p(i), n, 10 + i as u64))
        .collect();
    let network = NetworkBuilder::new(n)
        .capacity(Capacity::Bounded(1))
        .build();
    let mut runner = Runner::new(processes, network, RandomScheduler::new(), 3);
    // Let the system cycle, then crash the leader.
    runner.run_steps(20_000).unwrap();
    runner.crash(p(0));
    runner.mark(p(1), "request");
    let _ = runner.process_mut(p(1)).request_cs();
    runner.run_steps(150_000).unwrap();
    let report = analyze_me_trace(runner.trace(), n);
    // Safety: still no genuine overlap.
    assert!(report.exclusivity_holds());
    // Liveness: the request starves — the leader's arbitration is gone.
    assert!(
        runner.process(p(1)).request() != RequestState::Done || report.served.is_empty(),
        "a request served after the leader crashed would contradict the \
         protocol's dependence on the leader"
    );
}

#[test]
fn crash_of_a_non_leader_also_blocks_waves() {
    // Even a non-leader crash blocks progress: every PIF needs all n-1
    // feedbacks, so ME's phase machine wedges at the first wave after the
    // crash.
    let n = 3;
    let processes: Vec<MeProcess> = (0..n)
        .map(|i| MeProcess::new(p(i), n, 10 + i as u64))
        .collect();
    let network = NetworkBuilder::new(n)
        .capacity(Capacity::Bounded(1))
        .build();
    let mut runner = Runner::new(processes, network, RandomScheduler::new(), 4);
    runner.run_steps(20_000).unwrap();
    let cycles_before = runner.process(p(0)).counters().phase_zero_visits;
    runner.crash(p(2));
    runner.run_steps(100_000).unwrap();
    let cycles_after = runner.process(p(0)).counters().phase_zero_visits;
    assert!(
        cycles_after <= cycles_before + 2,
        "phase cycling must wedge within a couple of rounds: {cycles_before} -> {cycles_after}"
    );
}

#[test]
fn quiescence_accounts_for_crashed_processes() {
    let n = 2;
    let processes: Vec<IdlProcess> = (0..n).map(|i| IdlProcess::new(p(i), n, i as u64)).collect();
    let network = NetworkBuilder::new(n)
        .capacity(Capacity::Bounded(1))
        .build();
    let mut runner = Runner::new(processes, network, RandomScheduler::new(), 5);
    runner.process_mut(p(0)).request_learning();
    runner.crash(p(0));
    // P0 has an enabled action but is crashed; nothing is in flight: the
    // system is (and reports) quiescent.
    assert!(runner.is_quiescent());
    let out = runner.run_steps(100).unwrap();
    assert!(out.is_quiescent());
}
