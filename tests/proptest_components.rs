// Index loops over parallel per-process arrays read clearer than enumerate here.
#![allow(clippy::needless_range_loop)]
//! Property-based tests of the small building blocks: per-neighbor tables,
//! the flag domain, loss-model fairness, and the request discipline.

use proptest::prelude::*;
use snapstab_repro::core::flag::{Flag, FlagDomain};
use snapstab_repro::core::request::RequestState;
use snapstab_repro::sim::{neighbors, LossModel, PerNeighbor, ProcessId, SimRng};

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, .. ProptestConfig::default() })]

    /// Neighbor iteration covers exactly everyone but the owner, in order.
    #[test]
    fn neighbors_cover_everyone_but_self(n in 1usize..50, me in 0usize..50) {
        prop_assume!(me < n);
        let ns: Vec<ProcessId> = neighbors(ProcessId::new(me), n).collect();
        prop_assert_eq!(ns.len(), n - 1);
        prop_assert!(ns.iter().all(|q| q.index() != me && q.index() < n));
        prop_assert!(ns.windows(2).all(|w| w[0] < w[1]), "sorted");
    }

    /// PerNeighbor set/get round-trips and iteration order is stable.
    #[test]
    fn per_neighbor_roundtrip(
        n in 2usize..12,
        me in 0usize..12,
        values in proptest::collection::vec(any::<u32>(), 12),
    ) {
        prop_assume!(me < n);
        let owner = ProcessId::new(me);
        let mut t = PerNeighbor::new(owner, n, 0u32);
        for i in 0..n {
            if i != me {
                t.set(ProcessId::new(i), values[i]);
            }
        }
        for i in 0..n {
            if i != me {
                prop_assert_eq!(*t.get(ProcessId::new(i)), values[i]);
            }
        }
        let pairs: Vec<usize> = t.iter().map(|(q, _)| q.index()).collect();
        prop_assert!(pairs.windows(2).all(|w| w[0] < w[1]));
        prop_assert_eq!(pairs.len(), n - 1);
        prop_assert!(t.all(|_| true));
    }

    /// Flag increments are monotone and saturate exactly at the domain max;
    /// clamping is idempotent and never exceeds the max.
    #[test]
    fn flag_domain_algebra(max in 1u8..10, start in 0u8..10, junk in 0u8..255) {
        let d = FlagDomain::with_max(max);
        prop_assume!(start <= max);
        let mut f = Flag::new(start);
        for _ in 0..20 {
            let next = f.incremented(d);
            prop_assert!(next.value() >= f.value());
            prop_assert!(next.value() <= max);
            f = next;
        }
        prop_assert!(f.is_complete(d));
        let clamped = d.clamp(Flag::new(junk));
        prop_assert!(clamped.value() <= max);
        prop_assert_eq!(d.clamp(clamped), clamped, "idempotent");
        prop_assert_eq!(d.size(), max as usize + 1);
        prop_assert_eq!(d.broadcast_value().value(), max - 1);
    }

    /// Arbitrary in-domain flags really stay in the domain.
    #[test]
    fn flag_domain_arbitrary_in_domain(max in 1u8..10, seed in any::<u64>()) {
        let d = FlagDomain::with_max(max);
        let mut rng = SimRng::seed_from(seed);
        for _ in 0..50 {
            prop_assert!(d.arbitrary_flag(&mut rng).value() <= max);
        }
    }

    /// Probabilistic loss below 1.0 is fair: over a long horizon, some
    /// messages always get through (and at p = 0, all of them do).
    #[test]
    fn loss_model_is_fair(p in 0.0f64..0.95, seed in any::<u64>()) {
        let m = LossModel::probabilistic(p);
        let mut rng = SimRng::seed_from(seed);
        let survivors = (0..2_000u64)
            .filter(|&i| !m.loses(ProcessId::new(0), ProcessId::new(1), i, &mut rng))
            .count();
        prop_assert!(survivors > 0, "fairness: infinitely many sends get through");
        if p == 0.0 {
            prop_assert_eq!(survivors, 2_000);
        }
    }

    /// Scripted loss models affect exactly the scripted attempts.
    #[test]
    fn scripted_loss_is_exact(
        drops in proptest::collection::btree_set(0u64..100, 0..20),
        seed in any::<u64>(),
    ) {
        let from = ProcessId::new(0);
        let to = ProcessId::new(1);
        let m = LossModel::scripted(drops.iter().map(|&i| (from, to, i)).collect());
        let mut rng = SimRng::seed_from(seed);
        for i in 0..100u64 {
            prop_assert_eq!(m.loses(from, to, i, &mut rng), drops.contains(&i));
            // Other links unaffected.
            prop_assert!(!m.loses(ProcessId::new(1), ProcessId::new(0), i, &mut rng));
        }
    }

    /// The request discipline: from any state, `try_request` succeeds iff
    /// the state was Done, and always leaves a legal state.
    #[test]
    fn request_discipline_total(start in 0u8..3) {
        let mut r = match start {
            0 => RequestState::Wait,
            1 => RequestState::In,
            _ => RequestState::Done,
        };
        let was_done = r == RequestState::Done;
        let accepted = r.try_request();
        prop_assert_eq!(accepted, was_done);
        if accepted {
            prop_assert_eq!(r, RequestState::Wait);
        }
    }
}
