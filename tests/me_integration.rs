// Index loops over parallel per-process arrays read clearer than enumerate here.
#![allow(clippy::needless_range_loop)]
//! Cross-crate integration tests: mutual exclusion (Algorithm 3) end to
//! end, plus the contrast with the self-stabilizing token ring.

use snapstab_repro::baselines::token_ring::{TokenRingProcess, TrEvent};
use snapstab_repro::baselines::util::{count_overlaps, extract_cs_intervals};
use snapstab_repro::core::me::{MeConfig, MeProcess, ValueMode};
use snapstab_repro::core::request::RequestState;
use snapstab_repro::core::spec::analyze_me_trace;
use snapstab_repro::sim::{
    Capacity, CorruptionPlan, LossModel, NetworkBuilder, ProcessId, RandomScheduler, Runner, SimRng,
};

fn p(i: usize) -> ProcessId {
    ProcessId::new(i)
}

fn me_system(n: usize, cs_duration: u64, seed: u64) -> Runner<MeProcess, RandomScheduler> {
    let config = MeConfig {
        cs_duration,
        value_mode: ValueMode::Corrected,
        ..MeConfig::default()
    };
    // Unsorted ids; the leader is the process with the smallest.
    let ids: Vec<u64> = (0..n)
        .map(|i| ((i * 7919 + 13) % 1000) as u64 + 1)
        .collect();
    let processes = (0..n)
        .map(|i| MeProcess::with_config(p(i), n, ids[i], config))
        .collect();
    let network = NetworkBuilder::new(n)
        .capacity(Capacity::Bounded(1))
        .build();
    Runner::new(processes, network, RandomScheduler::new(), seed)
}

/// Drives a request workload and returns the ME report.
fn workload(
    runner: &mut Runner<MeProcess, RandomScheduler>,
    budget: u64,
    request_prob: f64,
    rng: &mut SimRng,
) -> snapstab_repro::core::spec::MeReport {
    let n = runner.n();
    let mut executed = 0;
    while executed < budget {
        executed += runner.run_steps(400).expect("run").steps;
        for i in 0..n {
            if runner.process(p(i)).request() == RequestState::Done && rng.gen_bool(request_prob) {
                runner.mark(p(i), "request");
                assert!(runner.process_mut(p(i)).request_cs());
            }
        }
    }
    analyze_me_trace(runner.trace(), n)
}

#[test]
fn exclusivity_from_many_corrupted_starts() {
    for seed in 0..6 {
        let mut runner = me_system(3, 0, seed);
        let mut rng = SimRng::seed_from(seed + 500);
        CorruptionPlan::full().apply(&mut runner, &mut rng);
        let report = workload(&mut runner, 60_000, 0.02, &mut rng);
        assert!(
            report.exclusivity_holds(),
            "seed {seed}: {:?}",
            report.genuine_overlaps
        );
        assert!(
            !report.served.is_empty(),
            "seed {seed}: some request must be served"
        );
    }
}

#[test]
fn exclusivity_with_duration_and_loss() {
    for seed in 0..4 {
        let mut runner = me_system(4, 4, seed);
        runner.set_loss(LossModel::probabilistic(0.15));
        let mut rng = SimRng::seed_from(seed + 900);
        CorruptionPlan::full().apply(&mut runner, &mut rng);
        let report = workload(&mut runner, 120_000, 0.02, &mut rng);
        assert!(report.exclusivity_holds(), "seed {seed}");
    }
}

#[test]
fn every_request_is_eventually_served() {
    let mut runner = me_system(3, 0, 42);
    let mut rng = SimRng::seed_from(1);
    CorruptionPlan::full().apply(&mut runner, &mut rng);
    // One request per process, injected when possible; then a generous
    // drain.
    let mut to_request = [true; 3];
    let mut executed = 0;
    while executed < 600_000 && to_request.iter().any(|&b| b) {
        executed += runner.run_steps(300).expect("run").steps;
        for i in 0..3 {
            if to_request[i] && runner.process(p(i)).request() == RequestState::Done {
                runner.mark(p(i), "request");
                assert!(runner.process_mut(p(i)).request_cs());
                to_request[i] = false;
            }
        }
    }
    runner
        .run_until(2_000_000, |r| {
            (0..3).all(|i| r.process(p(i)).request() == RequestState::Done)
        })
        .expect("all served");
    let report = analyze_me_trace(runner.trace(), 3);
    assert_eq!(report.served.len(), 3);
    assert!(report.all_served());
    assert!(report.exclusivity_holds());
}

#[test]
fn leader_rotation_is_fair_over_long_runs() {
    let mut runner = me_system(3, 0, 17);
    runner.run_steps(150_000).expect("run");
    // Every process won (entered the winner branch) at least once: count
    // phase-zero cycles and leader advances as proxies.
    let advances: Vec<u64> = (0..3)
        .map(|i| runner.process(p(i)).counters().value_advances)
        .collect();
    assert!(
        advances.iter().sum::<u64>() > 5,
        "the favour pointer must rotate: {advances:?}"
    );
    for i in 0..3 {
        assert!(
            runner.process(p(i)).counters().phase_zero_visits > 3,
            "P{i} must keep cycling (Lemma 10)"
        );
    }
}

#[test]
fn token_ring_overlaps_but_me_does_not_on_same_corruption_seeds() {
    let mut ring_overlap_seeds = 0;
    for seed in 0..12 {
        // Token ring from corrupted state.
        let n = 4;
        let ring_procs: Vec<TokenRingProcess> = (0..n)
            .map(|i| TokenRingProcess::new(p(i), n, 5, 2))
            .collect();
        let network = NetworkBuilder::new(n)
            .capacity(Capacity::Bounded(1))
            .build();
        let mut ring = Runner::new(ring_procs, network, RandomScheduler::new(), seed);
        let mut rng = SimRng::seed_from(seed);
        for i in 0..n {
            use snapstab_repro::sim::Protocol as _;
            ring.process_mut(p(i)).corrupt(&mut rng);
        }
        ring.run_steps(25_000).expect("run");
        let intervals = extract_cs_intervals(
            ring.trace(),
            n,
            |e| matches!(e, TrEvent::CsEnter),
            |e| matches!(e, TrEvent::CsExit),
        );
        if count_overlaps(&intervals) > 0 {
            ring_overlap_seeds += 1;
        }

        // Algorithm 3 with the same corruption seed and CS duration.
        let mut me = me_system(n, 2, seed);
        let mut rng = SimRng::seed_from(seed);
        CorruptionPlan::full().apply(&mut me, &mut rng);
        let report = workload(&mut me, 25_000, 0.02, &mut rng);
        assert!(
            report.exclusivity_holds(),
            "seed {seed}: ME must stay exclusive"
        );
    }
    assert!(
        ring_overlap_seeds > 0,
        "the self-stabilizing ring must overlap on some corrupted start"
    );
}

#[test]
fn paper_literal_value_mode_starves() {
    let config = MeConfig {
        cs_duration: 0,
        value_mode: ValueMode::PaperLiteral,
        ..MeConfig::default()
    };
    let n = 3;
    let processes: Vec<MeProcess> = (0..n)
        .map(|i| MeProcess::with_config(p(i), n, 10 + i as u64, config))
        .collect();
    let network = NetworkBuilder::new(n)
        .capacity(Capacity::Bounded(1))
        .build();
    let mut runner = Runner::new(processes, network, RandomScheduler::new(), 3);
    runner.run_steps(80_000).expect("warmup");
    // The pointer is dead at n; a new request is never served.
    assert_eq!(runner.process(p(0)).value(), n, "dead favour value reached");
    assert!(runner.process_mut(p(2)).request_cs());
    runner.run_steps(200_000).expect("run");
    assert_eq!(
        runner.process(p(2)).request(),
        RequestState::In,
        "the literal mod (n+1) arithmetic starves the requester (D2 erratum)"
    );
}
