//! Cross-crate integration tests: the snap-stabilizing PIF (Algorithm 1)
//! on the full simulator, under both schedulers, loss, and arbitrary
//! initial configurations.

use snapstab_repro::core::pif::{PifApp, PifEvent, PifMsg, PifProcess};
use snapstab_repro::core::request::RequestState;
use snapstab_repro::core::spec::{channels_flushed, check_bare_pif_wave};
use snapstab_repro::sim::{
    Capacity, CorruptionPlan, LossModel, NetworkBuilder, ProcessId, RandomScheduler, RoundRobin,
    Runner, Scheduler, SimRng,
};

#[derive(Clone, Debug)]
struct Tagger {
    tag: u32,
    brd_log: Vec<u32>,
}

impl PifApp<u32, u32> for Tagger {
    fn on_broadcast(&mut self, _from: ProcessId, data: &u32) -> u32 {
        self.brd_log.push(*data);
        self.tag
    }
    fn on_feedback(&mut self, _from: ProcessId, _data: &u32) {}
}

type Proc = PifProcess<u32, u32, Tagger>;

fn p(i: usize) -> ProcessId {
    ProcessId::new(i)
}

fn make(i: usize, n: usize) -> Proc {
    PifProcess::with_initial_f(
        p(i),
        n,
        0,
        0,
        Tagger {
            tag: 100 + i as u32,
            brd_log: vec![],
        },
    )
}

fn wave_spec_holds<S: Scheduler>(mut runner: Runner<Proc, S>, n: usize) {
    let initiator = p(0);
    let _ = runner.run_until(500_000, |r| {
        r.process(initiator).request() == RequestState::Done
    });
    let req_step = runner.step_count();
    runner.mark(initiator, "request");
    assert!(runner.process_mut(initiator).request_broadcast(7));
    runner
        .run_until(3_000_000, |r| {
            r.process(initiator).request() == RequestState::Done
        })
        .expect("wave decides");
    let verdict = check_bare_pif_wave(runner.trace(), initiator, n, req_step, &7, |q| {
        100 + q.index() as u32
    });
    assert!(verdict.holds(), "{verdict:?}");
}

#[test]
fn spec1_holds_under_round_robin_from_corruption() {
    for n in [2usize, 3, 6] {
        for seed in 0..5 {
            let processes = (0..n).map(|i| make(i, n)).collect();
            let network = NetworkBuilder::new(n)
                .capacity(Capacity::Bounded(1))
                .build();
            let mut runner = Runner::new(processes, network, RoundRobin::new(), seed);
            let mut rng = SimRng::seed_from(seed * 31 + n as u64);
            CorruptionPlan::full().apply(&mut runner, &mut rng);
            wave_spec_holds(runner, n);
        }
    }
}

#[test]
fn spec1_holds_under_random_scheduler_with_loss() {
    for seed in 0..5 {
        let n = 4;
        let processes = (0..n).map(|i| make(i, n)).collect();
        let network = NetworkBuilder::new(n)
            .capacity(Capacity::Bounded(1))
            .build();
        let mut runner = Runner::new(processes, network, RandomScheduler::new(), seed);
        runner.set_loss(LossModel::probabilistic(0.25));
        let mut rng = SimRng::seed_from(seed + 1_000);
        CorruptionPlan::full().apply(&mut runner, &mut rng);
        wave_spec_holds(runner, n);
    }
}

#[test]
fn spec1_holds_at_larger_channel_capacity() {
    // DESIGN.md D6: the protocol also works at known capacity c > 1.
    for cap in [2usize, 4] {
        let n = 3;
        let processes = (0..n).map(|i| make(i, n)).collect();
        let network = NetworkBuilder::new(n)
            .capacity(Capacity::Bounded(cap))
            .build();
        let mut runner = Runner::new(processes, network, RandomScheduler::new(), 3);
        let mut rng = SimRng::seed_from(cap as u64);
        CorruptionPlan {
            corrupt_processes: true,
            corrupt_channels: true,
            max_preload_per_channel: cap,
        }
        .apply(&mut runner, &mut rng);
        wave_spec_holds(runner, n);
    }
}

#[test]
fn property1_flushes_initiators_channels() {
    const JUNK: u32 = 0xDEAD;
    for seed in 0..10 {
        let n = 3;
        let processes = (0..n).map(|i| make(i, n)).collect();
        let network = NetworkBuilder::new(n)
            .capacity(Capacity::Bounded(1))
            .build();
        let mut runner = Runner::new(processes, network, RandomScheduler::new(), seed);
        let mut rng = SimRng::seed_from(seed);
        // Junk in every channel incident to the initiator.
        let links: Vec<_> = runner.network().links().collect();
        for (f, t) in links {
            if f == p(0) || t == p(0) {
                let flag = snapstab_repro::core::flag::Flag::new(rng.gen_range(0..5) as u8);
                runner
                    .network_mut()
                    .channel_mut(f, t)
                    .unwrap()
                    .set_contents([PifMsg {
                        broadcast: JUNK,
                        feedback: JUNK,
                        sender_state: flag,
                        echoed_state: flag,
                    }]);
            }
        }
        runner.process_mut(p(0)).request_broadcast(5);
        runner
            .run_until(1_000_000, |r| {
                r.process(p(0)).request() == RequestState::Done
            })
            .expect("wave decides");
        assert!(
            channels_flushed(runner.network(), p(0), |m: &PifMsg<u32, u32>| m.broadcast
                == JUNK),
            "seed {seed}: Property 1"
        );
    }
}

#[test]
fn back_to_back_waves_each_satisfy_spec() {
    let n = 3;
    let processes = (0..n).map(|i| make(i, n)).collect();
    let network = NetworkBuilder::new(n)
        .capacity(Capacity::Bounded(1))
        .build();
    let mut runner = Runner::new(processes, network, RandomScheduler::new(), 9);
    for wave in 0..5u32 {
        let req_step = runner.step_count();
        assert!(runner.process_mut(p(0)).request_broadcast(wave));
        runner
            .run_until(1_000_000, |r| {
                r.process(p(0)).request() == RequestState::Done
            })
            .expect("wave decides");
        let verdict = check_bare_pif_wave(runner.trace(), p(0), n, req_step, &wave, |q| {
            100 + q.index() as u32
        });
        assert!(verdict.holds(), "wave {wave}: {verdict:?}");
    }
    // Every peer saw the five broadcasts in order.
    for i in 1..n {
        assert_eq!(runner.process(p(i)).app().brd_log, vec![0, 1, 2, 3, 4]);
    }
}

#[test]
fn all_initiators_concurrently_still_satisfy_spec() {
    let n = 4;
    let processes = (0..n).map(|i| make(i, n)).collect();
    let network = NetworkBuilder::new(n)
        .capacity(Capacity::Bounded(1))
        .build();
    let mut runner = Runner::new(processes, network, RandomScheduler::new(), 5);
    for i in 0..n {
        assert!(runner.process_mut(p(i)).request_broadcast(10 + i as u32));
    }
    runner
        .run_until(3_000_000, |r| {
            (0..n).all(|i| r.process(p(i)).request() == RequestState::Done)
        })
        .expect("all waves decide");
    for i in 0..n {
        let verdict = check_bare_pif_wave(runner.trace(), p(i), n, 0, &(10 + i as u32), |q| {
            100 + q.index() as u32
        });
        assert!(verdict.holds(), "initiator {i}: {verdict:?}");
    }
}

#[test]
fn mid_run_fault_burst_next_wave_still_correct() {
    let n = 3;
    let processes = (0..n).map(|i| make(i, n)).collect();
    let network = NetworkBuilder::new(n)
        .capacity(Capacity::Bounded(1))
        .build();
    let mut runner = Runner::new(processes, network, RandomScheduler::new(), 11);
    let mut rng = SimRng::seed_from(77);
    for round in 0..4 {
        // Fault burst mid-run.
        CorruptionPlan::full().apply(&mut runner, &mut rng);
        let _ = runner.run_until(1_000_000, |r| {
            r.process(p(0)).request() == RequestState::Done
        });
        let req_step = runner.step_count();
        assert!(runner.process_mut(p(0)).request_broadcast(round));
        runner
            .run_until(1_000_000, |r| {
                r.process(p(0)).request() == RequestState::Done
            })
            .expect("wave decides");
        let verdict = check_bare_pif_wave(runner.trace(), p(0), n, req_step, &round, |q| {
            100 + q.index() as u32
        });
        assert!(verdict.holds(), "round {round}: {verdict:?}");
    }
}

#[test]
fn trace_events_are_well_ordered() {
    let n = 3;
    let processes = (0..n).map(|i| make(i, n)).collect();
    let network = NetworkBuilder::new(n)
        .capacity(Capacity::Bounded(1))
        .build();
    let mut runner = Runner::new(processes, network, RoundRobin::new(), 2);
    runner.process_mut(p(0)).request_broadcast(1);
    runner
        .run_until(1_000_000, |r| {
            r.process(p(0)).request() == RequestState::Done
        })
        .expect("wave decides");
    // Steps never decrease along the trace.
    let steps: Vec<u64> = runner.trace().iter().map(|te| te.step).collect();
    assert!(steps.windows(2).all(|w| w[0] <= w[1]));
    // Started precedes every ReceiveFck which precede Decided.
    let events: Vec<&PifEvent<u32, u32>> = runner
        .trace()
        .protocol_events_of(p(0))
        .map(|(_, e)| e)
        .collect();
    let started = events
        .iter()
        .position(|e| matches!(e, PifEvent::Started))
        .unwrap();
    let decided = events
        .iter()
        .position(|e| matches!(e, PifEvent::Decided))
        .unwrap();
    for (i, e) in events.iter().enumerate() {
        if matches!(e, PifEvent::ReceiveFck { .. }) {
            assert!(started < i && i < decided);
        }
    }
}
