// Index loops over parallel per-process arrays read clearer than enumerate here.
#![allow(clippy::needless_range_loop)]
//! Cross-crate integration tests for the §4 bounded-capacity extension:
//! the full protocol stack (PIF, IDL, ME) over channels holding more than
//! one message, with the generalized `2c + 3`-valued flag domains, plus the
//! deterministic demonstration that the paper's five-valued domain is
//! *exactly* a capacity-1 artifact.

use snapstab_repro::core::capacity::{drive_stale, StaleConfig, StaleSchedule};
use snapstab_repro::core::flag::FlagDomain;
use snapstab_repro::core::idl::IdlProcess;
use snapstab_repro::core::me::MeProcess;
use snapstab_repro::core::pif::{PifApp, PifProcess};
use snapstab_repro::core::request::RequestState;
use snapstab_repro::core::spec::{analyze_me_trace, channels_flushed, check_bare_pif_wave};
use snapstab_repro::sim::{
    Capacity, CorruptionPlan, LossModel, NetworkBuilder, ProcessId, RandomScheduler, RoundRobin,
    Runner, Scheduler, SimRng,
};

fn p(i: usize) -> ProcessId {
    ProcessId::new(i)
}

#[derive(Clone, Debug)]
struct Tagger {
    tag: u32,
}

impl PifApp<u32, u32> for Tagger {
    fn on_broadcast(&mut self, _from: ProcessId, _data: &u32) -> u32 {
        self.tag
    }
    fn on_feedback(&mut self, _from: ProcessId, _data: &u32) {}
}

type Proc = PifProcess<u32, u32, Tagger>;

fn pif_runner<S: Scheduler>(n: usize, capacity: usize, scheduler: S, seed: u64) -> Runner<Proc, S> {
    let processes = (0..n)
        .map(|i| {
            PifProcess::for_capacity(
                p(i),
                n,
                0u32,
                0u32,
                capacity,
                Tagger {
                    tag: 100 + i as u32,
                },
            )
        })
        .collect();
    let network = NetworkBuilder::new(n)
        .capacity(Capacity::Bounded(capacity))
        .build();
    Runner::new(processes, network, scheduler, seed)
}

/// Drains corrupted computations, requests a wave at P0, and checks
/// Specification 1 on the trace.
fn wave_spec_holds<S: Scheduler>(mut runner: Runner<Proc, S>, n: usize) {
    let initiator = p(0);
    let _ = runner.run_until(500_000, |r| {
        r.process(initiator).request() == RequestState::Done
    });
    let req_step = runner.step_count();
    runner.mark(initiator, "request");
    assert!(runner.process_mut(initiator).request_broadcast(7));
    runner
        .run_until(5_000_000, |r| {
            r.process(initiator).request() == RequestState::Done
        })
        .expect("wave decides");
    let verdict = check_bare_pif_wave(runner.trace(), initiator, n, req_step, &7, |q| {
        100 + q.index() as u32
    });
    assert!(verdict.holds(), "{verdict:?}");
}

#[test]
fn spec1_holds_at_capacity_two_from_corruption() {
    for n in [2usize, 3, 5] {
        for seed in 0..4 {
            let mut runner = pif_runner(n, 2, RoundRobin::new(), seed);
            let mut rng = SimRng::seed_from(seed * 37 + n as u64);
            CorruptionPlan::full().apply(&mut runner, &mut rng);
            wave_spec_holds(runner, n);
        }
    }
}

#[test]
fn spec1_holds_at_capacity_three_with_loss() {
    for seed in 0..4 {
        let n = 3;
        let mut runner = pif_runner(n, 3, RandomScheduler::new(), seed);
        runner.set_loss(LossModel::probabilistic(0.2));
        let mut rng = SimRng::seed_from(seed + 2_000);
        CorruptionPlan::full().apply(&mut runner, &mut rng);
        wave_spec_holds(runner, n);
    }
}

#[test]
fn property1_flush_holds_at_capacity_two() {
    // Pre-load every channel around P0 to the brim with junk; after one
    // complete wave, none of it survives (Property 1 generalizes: the wave
    // pushes at least one message through each channel direction and the
    // junk ahead of it is delivered or overwritten).
    let n = 3;
    let capacity = 2;
    let mut runner = pif_runner(n, capacity, RoundRobin::new(), 9);
    let junk = snapstab_repro::core::pif::PifMsg {
        broadcast: 0xDEAD_u32,
        feedback: 0xDEAD_u32,
        sender_state: snapstab_repro::core::flag::Flag::new(0),
        echoed_state: snapstab_repro::core::flag::Flag::new(0),
    };
    for i in 1..n {
        for (a, b) in [(p(0), p(i)), (p(i), p(0))] {
            runner
                .network_mut()
                .channel_mut(a, b)
                .unwrap()
                .preload(std::iter::repeat_n(junk.clone(), capacity));
        }
    }
    assert!(runner.process_mut(p(0)).request_broadcast(7));
    runner
        .run_until(1_000_000, |r| {
            r.process(p(0)).request() == RequestState::Done
        })
        .expect("wave decides");
    assert_eq!(runner.process(p(0)).request(), RequestState::Done);
    assert!(channels_flushed(runner.network(), p(0), |m| m.broadcast == 0xDEAD));
}

#[test]
fn idl_learns_exactly_at_capacity_two() {
    let n = 4;
    let ids: Vec<u64> = vec![42, 7, 99, 23];
    for seed in 0..4 {
        let processes = (0..n)
            .map(|i| IdlProcess::for_capacity(p(i), n, ids[i], 2))
            .collect();
        let network = NetworkBuilder::new(n)
            .capacity(Capacity::Bounded(2))
            .build();
        let mut runner = Runner::new(processes, network, RandomScheduler::new(), seed);
        let mut rng = SimRng::seed_from(seed + 77);
        CorruptionPlan::full().apply(&mut runner, &mut rng);
        // Drain corrupted computations, then request at P0.
        let _ = runner.run_until(500_000, |r| {
            (0..n).all(|i| r.process(p(i)).request() != RequestState::Wait)
        });
        if runner.process(p(0)).request() != RequestState::Done {
            runner
                .run_until(1_000_000, |r| {
                    r.process(p(0)).request() == RequestState::Done
                })
                .expect("drain");
        }
        assert!(runner.process_mut(p(0)).request_learning());
        runner
            .run_until(1_000_000, |r| {
                r.process(p(0)).request() == RequestState::Done
            })
            .expect("IDL decides");
        let learned = runner.process(p(0)).idl();
        assert_eq!(learned.min_id(), 7);
        for q in 1..n {
            assert_eq!(learned.id_of(p(q)), ids[q], "ID-Tab[{q}]");
        }
    }
}

#[test]
fn me_serves_requests_exclusively_at_capacity_two() {
    let n = 3;
    let ids = [30u64, 10, 20];
    for seed in 0..3 {
        let processes = (0..n)
            .map(|i| MeProcess::for_capacity(p(i), n, ids[i], 2))
            .collect();
        let network = NetworkBuilder::new(n)
            .capacity(Capacity::Bounded(2))
            .build();
        let mut runner = Runner::new(processes, network, RandomScheduler::new(), seed);
        let mut rng = SimRng::seed_from(seed + 300);
        CorruptionPlan::full().apply(&mut runner, &mut rng);

        // Random request workload.
        let mut executed = 0u64;
        while executed < 150_000 {
            executed += runner.run_steps(500).expect("run").steps;
            for i in 0..n {
                if runner.process(p(i)).request() == RequestState::Done && rng.gen_bool(0.3) {
                    runner.mark(p(i), "request");
                    assert!(runner.process_mut(p(i)).request_cs());
                }
            }
        }
        let report = analyze_me_trace(runner.trace(), n);
        assert!(report.exclusivity_holds(), "seed {seed}: {report:?}");
        assert!(
            !report.served.is_empty(),
            "seed {seed}: some request was served"
        );
    }
}

#[test]
fn paper_domain_is_exactly_a_capacity_one_artifact() {
    // Safe at its design capacity…
    let safe = drive_stale(
        &StaleConfig::canonical(1, FlagDomain::PAPER),
        StaleSchedule::Canonical,
    );
    assert!(!safe.stale_decided);
    assert_eq!(safe.max_stale_flag.value(), 3, "the Figure 1 bound");

    // …and broken one capacity above: the wave completes on garbage.
    let broken = drive_stale(
        &StaleConfig::canonical(2, FlagDomain::PAPER),
        StaleSchedule::Canonical,
    );
    assert!(broken.stale_decided, "{broken:?}");

    // The generalized domain restores the guarantee at capacity 2.
    let fixed = drive_stale(
        &StaleConfig::canonical(2, FlagDomain::for_capacity(2)),
        StaleSchedule::Canonical,
    );
    assert!(!fixed.stale_decided, "{fixed:?}");
    assert_eq!(
        fixed.max_stale_flag.value(),
        5,
        "tight: 2c + 1 stale increments"
    );
}

#[test]
fn undersized_domain_fails_spec1_end_to_end_at_capacity_two() {
    // Run the *whole protocol* (not just the driver) at capacity 2 with the
    // paper's five-valued domain, from the canonical adversarial start, and
    // watch Specification 1's Correctness fail: the initiator decides
    // without q ever receiving its broadcast.
    let n = 2;
    let cfg = StaleConfig::canonical(2, FlagDomain::PAPER);
    let processes: Vec<Proc> = (0..n)
        .map(|i| {
            PifProcess::with_domain(
                p(i),
                n,
                0u32,
                0u32,
                FlagDomain::PAPER,
                Tagger {
                    tag: 100 + i as u32,
                },
            )
        })
        .collect();
    let network = NetworkBuilder::new(n)
        .capacity(Capacity::Bounded(2))
        .build();
    let mut runner = Runner::new(processes, network, RoundRobin::new(), 0);

    // Install the canonical adversary manually (same shape as the driver).
    {
        let q = runner.process_mut(p(1));
        let mut s = q.core().snapshot();
        s.neig_state[0] = cfg.neig_state_q;
        s.state[0] = cfg.state_q;
        s.request = cfg.request_q;
        q.core_mut().restore(s);
    }
    let plant = |(ss, es): (
        snapstab_repro::core::flag::Flag,
        snapstab_repro::core::flag::Flag,
    )| {
        snapstab_repro::core::pif::PifMsg {
            broadcast: 0xDEAD_u32,
            feedback: 0xDEAD_u32,
            sender_state: ss,
            echoed_state: es,
        }
    };
    runner
        .network_mut()
        .channel_mut(p(1), p(0))
        .unwrap()
        .preload(cfg.qp_msgs.iter().copied().map(plant));
    runner
        .network_mut()
        .channel_mut(p(0), p(1))
        .unwrap()
        .preload(cfg.pq_msgs.iter().copied().map(plant));

    let req_step = runner.step_count();
    runner.mark(p(0), "request");
    assert!(runner.process_mut(p(0)).request_broadcast(7));
    // Deliver only stale-derived messages, as the canonical script does.
    for mv in snapstab_repro::core::capacity::canonical_script(2) {
        let applicable = match mv {
            snapstab_repro::sim::Move::Activate(_) => true,
            snapstab_repro::sim::Move::Deliver { from, to } => {
                !runner.network().channel(from, to).unwrap().is_empty()
            }
        };
        if applicable {
            runner.execute_move(mv).unwrap();
        }
        if runner.process(p(0)).request() == RequestState::Done {
            break;
        }
    }
    assert_eq!(
        runner.process(p(0)).request(),
        RequestState::Done,
        "the undersized domain decided on stale data"
    );
    let verdict = check_bare_pif_wave(runner.trace(), p(0), n, req_step, &7, |q| {
        100 + q.index() as u32
    });
    assert!(
        !verdict.holds(),
        "Specification 1 must be violated by the undersized domain: {verdict:?}"
    );
}

#[test]
fn correct_initialization_needs_no_adversary_margin() {
    // From clean starts, any domain ≥ 2 values completes a wave — the
    // extra values only matter against corruption. (Sanity check that the
    // generalized domain does not break the clean path.)
    for capacity in 1..=4usize {
        let n = 3;
        let mut runner = pif_runner(n, capacity, RoundRobin::new(), 5);
        assert!(runner.process_mut(p(0)).request_broadcast(7));
        runner
            .run_until(1_000_000, |r| {
                r.process(p(0)).request() == RequestState::Done
            })
            .expect("clean wave decides");
    }
}
