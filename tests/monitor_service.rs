//! Observability conformance: live monitored service runs — a
//! snap-stabilizing snapshot monitor sharing the service's transport —
//! judged by executable Specification 5 (`analyze_snapshot_trace`),
//! plus crafted adversarial traces proving the spec *rejects* what it
//! must: fabricated cuts, torn cuts, values from crashed processes,
//! causally inconsistent cuts.
//!
//! Live sweeps cover loss ∈ {0, 0.1, 0.3} × {inmem, udp} (UDP variants
//! skip with a warning when the sandbox forbids sockets, like
//! `tests/udp_runtime.rs`) and monitor-under-chaos runs where the
//! composite process — service *and* monitor plane — is corrupted,
//! crashed and partitioned mid-flight. Sized for a single-core CI
//! runner under the monitor step's 4-minute timeout.

use std::time::Duration;

use snapstab_repro::core::probe::{MonitorEvent, ProbeDigest};
use snapstab_repro::core::spec::{analyze_me_epochs, analyze_me_trace, analyze_snapshot_trace};
use snapstab_repro::net::{udp_available, UdpLoopback};
use snapstab_repro::runtime::{
    project_service_trace, run_monitored_forwarding_service_chaos_on,
    run_monitored_forwarding_service_on, run_monitored_mutex_service_chaos_on,
    run_monitored_mutex_service_on, ChaosMix, ChaosPlan, ForwardingServiceConfig, InMemory,
    LiveConfig, MonitorConfig, MutexServiceConfig, Transport,
};
use snapstab_repro::sim::{ProcessId, Trace, TraceEvent};

const LOSS_TIERS: [f64; 3] = [0.0, 0.1, 0.3];

/// Skip-and-warn guard: returns `true` (and prints a warning) when the
/// sandbox forbids UDP loopback sockets.
fn skip_without_udp(test: &str) -> bool {
    if udp_available() {
        return false;
    }
    eprintln!("warning: UDP loopback unavailable in this sandbox; skipping `{test}`");
    true
}

fn mutex_cfg(n: usize, loss: f64, seed: u64) -> MutexServiceConfig {
    MutexServiceConfig {
        n,
        requests_per_process: 4,
        cs_duration: 0,
        live: LiveConfig {
            loss,
            seed,
            record_trace: true,
            ..LiveConfig::default()
        },
        time_budget: Duration::from_secs(30),
    }
}

fn forwarding_cfg(n: usize, loss: f64, seed: u64) -> ForwardingServiceConfig {
    ForwardingServiceConfig {
        n,
        payloads_per_process: 3,
        buffer_cap: 4,
        prefill_stale: true,
        live: LiveConfig {
            loss,
            seed,
            record_trace: true,
            ..LiveConfig::default()
        },
        time_budget: Duration::from_secs(30),
    }
}

fn fast_monitor() -> MonitorConfig {
    MonitorConfig {
        interval: Duration::from_millis(5),
        ..MonitorConfig::default()
    }
}

/// One monitored mutex run on the given transport: all requests served,
/// at least one cut decided, Specification 5 holds, and the projected
/// service trace still satisfies Specification 3.
fn monitored_mutex_conformance(
    transport: &dyn Transport<
        snapstab_repro::runtime::MonitoredMsg<snapstab_repro::core::me::MeMsg>,
    >,
    loss: f64,
    seed: u64,
) {
    let n = 3;
    let cfg = mutex_cfg(n, loss, seed);
    let report =
        run_monitored_mutex_service_on(&cfg, &fast_monitor(), transport).expect("transport spawns");
    let total = cfg.requests_per_process * n as u64;
    assert_eq!(
        report.served, total,
        "loss {loss} seed {seed}: monitoring must not eat requests"
    );
    assert!(
        !report.monitor.cuts.is_empty(),
        "loss {loss} seed {seed}: at least one cut must decide"
    );
    let trace = report.trace.as_ref().expect("recording on");
    let spec = analyze_snapshot_trace(trace, n, &[]);
    assert!(spec.holds(), "loss {loss} seed {seed}: {spec:?}");
    assert_eq!(
        spec.cuts_decided(),
        report.monitor.cuts.len(),
        "every surfaced cut appears in the trace verdict"
    );
    let service = project_service_trace(trace);
    let me = analyze_me_trace(&service, n);
    assert!(
        me.exclusivity_holds(),
        "loss {loss}: {:?}",
        me.genuine_overlaps
    );
    assert!(me.all_served(), "loss {loss}: {:?}", me.unserved);
}

#[test]
fn monitored_mutex_inmem_across_loss_tiers() {
    for (k, &loss) in LOSS_TIERS.iter().enumerate() {
        monitored_mutex_conformance(&InMemory, loss, 40 + k as u64);
    }
}

#[test]
fn monitored_mutex_udp_across_loss_tiers() {
    if skip_without_udp("monitored_mutex_udp_across_loss_tiers") {
        return;
    }
    for (k, &loss) in LOSS_TIERS.iter().enumerate() {
        monitored_mutex_conformance(&UdpLoopback::new(), loss, 50 + k as u64);
    }
}

#[test]
fn monitored_forwarding_inmem_with_stale_prefill() {
    let n = 3;
    let cfg = forwarding_cfg(n, 0.1, 61);
    let report = run_monitored_forwarding_service_on(&cfg, &fast_monitor(), &InMemory)
        .expect("in-memory spawns");
    assert_eq!(report.delivered, cfg.payloads_per_process * n as u64);
    assert!(!report.monitor.cuts.is_empty());
    let trace = report.trace.as_ref().expect("recording on");
    let spec = analyze_snapshot_trace(trace, n, &[]);
    assert!(spec.holds(), "{spec:?}");
}

/// Monitor under chaos: the composite process is corrupted, crashed and
/// partitioned mid-run. Spec 5 must hold with the report's
/// authoritative fault steps (interrupted cuts exempt but classified,
/// refusals allowed, fabrication never), and some cuts must still land.
#[test]
fn monitored_mutex_under_chaos_all_mixes() {
    for (k, mix) in [ChaosMix::Corrupt, ChaosMix::Crash, ChaosMix::All]
        .into_iter()
        .enumerate()
    {
        let n = 3;
        let seed = 70 + k as u64;
        let cfg = mutex_cfg(n, 0.0, seed);
        let plan = ChaosPlan {
            bursts: 2,
            quiet: Duration::from_millis(15),
            disruption: Duration::from_millis(15),
            ..ChaosPlan::profile(mix, seed)
        };
        let (report, chaos) =
            run_monitored_mutex_service_chaos_on(&cfg, &fast_monitor(), &InMemory, &plan)
                .expect("in-memory spawns");
        assert_eq!(chaos.bursts_fired, 2, "{mix:?}");
        assert_eq!(
            report.served,
            cfg.requests_per_process * n as u64,
            "{mix:?}: chaos must not eat requests"
        );
        let trace = report.trace.as_ref().expect("recording on");
        let spec = analyze_snapshot_trace(trace, n, &chaos.fault_steps);
        assert!(spec.holds(), "{mix:?}: {spec:?}");
        assert!(
            spec.cuts_decided() > 0,
            "{mix:?}: monitoring must survive the bursts"
        );
        let service = project_service_trace(trace);
        let epochs = analyze_me_epochs(&service, n, &chaos.fault_steps);
        assert!(epochs.holds(), "{mix:?}: {epochs:?}");
    }
}

#[test]
fn monitored_forwarding_under_chaos() {
    let n = 3;
    let cfg = forwarding_cfg(n, 0.0, 83);
    let plan = ChaosPlan {
        bursts: 2,
        quiet: Duration::from_millis(15),
        disruption: Duration::from_millis(15),
        ..ChaosPlan::profile(ChaosMix::All, 83)
    };
    let (report, chaos) =
        run_monitored_forwarding_service_chaos_on(&cfg, &fast_monitor(), &InMemory, &plan)
            .expect("in-memory spawns");
    assert_eq!(chaos.bursts_fired, 2);
    let trace = report.trace.as_ref().expect("recording on");
    let spec = analyze_snapshot_trace(trace, n, &chaos.fault_steps);
    assert!(spec.holds(), "{spec:?}");
}

// ---------------------------------------------------------------------
// Crafted adversarial traces: Specification 5 must REJECT these. The
// unit tests in `core::spec` cover the checker's internals; these prove
// the public contract end-to-end through the integration surface.
// ---------------------------------------------------------------------

type STrace = Trace<(), MonitorEvent>;

fn p(i: usize) -> ProcessId {
    ProcessId::new(i)
}

fn digest(proc_: usize, served: u64) -> ProbeDigest {
    ProbeDigest {
        proc: proc_ as u16,
        served,
        ..ProbeDigest::default()
    }
}

fn push_started(t: &mut STrace, step: u64, init: usize, cut: u64) {
    t.push(
        step,
        TraceEvent::Protocol {
            p: p(init),
            event: MonitorEvent::CutStarted { cut },
        },
    );
}

fn push_decided(t: &mut STrace, step: u64, init: usize, cut: u64, values: Vec<ProbeDigest>) {
    t.push(
        step,
        TraceEvent::Protocol {
            p: p(init),
            event: MonitorEvent::CutDecided { cut, values },
        },
    );
}

#[test]
fn crafted_fabricated_cut_rejected() {
    // A decision with no matching wave: corrupted monitor state may
    // refuse cuts, never mint them.
    let mut t = STrace::new();
    push_decided(
        &mut t,
        10,
        0,
        3,
        vec![digest(0, 0), digest(1, 0), digest(2, 0)],
    );
    let spec = analyze_snapshot_trace(&t, 3, &[]);
    assert!(!spec.holds());
    assert_eq!(spec.fabricated, vec![(p(0), 3)]);
}

#[test]
fn crafted_torn_cut_rejected() {
    // Two values claiming the same process (and none for another): the
    // wave's one-value-per-live-process promise is torn.
    let mut t = STrace::new();
    push_started(&mut t, 5, 0, 0);
    push_decided(
        &mut t,
        9,
        0,
        0,
        vec![digest(0, 0), digest(1, 0), digest(1, 0)],
    );
    let spec = analyze_snapshot_trace(&t, 3, &[]);
    assert!(!spec.holds());
    assert_eq!(spec.torn, vec![(p(0), 0)]);
}

#[test]
fn crafted_value_from_crashed_process_rejected() {
    // Process 2 is crashed for the wave's whole span, yet the cut
    // reports a value for it — inconsistent with the live set.
    let mut t = STrace::new();
    t.push_marker(2, p(2), "crash");
    push_started(&mut t, 5, 0, 0);
    push_decided(
        &mut t,
        9,
        0,
        0,
        vec![digest(0, 0), digest(1, 0), digest(2, 0)],
    );
    t.push_marker(12, p(2), "restart");
    let spec = analyze_snapshot_trace(&t, 3, &[]);
    assert!(!spec.holds());
    assert_eq!(spec.crashed_values, vec![(p(0), 0, p(2))]);
}

#[test]
fn crafted_causally_inconsistent_cut_rejected() {
    // The service trace shows p1's first serve at step 20, after the
    // wave decided — but the cut claims p1 had already served one.
    // A cut may not report a request as both unserved in the merged
    // order and already granted inside the cut.
    let mut t = STrace::new();
    push_started(&mut t, 5, 0, 0);
    push_decided(
        &mut t,
        9,
        0,
        0,
        vec![digest(0, 0), digest(1, 1), digest(2, 0)],
    );
    t.push_marker(20, p(1), "served");
    let spec = analyze_snapshot_trace(&t, 3, &[]);
    assert!(!spec.holds());
    assert_eq!(spec.causal_violations, vec![(p(0), 0, p(1))]);
}

#[test]
fn crafted_cross_initiator_forgery_rejected() {
    // p0 opens wave 3; a corrupted monitor at p1 decides "its" cut 3.
    // The decision must be judged against p1's own ledger — which never
    // opened wave 3 — so it is fabricated at p1, and p0's genuine wave
    // stays pending. Cross-initiator attribution may never launder a
    // forged cut through another ledger's open wave.
    let mut t = STrace::new();
    push_started(&mut t, 5, 0, 3);
    push_decided(
        &mut t,
        9,
        1,
        3,
        vec![digest(0, 0), digest(1, 0), digest(2, 0)],
    );
    let spec = analyze_snapshot_trace(&t, 3, &[]);
    assert!(!spec.holds());
    assert_eq!(spec.fabricated, vec![(p(1), 3)]);
    assert_eq!(spec.pending, vec![(p(0), 3)]);
    assert_eq!(spec.cuts_of(p(1)), 0);
}

#[test]
fn crafted_interleaved_waves_deciding_out_of_order_accepted() {
    // Two initiators with overlapping waves deciding in the opposite
    // order they started — legal: each ledger pairs its own ids, and
    // concurrent §4.1 waves are independent.
    let mut t = STrace::new();
    push_started(&mut t, 2, 0, 0);
    push_started(&mut t, 3, 1, 0);
    push_decided(
        &mut t,
        6,
        1,
        0,
        vec![digest(0, 0), digest(1, 0), digest(2, 0)],
    );
    push_started(&mut t, 7, 1, 1);
    push_decided(
        &mut t,
        8,
        0,
        0,
        vec![digest(0, 0), digest(1, 0), digest(2, 0)],
    );
    push_decided(
        &mut t,
        10,
        1,
        1,
        vec![digest(0, 0), digest(1, 0), digest(2, 0)],
    );
    let spec = analyze_snapshot_trace(&t, 3, &[]);
    assert!(spec.holds(), "{spec:?}");
    assert_eq!(spec.initiators(), vec![p(0), p(1)]);
    assert_eq!(spec.cuts_of(p(0)), 1);
    assert_eq!(spec.cuts_of(p(1)), 2);
    // Decision order in the report follows the merged trace, not the
    // start order.
    let order: Vec<(usize, u64)> = spec
        .cuts
        .iter()
        .map(|c| (c.initiator.index(), c.cut))
        .collect();
    assert_eq!(order, vec![(1, 0), (0, 0), (1, 1)]);
}

#[test]
fn crafted_refusal_streaks_accounted_per_ledger() {
    // p0 refuses 0,1 then decides 2; p1 refuses 0,1,2 unbroken. Streaks
    // are per-ledger signals — exactly what the telemetry refusal-streak
    // alert thresholds.
    let mut t = STrace::new();
    let mut step = 1;
    for cut in 0..2u64 {
        push_started(&mut t, step, 0, cut);
        t.push(
            step + 1,
            TraceEvent::Protocol {
                p: p(0),
                event: MonitorEvent::CutRefused { cut },
            },
        );
        step += 2;
    }
    push_started(&mut t, step, 0, 2);
    push_decided(
        &mut t,
        step + 1,
        0,
        2,
        vec![digest(0, 0), digest(1, 0), digest(2, 0)],
    );
    step += 2;
    for cut in 0..3u64 {
        push_started(&mut t, step, 1, cut);
        t.push(
            step + 1,
            TraceEvent::Protocol {
                p: p(1),
                event: MonitorEvent::CutRefused { cut },
            },
        );
        step += 2;
    }
    let spec = analyze_snapshot_trace(&t, 3, &[]);
    assert!(spec.holds(), "refusals are always legal: {spec:?}");
    assert_eq!(spec.refused_of(p(0)), 2);
    assert_eq!(spec.refused_of(p(1)), 3);
    assert_eq!(spec.max_refusal_streak_of(p(0)), 2);
    assert_eq!(spec.max_refusal_streak_of(p(1)), 3);
}

#[test]
fn crafted_consistent_trace_accepted_and_refusal_is_legal() {
    // The dual: a well-formed wave whose values agree with the
    // surrounding serve markers passes, and an explicit refusal is
    // never a violation.
    let mut t = STrace::new();
    t.push_marker(3, p(1), "served");
    push_started(&mut t, 5, 0, 0);
    push_decided(
        &mut t,
        9,
        0,
        0,
        vec![digest(0, 0), digest(1, 1), digest(2, 0)],
    );
    push_started(&mut t, 12, 0, 1);
    t.push(
        14,
        TraceEvent::Protocol {
            p: p(0),
            event: MonitorEvent::CutRefused { cut: 1 },
        },
    );
    let spec = analyze_snapshot_trace(&t, 3, &[]);
    assert!(spec.holds(), "{spec:?}");
    assert_eq!(spec.cuts_decided(), 1);
    assert_eq!(spec.refused, vec![(p(0), 1)]);
}
