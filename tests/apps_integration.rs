//! Integration + property tests of the PIF applications (snapshot, leader
//! election, reset, barrier): each inherits the snap-stabilization
//! contract from Theorem 2 and must deliver it from arbitrary corrupted
//! starts.

use proptest::prelude::*;
use snapstab_repro::apps::{
    check_detection, BarrierProcess, LeaderProcess, ResetProcess, Resettable, SnapshotProcess,
    TerminationProcess,
};
use snapstab_repro::core::request::RequestState;
use snapstab_repro::sim::{
    Capacity, CorruptionPlan, LossModel, NetworkBuilder, ProcessId, RandomScheduler, Runner, SimRng,
};

fn p(i: usize) -> ProcessId {
    ProcessId::new(i)
}

#[derive(Clone, Debug, PartialEq, Eq)]
struct Flagged(bool);

impl Resettable for Flagged {
    fn reset(&mut self) {
        self.0 = false;
    }
}

#[test]
fn snapshot_then_leader_then_reset_pipeline() {
    // The apps compose over the same substrate: run one of each kind in
    // separate systems seeded identically and check all deliver.
    let n = 3;
    let mut snap = {
        let processes = (0..n)
            .map(|i| SnapshotProcess::new(p(i), n, i as u32))
            .collect();
        let network = NetworkBuilder::new(n)
            .capacity(Capacity::Bounded(1))
            .build();
        Runner::new(processes, network, RandomScheduler::new(), 7)
    };
    snap.process_mut(p(0)).request_snapshot();
    snap.run_until(500_000, |r| r.process(p(0)).request() == RequestState::Done)
        .unwrap();
    assert_eq!(snap.process(p(0)).snapshot_vector(), Some(vec![0, 1, 2]));

    let mut lead = {
        let processes = (0..n)
            .map(|i| LeaderProcess::new(p(i), n, 100 - i as u64))
            .collect();
        let network = NetworkBuilder::new(n)
            .capacity(Capacity::Bounded(1))
            .build();
        Runner::new(processes, network, RandomScheduler::new(), 7)
    };
    lead.process_mut(p(0)).request_election();
    lead.run_until(500_000, |r| r.process(p(0)).request() == RequestState::Done)
        .unwrap();
    assert_eq!(lead.process(p(0)).elected(), Some((98, p(2))));

    let mut reset = {
        let processes = (0..n)
            .map(|i| ResetProcess::new(p(i), n, Flagged(true)))
            .collect();
        let network = NetworkBuilder::new(n)
            .capacity(Capacity::Bounded(1))
            .build();
        Runner::new(processes, network, RandomScheduler::new(), 7)
    };
    reset.process_mut(p(0)).request_reset();
    reset
        .run_until(500_000, |r| r.process(p(0)).request() == RequestState::Done)
        .unwrap();
    for i in 0..n {
        assert_eq!(reset.process(p(i)).app(), &Flagged(false));
    }
}

#[test]
fn barrier_under_loss_keeps_lockstep() {
    let n = 3;
    let processes = (0..n).map(|i| BarrierProcess::new(p(i), n)).collect();
    let network = NetworkBuilder::new(n)
        .capacity(Capacity::Bounded(1))
        .build();
    let mut runner = Runner::new(processes, network, RandomScheduler::new(), 8);
    runner.set_loss(LossModel::probabilistic(0.2));
    for round in 1..=3u64 {
        for i in 0..n {
            assert!(runner.process_mut(p(i)).finish_work());
        }
        runner
            .run_until(2_000_000, |r| {
                (0..n).all(|i| r.process(p(i)).phase() == round)
            })
            .unwrap();
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, .. ProptestConfig::default() })]

    /// The first requested snapshot after arbitrary corruption is exact.
    #[test]
    fn snapshot_first_request_exact(seed in any::<u64>(), n in 2usize..6) {
        let processes = (0..n).map(|i| SnapshotProcess::new(p(i), n, 7 * i as u32)).collect();
        let network = NetworkBuilder::new(n).capacity(Capacity::Bounded(1)).build();
        let mut runner = Runner::new(processes, network, RandomScheduler::new(), seed);
        let mut rng = SimRng::seed_from(seed ^ 0x5A);
        CorruptionPlan::full().apply(&mut runner, &mut rng);
        for i in 0..n {
            runner.process_mut(p(i)).set_value(7 * i as u32);
        }
        let _ = runner.run_until(1_000_000, |r| {
            r.process(p(0)).request() == RequestState::Done
        });
        prop_assert!(runner.process_mut(p(0)).request_snapshot());
        runner
            .run_until(3_000_000, |r| r.process(p(0)).request() == RequestState::Done)
            .expect("snapshot decides");
        let expected: Vec<u32> = (0..n).map(|i| 7 * i as u32).collect();
        prop_assert_eq!(runner.process(p(0)).snapshot_vector(), Some(expected));
    }

    /// The first requested election after arbitrary corruption is exact.
    #[test]
    fn leader_first_request_exact(seed in any::<u64>(), n in 2usize..6) {
        let ids: Vec<u64> = (0..n).map(|i| 1000 - 13 * i as u64).collect();
        let min_at = n - 1; // smallest id is at the last process
        let processes = (0..n).map(|i| LeaderProcess::new(p(i), n, ids[i])).collect();
        let network = NetworkBuilder::new(n).capacity(Capacity::Bounded(1)).build();
        let mut runner = Runner::new(processes, network, RandomScheduler::new(), seed);
        let mut rng = SimRng::seed_from(seed ^ 0x1E);
        CorruptionPlan::full().apply(&mut runner, &mut rng);
        let _ = runner.run_until(1_000_000, |r| {
            r.process(p(0)).request() == RequestState::Done
        });
        prop_assert!(runner.process_mut(p(0)).request_election());
        runner
            .run_until(3_000_000, |r| r.process(p(0)).request() == RequestState::Done)
            .expect("election decides");
        prop_assert_eq!(runner.process(p(0)).elected(), Some((ids[min_at], p(min_at))));
    }

    /// Barrier processes re-synchronize to within one phase after
    /// arbitrary corruption, under continuous work.
    #[test]
    fn barrier_resynchronizes(seed in any::<u64>()) {
        let n = 3;
        let processes = (0..n).map(|i| BarrierProcess::new(p(i), n)).collect();
        let network = NetworkBuilder::new(n).capacity(Capacity::Bounded(1)).build();
        let mut runner = Runner::new(processes, network, RandomScheduler::new(), seed);
        let mut rng = SimRng::seed_from(seed ^ 0xBA);
        CorruptionPlan::full().apply(&mut runner, &mut rng);
        let mut executed = 0;
        while executed < 80_000 {
            executed += runner.run_steps(400).expect("run").steps;
            for i in 0..n {
                let proc = runner.process_mut(p(i));
                if !proc.is_syncing() {
                    proc.finish_work();
                }
            }
        }
        let phases: Vec<u64> = (0..n).map(|i| runner.process(p(i)).phase()).collect();
        let (min, max) = (
            *phases.iter().min().unwrap(),
            *phases.iter().max().unwrap(),
        );
        prop_assert!(max - min <= 1, "phases diverged: {phases:?}");
        for i in 0..n {
            prop_assert!(runner.process(p(i)).passes() > 0, "no progress at P{i}");
        }
    }
}

#[test]
fn termination_detection_full_lifecycle() {
    // Seed work, watch it diffuse and exhaust, and confirm via repeated
    // detections — each window-sound — from a corrupted start.
    for seed in 0..4u64 {
        let n = 4;
        let processes = (0..n).map(|i| TerminationProcess::new(p(i), n)).collect();
        let network = NetworkBuilder::new(n)
            .capacity(Capacity::Bounded(1))
            .build();
        let mut runner = Runner::new(processes, network, RandomScheduler::new(), seed);
        let mut rng = SimRng::seed_from(seed + 900);
        CorruptionPlan::full().apply(&mut runner, &mut rng);
        runner.process_mut(p(2)).seed_work(14);
        let _ = runner.run_until(2_000_000, |r| {
            r.process(p(0)).request() == RequestState::Done
        });
        assert_eq!(
            runner.process(p(0)).request(),
            RequestState::Done,
            "seed {seed}"
        );

        let mut confirmed = false;
        for _round in 0..15 {
            let req_step = runner.step_count();
            assert!(runner.process_mut(p(0)).request_detection());
            runner
                .run_until(3_000_000, |r| {
                    r.process(p(0)).request() == RequestState::Done
                })
                .expect("detection decides");
            let v = check_detection(runner.trace(), p(0), n, req_step);
            assert!(v.holds(), "seed {seed}: {v:?}");
            if runner.process(p(0)).verdict() == Some(true) {
                confirmed = true;
                break;
            }
        }
        assert!(
            confirmed,
            "seed {seed}: detection eventually confirms termination"
        );
    }
}

#[test]
fn termination_detection_under_loss() {
    let n = 3;
    let processes = (0..n).map(|i| TerminationProcess::new(p(i), n)).collect();
    let network = NetworkBuilder::new(n)
        .capacity(Capacity::Bounded(1))
        .build();
    let mut runner = Runner::new(processes, network, RandomScheduler::new(), 77);
    runner.set_loss(LossModel::probabilistic(0.2));
    runner.process_mut(p(1)).seed_work(6);
    runner
        .run_until(2_000_000, |r| (0..n).all(|i| !r.process(p(i)).is_active()))
        .expect("work exhausts under loss");
    let req_step = runner.step_count();
    assert!(runner.process_mut(p(0)).request_detection());
    runner
        .run_until(3_000_000, |r| {
            r.process(p(0)).request() == RequestState::Done
        })
        .expect("detection decides");
    let v = check_detection(runner.trace(), p(0), n, req_step);
    assert!(v.holds(), "{v:?}");
}
