// Inline generic runner/checker types in assertions; aliasing them would hide
// which instantiation is under test.
#![allow(clippy::type_complexity)]
//! Cross-crate integration tests for the §5 general-topology extension:
//! tree waves on paths, stars, binary trees and spanning trees of
//! non-tree graphs, against Specification 1 lifted to trees, from clean
//! and arbitrarily-corrupted starts, with loss and mid-run fault bursts.

use snapstab_repro::core::request::RequestState;
use snapstab_repro::sim::{
    Capacity, CorruptionPlan, LossModel, NetworkBuilder, ProcessId, RandomScheduler, RoundRobin,
    Runner, Scheduler, SimRng, Topology,
};
use snapstab_repro::topology::{check_tree_wave, Count, Gather, MinId, TreePifNode};

fn p(i: usize) -> ProcessId {
    ProcessId::new(i)
}

type CountNode = TreePifNode<u8, u64, Count>;

fn count_system<S: Scheduler>(topo: &Topology, scheduler: S, seed: u64) -> Runner<CountNode, S> {
    let n = topo.n();
    let processes = (0..n)
        .map(|i| TreePifNode::new(p(i), topo, 0u8, Count))
        .collect();
    let network = NetworkBuilder::new(n)
        .capacity(Capacity::Bounded(1))
        .build();
    Runner::new(processes, network, scheduler, seed)
}

/// Drains corrupted computations, requests a wave at `root`, runs to the
/// decision and checks the tree-wave specification.
fn wave_spec_holds<S: Scheduler>(runner: Runner<CountNode, S>, root: ProcessId, n: usize) {
    let mut runner = runner;
    wave_spec_holds_mut(&mut runner, root, n);
}

/// Same as [`wave_spec_holds`] but borrows, for repeated waves.
fn wave_spec_holds_mut<S: Scheduler>(runner: &mut Runner<CountNode, S>, root: ProcessId, n: usize) {
    let _ = runner.run_until(1_000_000, |r| {
        r.process(root).request() == RequestState::Done
    });
    assert_eq!(
        runner.process(root).request(),
        RequestState::Done,
        "corrupted computations drain (Termination)"
    );
    let req_step = runner.step_count();
    runner.mark(root, "request");
    assert!(runner.process_mut(root).request_wave(7));
    runner
        .run_until(5_000_000, |r| {
            r.process(root).request() == RequestState::Done
        })
        .expect("wave decides");
    let verdict = check_tree_wave(runner.trace(), root, n, req_step, &7, &(n as u64));
    assert!(verdict.holds(), "{verdict:?}");
}

#[test]
fn spec_holds_on_every_tree_shape_from_corruption() {
    for (name, topo) in [
        ("path", Topology::path(6)),
        ("star", Topology::star(6)),
        ("binary", Topology::binary_tree(6)),
    ] {
        for seed in 0..4 {
            let mut runner = count_system(&topo, RandomScheduler::new(), seed);
            let mut rng = SimRng::seed_from(seed * 97 + 5);
            CorruptionPlan::full().apply(&mut runner, &mut rng);
            let n = topo.n();
            wave_spec_holds(runner, p(0), n);
            let _ = name;
        }
    }
}

#[test]
fn spec_holds_from_interior_and_leaf_roots() {
    let topo = Topology::binary_tree(7);
    for root in [1usize, 3, 6] {
        for seed in 0..3 {
            let mut runner = count_system(&topo, RandomScheduler::new(), seed);
            let mut rng = SimRng::seed_from(seed + root as u64 * 17);
            CorruptionPlan::full().apply(&mut runner, &mut rng);
            wave_spec_holds(runner, p(root), 7);
        }
    }
}

#[test]
fn spec_holds_under_loss() {
    let topo = Topology::path(5);
    for seed in 0..4 {
        let mut runner = count_system(&topo, RandomScheduler::new(), seed);
        runner.set_loss(LossModel::probabilistic(0.25));
        let mut rng = SimRng::seed_from(seed + 400);
        CorruptionPlan::full().apply(&mut runner, &mut rng);
        wave_spec_holds(runner, p(0), 5);
    }
}

#[test]
fn spec_holds_on_spanning_trees_of_dense_graphs() {
    for (graph, root) in [
        (Topology::complete(6), 0usize),
        (Topology::ring(7), 3),
        (
            Topology::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0), (1, 3)]),
            2,
        ),
    ] {
        let tree = graph.bfs_spanning_tree(p(root));
        assert!(tree.is_tree());
        let n = tree.n();
        for seed in 0..3 {
            let mut runner = count_system(&tree, RandomScheduler::new(), seed);
            let mut rng = SimRng::seed_from(seed + 800);
            CorruptionPlan::full().apply(&mut runner, &mut rng);
            wave_spec_holds(runner, p(root), n);
        }
    }
}

#[test]
fn mid_run_fault_burst_is_contained_to_the_next_wave() {
    // Snap-stabilization's contract: a wave *started after* faults cease
    // satisfies the specification. Corrupt mid-run, then request.
    let topo = Topology::binary_tree(6);
    for seed in 0..4 {
        let mut runner = count_system(&topo, RandomScheduler::new(), seed);
        // A healthy first wave.
        wave_spec_holds_mut(&mut runner, p(0), 6);
        // Fault burst mid-operation.
        let mut rng = SimRng::seed_from(seed + 1_000);
        CorruptionPlan::full().apply(&mut runner, &mut rng);
        // The next started wave is again exact.
        wave_spec_holds_mut(&mut runner, p(0), 6);
    }
}

#[test]
fn min_id_leader_election_on_a_tree() {
    let topo = Topology::path(5);
    let ids = [50u64, 20, 90, 10, 70];
    for seed in 0..3 {
        let processes: Vec<TreePifNode<u8, u64, MinId>> = (0..5)
            .map(|i| TreePifNode::new(p(i), &topo, 0u8, MinId { my_id: ids[i] }))
            .collect();
        let network = NetworkBuilder::new(5)
            .capacity(Capacity::Bounded(1))
            .build();
        let mut runner = Runner::new(processes, network, RandomScheduler::new(), seed);
        let mut rng = SimRng::seed_from(seed + 7);
        CorruptionPlan::full().apply(&mut runner, &mut rng);
        let _ = runner.run_until(1_000_000, |r| {
            r.process(p(0)).request() == RequestState::Done
        });
        assert!(runner.process_mut(p(0)).request_wave(1));
        runner
            .run_until(5_000_000, |r| {
                r.process(p(0)).request() == RequestState::Done
            })
            .expect("wave decides");
        assert_eq!(
            runner.process(p(0)).result(),
            Some(&10),
            "the minimum id wins"
        );
    }
}

#[test]
fn gather_snapshot_collects_every_process_once() {
    let topo = Topology::star(5);
    let processes: Vec<TreePifNode<u8, Vec<(ProcessId, u64)>, Gather>> = (0..5)
        .map(|i| {
            TreePifNode::new(
                p(i),
                &topo,
                0u8,
                Gather {
                    mine: 100 + i as u64,
                },
            )
        })
        .collect();
    let network = NetworkBuilder::new(5)
        .capacity(Capacity::Bounded(1))
        .build();
    let mut runner = Runner::new(processes, network, RoundRobin::new(), 3);
    assert!(runner.process_mut(p(0)).request_wave(1));
    runner
        .run_until(2_000_000, |r| {
            r.process(p(0)).request() == RequestState::Done
        })
        .expect("wave decides");
    let got = runner.process(p(0)).result().expect("result").clone();
    let expected: Vec<(ProcessId, u64)> = (0..5).map(|i| (p(i), 100 + i as u64)).collect();
    assert_eq!(got, expected);
}

#[test]
fn bounded_capacity_channels_work_with_the_matched_domain() {
    use snapstab_repro::core::flag::FlagDomain;
    let topo = Topology::path(4);
    for seed in 0..3 {
        let processes: Vec<CountNode> = (0..4)
            .map(|i| TreePifNode::with_domain(p(i), &topo, 0u8, Count, FlagDomain::for_capacity(2)))
            .collect();
        let network = NetworkBuilder::new(4)
            .capacity(Capacity::Bounded(2))
            .build();
        let mut runner = Runner::new(processes, network, RandomScheduler::new(), seed);
        let mut rng = SimRng::seed_from(seed + 55);
        CorruptionPlan::full().apply(&mut runner, &mut rng);
        wave_spec_holds(runner, p(0), 4);
    }
}
