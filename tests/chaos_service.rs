//! Chaos conformance: seeded transient-fault injection against *live*
//! mid-flight service runs — worker state corruption, crash/restart
//! storms, link partitions and drop storms — with the supervised
//! self-healing runtime, judged by the epoch-segmented executable
//! specifications (`analyze_me_epochs` / `analyze_forwarding_epochs`).
//!
//! The sweeps below fire **well over 200 seeded mid-run fault bursts**
//! across fault mixes × loss tiers × transports (each test counts its
//! bursts and asserts the tally), and every run must produce a clean
//! per-epoch Specification 3/4 verdict with zero manual intervention:
//! the supervisor alone detects and heals every crashed or wedged
//! worker, and the engine alone heals every partition and drop storm.
//!
//! UDP variants skip with a warning — like `tests/udp_runtime.rs` —
//! when the sandbox forbids socket creation.
//!
//! Runs are sized for a single-core CI runner: tiny fleets, short quiet
//! periods, two bursts per plan; the whole file stays well under the CI
//! chaos step's 4-minute hard timeout.

use std::time::Duration;

use snapstab_repro::core::spec::{analyze_forwarding_epochs, analyze_me_epochs};
use snapstab_repro::net::{udp_available, UdpLoopback};
use snapstab_repro::runtime::{
    run_forwarding_service_chaos_on, run_mutex_service_chaos_on, ChaosMix, ChaosPlan,
    ForwardingServiceConfig, InMemory, LiveConfig, MutexServiceConfig, Transport,
};

const MIXES: [ChaosMix; 5] = [
    ChaosMix::Corrupt,
    ChaosMix::Crash,
    ChaosMix::Partition,
    ChaosMix::Storm,
    ChaosMix::All,
];

/// Skip-and-warn guard: returns `true` (and prints a warning) when the
/// sandbox forbids UDP loopback sockets.
fn skip_without_udp(test: &str) -> bool {
    if udp_available() {
        return false;
    }
    eprintln!("warning: UDP loopback unavailable in this sandbox; skipping `{test}`");
    true
}

/// A small two-burst plan: every burst lands mid-run even on a slow
/// single-core box, and a full sweep of them stays inside CI budgets.
fn small_plan(mix: ChaosMix, seed: u64) -> ChaosPlan {
    ChaosPlan {
        bursts: 2,
        quiet: Duration::from_millis(15),
        disruption: Duration::from_millis(15),
        ..ChaosPlan::profile(mix, seed)
    }
}

fn mutex_cfg(n: usize, loss: f64, seed: u64) -> MutexServiceConfig {
    MutexServiceConfig {
        n,
        requests_per_process: 6,
        cs_duration: 0,
        live: LiveConfig {
            loss,
            seed,
            record_trace: true,
            ..LiveConfig::default()
        },
        time_budget: Duration::from_secs(30),
    }
}

fn forwarding_cfg(n: usize, loss: f64, seed: u64) -> ForwardingServiceConfig {
    ForwardingServiceConfig {
        n,
        payloads_per_process: 3,
        buffer_cap: 4,
        prefill_stale: true,
        live: LiveConfig {
            loss,
            seed,
            record_trace: true,
            ..LiveConfig::default()
        },
        time_budget: Duration::from_secs(30),
    }
}

/// One mutex chaos run on the given transport; asserts the full
/// robustness contract and returns the number of bursts fired.
fn mutex_chaos_run(
    transport: &dyn Transport<snapstab_repro::core::me::MeMsg>,
    mix: ChaosMix,
    loss: f64,
    seed: u64,
) -> u64 {
    let n = 3;
    let cfg = mutex_cfg(n, loss, seed);
    let plan = small_plan(mix, seed);
    let (report, chaos) = run_mutex_service_chaos_on(&cfg, transport, &plan)
        .expect("transport setup (UDP runs are guarded by `udp_available`)");
    let label = format!("mix {} loss {loss} seed {seed}", mix.as_str());
    assert_eq!(
        report.served,
        cfg.requests_per_process * n as u64,
        "every client request must be served despite the chaos ({label})"
    );
    assert_eq!(
        chaos.bursts_fired, plan.bursts,
        "every planned burst must land mid-run ({label})"
    );
    let trace = report.trace.as_ref().expect("chaos runs record the trace");
    let epochs = analyze_me_epochs(trace, n, &chaos.fault_steps);
    assert!(
        epochs.holds(),
        "per-epoch Specification 3 must hold ({label}): {epochs:?}"
    );
    assert_eq!(
        epochs.epochs_checked(),
        chaos.fault_steps.len() + 1,
        "one epoch per authoritative corruption mark, plus the initial one"
    );
    u64::from(chaos.bursts_fired)
}

/// One forwarding chaos run; corrupted payloads may legitimately be
/// voided at fault boundaries (classified as interrupted), so the
/// pass/fail signal is the per-epoch Specification 4 verdict, not the
/// raw delivery count.
fn forwarding_chaos_run(
    transport: &dyn Transport<snapstab_repro::core::forward::ForwardMsg>,
    mix: ChaosMix,
    loss: f64,
    seed: u64,
) -> u64 {
    let n = 3;
    let cfg = forwarding_cfg(n, loss, seed);
    let plan = small_plan(mix, seed);
    let (report, chaos) = run_forwarding_service_chaos_on(&cfg, transport, &plan)
        .expect("transport setup (UDP runs are guarded by `udp_available`)");
    let label = format!("mix {} loss {loss} seed {seed}", mix.as_str());
    assert_eq!(chaos.bursts_fired, plan.bursts, "{label}");
    let trace = report.trace.as_ref().expect("chaos runs record the trace");
    let epochs = analyze_forwarding_epochs(trace, n, &chaos.fault_steps);
    assert!(
        epochs.holds(),
        "per-epoch Specification 4 must hold ({label}): forged {:?}, epochs {}",
        epochs.forged_marks,
        epochs.epochs_checked(),
    );
    u64::from(chaos.bursts_fired)
}

/// The headline sweep: every fault mix × loss tier × 5 seeds over the
/// in-memory transport — 75 runs, 150 seeded mid-run fault bursts, all
/// served in full with clean per-epoch verdicts.
#[test]
fn mutex_chaos_inmem_sweep() {
    let mut bursts = 0;
    for mix in MIXES {
        for loss in [0.0, 0.1, 0.3] {
            for seed in 1..=5u64 {
                bursts += mutex_chaos_run(&InMemory, mix, loss, 0xC0DE ^ (seed << 8));
            }
        }
    }
    assert_eq!(bursts, 150, "5 mixes × 3 loss tiers × 5 seeds × 2 bursts");
}

/// Forwarding under every fault mix × two loss tiers × 2 seeds — the
/// non-mutex workload's epoch verdicts (Specification 4) under the same
/// chaos engine.
#[test]
fn forwarding_chaos_inmem_sweep() {
    let mut bursts = 0;
    for mix in MIXES {
        for loss in [0.0, 0.1] {
            for seed in [7u64, 8] {
                bursts += forwarding_chaos_run(&InMemory, mix, loss, seed);
            }
        }
    }
    assert_eq!(bursts, 40, "5 mixes × 2 loss tiers × 2 seeds × 2 bursts");
}

/// The same chaos engine degrading *real UDP sockets*: `ChaosTransport`
/// sits above the backend, so partitions and drop storms hit the
/// datagram path exactly as they hit the in-memory lanes.
#[test]
fn mutex_chaos_udp_sweep() {
    if skip_without_udp("mutex_chaos_udp_sweep") {
        return;
    }
    let mut bursts = 0;
    for mix in MIXES {
        for seed in [11u64, 12] {
            bursts += mutex_chaos_run(&UdpLoopback::new(), mix, 0.0, seed);
        }
    }
    assert_eq!(bursts, 20, "5 mixes × 2 seeds × 2 bursts");
}

/// Forwarding over UDP under the combined (`all`) mix.
#[test]
fn forwarding_chaos_udp_pair() {
    if skip_without_udp("forwarding_chaos_udp_pair") {
        return;
    }
    let mut bursts = 0;
    for seed in [21u64, 22] {
        bursts += forwarding_chaos_run(&UdpLoopback::new(), ChaosMix::All, 0.0, seed);
    }
    assert_eq!(bursts, 4);
}

/// Crash storms specifically: every crash the engine lands must be
/// detected and healed by the supervisor alone (with adversarially
/// corrupted restart state), never by the test.
#[test]
fn supervisor_heals_every_crash_without_manual_intervention() {
    for seed in 31..=34u64 {
        let n = 3;
        let cfg = mutex_cfg(n, 0.0, seed);
        let plan = ChaosPlan {
            bursts: 3,
            quiet: Duration::from_millis(20),
            disruption: Duration::from_millis(15),
            ..ChaosPlan::profile(ChaosMix::Crash, seed)
        };
        let (report, chaos) = run_mutex_service_chaos_on(&cfg, &InMemory, &plan).expect("in-mem");
        assert_eq!(report.served, cfg.requests_per_process * n as u64);
        assert!(chaos.crashes > 0, "the crash mix must actually crash");
        assert!(
            !chaos.interventions.is_empty(),
            "every crash must be healed by a recorded supervisor intervention"
        );
        // Corrupt restarts leave authoritative fault marks; the epoch
        // checker must vouch for every one of them.
        let trace = report.trace.as_ref().expect("recorded");
        let epochs = analyze_me_epochs(trace, n, &chaos.fault_steps);
        assert!(epochs.holds(), "seed {seed}: {epochs:?}");
        assert_eq!(epochs.epochs_checked(), chaos.fault_steps.len() + 1);
    }
}

/// In-flight requests at fault boundaries are *classified* (interrupted),
/// not silently excused: across a corruption-heavy sweep the totals add
/// up — every injected request is either served in some epoch or
/// explicitly interrupted by a fault.
#[test]
fn interrupted_requests_are_classified_not_excused() {
    let mut interrupted = 0;
    for seed in 41..=46u64 {
        let n = 3;
        // A workload that outlasts the fault schedule, and a tight burst
        // cadence: corruptions land while requests are in flight.
        let cfg = MutexServiceConfig {
            requests_per_process: 12,
            ..mutex_cfg(n, 0.0, seed)
        };
        let plan = ChaosPlan {
            bursts: 3,
            quiet: Duration::from_millis(6),
            ..small_plan(ChaosMix::Corrupt, seed)
        };
        let (report, chaos) = run_mutex_service_chaos_on(&cfg, &InMemory, &plan).expect("in-mem");
        let trace = report.trace.as_ref().expect("recorded");
        let epochs = analyze_me_epochs(trace, n, &chaos.fault_steps);
        assert!(epochs.holds(), "seed {seed}");
        // Every request marker lands in exactly one epoch and is either
        // served there or classified interrupted at its closing fault —
        // nothing vanishes from the books.
        assert!(
            epochs.served_total() + epochs.interrupted_total() >= report.injected as usize,
            "seed {seed}: served {} + interrupted {} must cover the {} injected requests",
            epochs.served_total(),
            epochs.interrupted_total(),
            report.injected,
        );
        interrupted += epochs.interrupted_total();
    }
    // Corruption bursts land mid-request often enough that the sweep
    // must classify at least one in-flight request as interrupted —
    // otherwise the boundary classification is dead code.
    assert!(
        interrupted > 0,
        "a corruption-heavy sweep must interrupt some in-flight request"
    );
}
