// Index loops over parallel per-process arrays read clearer than enumerate here.
#![allow(clippy::needless_range_loop)]
//! Property-based tests: the snap-stabilization specifications hold for
//! *arbitrary* seeds, sizes, loss rates and corruption draws — `I = C`
//! sampled broadly rather than hand-picked.

use proptest::prelude::*;
use snapstab_repro::core::idl::IdlProcess;
use snapstab_repro::core::me::{MeConfig, MeProcess, ValueMode};
use snapstab_repro::core::pif::{PifApp, PifProcess};
use snapstab_repro::core::request::RequestState;
use snapstab_repro::core::spec::{analyze_me_trace, check_bare_pif_wave, check_idl_result};
use snapstab_repro::sim::{
    Capacity, CorruptionPlan, LossModel, NetworkBuilder, ProcessId, RandomScheduler, Runner, SimRng,
};

fn p(i: usize) -> ProcessId {
    ProcessId::new(i)
}

#[derive(Clone, Debug)]
struct Answer(u32);

impl PifApp<u32, u32> for Answer {
    fn on_broadcast(&mut self, _from: ProcessId, _data: &u32) -> u32 {
        self.0
    }
    fn on_feedback(&mut self, _from: ProcessId, _data: &u32) {}
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, .. ProptestConfig::default() })]

    /// Specification 1 holds for every sampled corrupted start.
    #[test]
    fn pif_spec1_always_holds(
        n in 2usize..6,
        seed in any::<u64>(),
        loss in 0u8..3,
    ) {
        let loss = f64::from(loss) * 0.15;
        let processes: Vec<PifProcess<u32, u32, Answer>> = (0..n)
            .map(|i| PifProcess::with_initial_f(p(i), n, 0, 0, Answer(100 + i as u32)))
            .collect();
        let network = NetworkBuilder::new(n).capacity(Capacity::Bounded(1)).build();
        let mut runner = Runner::new(processes, network, RandomScheduler::new(), seed);
        if loss > 0.0 {
            runner.set_loss(LossModel::probabilistic(loss));
        }
        let mut rng = SimRng::seed_from(seed ^ 0xF00D);
        CorruptionPlan::full().apply(&mut runner, &mut rng);

        let _ = runner.run_until(500_000, |r| r.process(p(0)).request() == RequestState::Done);
        let req_step = runner.step_count();
        prop_assert!(runner.process_mut(p(0)).request_broadcast(9));
        runner
            .run_until(5_000_000, |r| r.process(p(0)).request() == RequestState::Done)
            .expect("wave decides");
        let verdict =
            check_bare_pif_wave(runner.trace(), p(0), n, req_step, &9, |q| 100 + q.index() as u32);
        prop_assert!(verdict.holds(), "{verdict:?}");
    }

    /// Specification 2 holds for every sampled corrupted start.
    #[test]
    fn idl_spec2_always_holds(
        n in 2usize..6,
        seed in any::<u64>(),
    ) {
        let ids: Vec<u64> = (0..n).map(|i| 1 + ((i as u64) * 997 + seed % 89) % 5000).collect();
        // Identities must be distinct for the leader to be well-defined.
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assume!(sorted.len() == n);

        let processes: Vec<IdlProcess> =
            (0..n).map(|i| IdlProcess::new(p(i), n, ids[i])).collect();
        let network = NetworkBuilder::new(n).capacity(Capacity::Bounded(1)).build();
        let mut runner = Runner::new(processes, network, RandomScheduler::new(), seed);
        let mut rng = SimRng::seed_from(seed ^ 0x1D5);
        CorruptionPlan::full().apply(&mut runner, &mut rng);

        let _ = runner.run_until(500_000, |r| r.process(p(0)).request() == RequestState::Done);
        prop_assert!(runner.process_mut(p(0)).request_learning());
        runner
            .run_until(5_000_000, |r| r.process(p(0)).request() == RequestState::Done)
            .expect("computation decides");
        let verdict = check_idl_result(runner.process(p(0)).idl(), p(0), &ids, true, true);
        prop_assert!(verdict.holds(), "{verdict:?}");
    }

    /// Specification 3 Correctness: no genuine CS overlap, ever.
    #[test]
    fn me_exclusivity_always_holds(
        seed in any::<u64>(),
        cs_duration in 0u64..5,
        loss in 0u8..2,
    ) {
        let n = 3;
        let loss = f64::from(loss) * 0.2;
        let config = MeConfig { cs_duration, value_mode: ValueMode::Corrected, ..MeConfig::default() };
        let processes: Vec<MeProcess> = (0..n)
            .map(|i| MeProcess::with_config(p(i), n, 50 + i as u64, config))
            .collect();
        let network = NetworkBuilder::new(n).capacity(Capacity::Bounded(1)).build();
        let mut runner = Runner::new(processes, network, RandomScheduler::new(), seed);
        if loss > 0.0 {
            runner.set_loss(LossModel::probabilistic(loss));
        }
        let mut rng = SimRng::seed_from(seed ^ 0x3E);
        CorruptionPlan::full().apply(&mut runner, &mut rng);

        let mut executed = 0;
        while executed < 30_000 {
            executed += runner.run_steps(500).expect("run").steps;
            for i in 0..n {
                if runner.process(p(i)).request() == RequestState::Done && rng.gen_bool(0.05) {
                    runner.mark(p(i), "request");
                    runner.process_mut(p(i)).request_cs();
                }
            }
        }
        let report = analyze_me_trace(runner.trace(), n);
        prop_assert!(report.exclusivity_holds(), "{:?}", report.genuine_overlaps);
    }

    /// Flag monotonicity: within one wave, the initiator's handshake flag
    /// toward any neighbor never decreases until the decision resets it.
    #[test]
    fn pif_flag_monotone_within_wave(seed in any::<u64>()) {
        let n = 3;
        let processes: Vec<PifProcess<u32, u32, Answer>> = (0..n)
            .map(|i| PifProcess::with_initial_f(p(i), n, 0, 0, Answer(1)))
            .collect();
        let network = NetworkBuilder::new(n).capacity(Capacity::Bounded(1)).build();
        let mut runner = Runner::new(processes, network, RandomScheduler::new(), seed);
        runner.process_mut(p(0)).request_broadcast(2);
        let mut prev = [0u8; 3];
        for _ in 0..5_000 {
            if runner.process(p(0)).request() == RequestState::Done {
                break;
            }
            runner.step().expect("step");
            for q in 1..n {
                let now = runner.process(p(0)).core().state_of(p(q)).value();
                prop_assert!(now >= prev[q], "flag toward P{q} decreased mid-wave");
                prev[q] = now;
            }
        }
    }
}
