//! Robustness corners of the reproduction: the footnote-1 semantics
//! (spurious critical sections from corrupted state), the D6 capacity
//! generalization, and fault bursts landing *during* computations.

use snapstab_repro::core::idl::IdlProcess;
use snapstab_repro::core::me::{MeConfig, MeProcess, ValueMode};
use snapstab_repro::core::pif::{PifApp, PifProcess};
use snapstab_repro::core::request::RequestState;
use snapstab_repro::core::spec::{analyze_me_trace, check_bare_pif_wave, check_idl_result};
use snapstab_repro::sim::{
    Capacity, CorruptionPlan, NetworkBuilder, ProcessId, Protocol, RandomScheduler, RoundRobin,
    Runner, SimRng,
};

fn p(i: usize) -> ProcessId {
    ProcessId::new(i)
}

/// Footnote 1 of the paper: "Starting from any configuration, a
/// snap-stabilizing protocol cannot prevent several (non-requesting)
/// processes to execute the critical section simultaneously. However, it
/// guarantees that every requesting process executes the critical section
/// in an exclusive manner."
///
/// This test *forces* the corrupted state that makes a non-requesting
/// process execute the CS spuriously, and checks the spec machinery
/// classifies it as spurious (not a violation) while genuine requests stay
/// protected.
#[test]
fn footnote1_spurious_cs_is_possible_and_classified() {
    let n = 3;
    let config = MeConfig {
        cs_duration: 4,
        value_mode: ValueMode::Corrected,
        ..MeConfig::default()
    };
    // P0 is the leader (smallest id).
    let ids = [5u64, 100, 200];
    let processes: Vec<MeProcess> = (0..n)
        .map(|i| MeProcess::with_config(p(i), n, ids[i], config))
        .collect();
    let network = NetworkBuilder::new(n)
        .capacity(Capacity::Bounded(1))
        .build();
    let mut runner = Runner::new(processes, network, RoundRobin::new(), 3);

    // Hand-craft P2's corrupted state: it believes (wrongly, nobody asked)
    // that it is privileged and mid-protocol: phase 3, Request=In, a YES
    // recorded from the leader, correct ID table, its own PIF idle.
    let mut s = runner.process(p(2)).snapshot();
    s.request = RequestState::In; // corrupted: no external request was made
    s.phase = 3;
    s.privileges = vec![true, false, false]; // "the leader said YES"
    s.idl.min_id = 5;
    s.idl.id_tab = vec![5, 100, 0];
    s.idl.request = RequestState::Done;
    s.pif.request = RequestState::Done;
    runner.process_mut(p(2)).restore(s);

    // One activation of P2 executes A3's CS branch spuriously.
    runner
        .execute_move(snapstab_repro::sim::Move::Activate(p(2)))
        .unwrap();
    assert!(runner.process(p(2)).is_in_cs(), "the spurious CS is real");

    // Let the run continue; nobody requested, so the interval is spurious.
    runner.run_steps(40_000).unwrap();
    let report = analyze_me_trace(runner.trace(), n);
    assert!(
        report
            .intervals
            .iter()
            .any(|iv| iv.p == p(2) && !iv.genuine),
        "the checker must classify P2's CS as spurious: {:?}",
        report.intervals
    );
    assert!(report.exclusivity_holds(), "no genuine pair overlapped");
}

/// D6: the protocols also work at known capacities larger than 1 — the
/// paper: "the extension to an arbitrary but known bounded message
/// capacity is straightforward".
#[test]
fn idl_correct_at_larger_capacities() {
    for cap in [2usize, 4, 8] {
        for seed in 0..3 {
            let n = 3;
            let ids: Vec<u64> = vec![30, 10, 20];
            let processes: Vec<IdlProcess> =
                (0..n).map(|i| IdlProcess::new(p(i), n, ids[i])).collect();
            let network = NetworkBuilder::new(n)
                .capacity(Capacity::Bounded(cap))
                .build();
            let mut runner = Runner::new(processes, network, RandomScheduler::new(), seed);
            let mut rng = SimRng::seed_from(seed * 100 + cap as u64);
            CorruptionPlan {
                corrupt_processes: true,
                corrupt_channels: true,
                max_preload_per_channel: cap,
            }
            .apply(&mut runner, &mut rng);
            let _ = runner.run_until(1_000_000, |r| {
                r.process(p(0)).request() == RequestState::Done
            });
            assert!(runner.process_mut(p(0)).request_learning());
            runner
                .run_until(3_000_000, |r| {
                    r.process(p(0)).request() == RequestState::Done
                })
                .expect("decides");
            let v = check_idl_result(runner.process(p(0)).idl(), p(0), &ids, true, true);
            assert!(v.holds(), "capacity {cap}, seed {seed}: {v:?}");
        }
    }
}

#[derive(Clone, Debug)]
struct Answer(u32);

impl PifApp<u32, u32> for Answer {
    fn on_broadcast(&mut self, _from: ProcessId, _data: &u32) -> u32 {
        self.0
    }
    fn on_feedback(&mut self, _from: ProcessId, _data: &u32) {}
}

/// Faults landing in the middle of a started wave void that wave's
/// guarantee (the definition only covers executions where faults have
/// ceased) — but the *next* requested wave is exact again. Snap-
/// stabilization is about fault containment at the request boundary.
#[test]
fn mid_wave_corruption_next_wave_exact() {
    for seed in 0..6 {
        let n = 3;
        let processes: Vec<PifProcess<u32, u32, Answer>> = (0..n)
            .map(|i| PifProcess::with_initial_f(p(i), n, 0, 0, Answer(100 + i as u32)))
            .collect();
        let network = NetworkBuilder::new(n)
            .capacity(Capacity::Bounded(1))
            .build();
        let mut runner = Runner::new(processes, network, RandomScheduler::new(), seed);

        // Start a wave and corrupt everything mid-flight.
        runner.process_mut(p(0)).request_broadcast(1);
        runner.run_steps(10).unwrap();
        let mut rng = SimRng::seed_from(seed + 7);
        CorruptionPlan::full().apply(&mut runner, &mut rng);

        // Drain whatever the corrupted system does, then request again.
        let _ = runner.run_until(1_000_000, |r| {
            r.process(p(0)).request() == RequestState::Done
        });
        let req_step = runner.step_count();
        assert!(runner.process_mut(p(0)).request_broadcast(2));
        runner
            .run_until(2_000_000, |r| {
                r.process(p(0)).request() == RequestState::Done
            })
            .expect("post-fault wave decides");
        let verdict = check_bare_pif_wave(runner.trace(), p(0), n, req_step, &2, |q| {
            100 + q.index() as u32
        });
        assert!(verdict.holds(), "seed {seed}: {verdict:?}");
    }
}

/// Repeated alternation of faults and requests: the service never degrades
/// (no accumulation of damage across bursts).
#[test]
fn sustained_fault_request_alternation() {
    let n = 3;
    let processes: Vec<IdlProcess> = (0..n)
        .map(|i| IdlProcess::new(p(i), n, [44u64, 17, 91][i]))
        .collect();
    let network = NetworkBuilder::new(n)
        .capacity(Capacity::Bounded(1))
        .build();
    let mut runner = Runner::new(processes, network, RandomScheduler::new(), 5);
    let mut rng = SimRng::seed_from(60);
    let mut latencies = Vec::new();
    for _ in 0..12 {
        CorruptionPlan::full().apply(&mut runner, &mut rng);
        let _ = runner.run_until(1_000_000, |r| {
            r.process(p(2)).request() == RequestState::Done
        });
        assert!(runner.process_mut(p(2)).request_learning());
        let before = runner.step_count();
        runner
            .run_until(2_000_000, |r| {
                r.process(p(2)).request() == RequestState::Done
            })
            .expect("decides");
        latencies.push(runner.step_count() - before);
        assert_eq!(runner.process(p(2)).idl().min_id(), 17);
    }
    // No degradation trend: the last bursts are no slower than 10x the first.
    let first = latencies[0].max(1);
    assert!(
        latencies.iter().all(|&l| l < first * 10 + 2_000),
        "latencies must not degrade: {latencies:?}"
    );
}

/// A corrupted `Phase` value outside `{0..4}` cannot happen by corruption
/// (the domain is enforced) — but a corrupted PIF request in `Wait`
/// combined with a mid-phase ME must still terminate its wave and keep
/// cycling (Lemma 10 resilience spot check).
#[test]
fn me_keeps_cycling_from_nasty_mixed_states() {
    for seed in 0..5 {
        let n = 3;
        let processes: Vec<MeProcess> = (0..n)
            .map(|i| MeProcess::new(p(i), n, 100 + i as u64))
            .collect();
        let network = NetworkBuilder::new(n)
            .capacity(Capacity::Bounded(1))
            .build();
        let mut runner = Runner::new(processes, network, RandomScheduler::new(), seed);
        let mut rng = SimRng::seed_from(seed);
        CorruptionPlan::full().apply(&mut runner, &mut rng);
        runner.run_steps(50_000).unwrap();
        for i in 0..n {
            assert!(
                runner.process(p(i)).counters().phase_zero_visits > 0,
                "seed {seed}: P{i} must keep cycling"
            );
        }
    }
}
