//! Property-based tests for the general-topology extension: random tree
//! shapes, random corruption, random roots — the tree-wave specification
//! must always hold, and topology invariants must be preserved.

use proptest::prelude::*;
use snapstab_repro::core::request::RequestState;
use snapstab_repro::sim::{
    Capacity, CorruptionPlan, LossModel, NetworkBuilder, ProcessId, RandomScheduler, Runner,
    SimRng, Topology,
};
use snapstab_repro::topology::{check_tree_wave, Count, MinId, TreePifNode};

fn p(i: usize) -> ProcessId {
    ProcessId::new(i)
}

/// A random tree over n nodes: node i+1 attaches to a parent in 0..=i.
fn random_tree(n: usize, seed: u64) -> Topology {
    let mut rng = SimRng::seed_from(seed);
    let parents: Vec<usize> = (1..n).map(|i| rng.gen_range(0..i)).collect();
    Topology::from_parents(&parents)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, .. ProptestConfig::default() })]

    /// The tree-wave specification holds on arbitrary trees from
    /// arbitrary corrupted starts under arbitrary (fair) schedules.
    #[test]
    fn tree_wave_spec_always_holds(
        n in 3usize..8,
        shape_seed in any::<u64>(),
        run_seed in any::<u64>(),
        root in 0usize..8,
        loss in 0u8..3,
    ) {
        let root = root % n;
        let topo = random_tree(n, shape_seed);
        prop_assert!(topo.is_tree());
        let processes: Vec<TreePifNode<u8, u64, Count>> =
            (0..n).map(|i| TreePifNode::new(p(i), &topo, 0u8, Count)).collect();
        let network = NetworkBuilder::new(n).capacity(Capacity::Bounded(1)).build();
        let mut runner = Runner::new(processes, network, RandomScheduler::new(), run_seed);
        if loss > 0 {
            runner.set_loss(LossModel::probabilistic(f64::from(loss) * 0.1));
        }
        let mut rng = SimRng::seed_from(run_seed ^ 0x1EE7);
        CorruptionPlan::full().apply(&mut runner, &mut rng);

        let root = p(root);
        let _ = runner.run_until(1_500_000, |r| r.process(root).request() == RequestState::Done);
        prop_assert_eq!(
            runner.process(root).request(),
            RequestState::Done,
            "Termination of non-started computations"
        );
        let req_step = runner.step_count();
        prop_assert!(runner.process_mut(root).request_wave(7));
        runner
            .run_until(8_000_000, |r| r.process(root).request() == RequestState::Done)
            .expect("wave decides");
        let verdict = check_tree_wave(runner.trace(), root, n, req_step, &7, &(n as u64));
        prop_assert!(verdict.holds(), "{:?}", verdict);
    }

    /// Leader election (minimum id) is exact on arbitrary trees.
    #[test]
    fn min_id_is_exact_on_arbitrary_trees(
        n in 3usize..7,
        shape_seed in any::<u64>(),
        run_seed in any::<u64>(),
    ) {
        let topo = random_tree(n, shape_seed);
        let ids: Vec<u64> = (0..n).map(|i| 1 + ((i as u64) * 2654435761 + run_seed % 1009) % 100_000).collect();
        prop_assume!({
            let mut s = ids.clone();
            s.sort_unstable();
            s.windows(2).all(|w| w[0] != w[1])
        });
        let min = *ids.iter().min().expect("non-empty");
        let processes: Vec<TreePifNode<u8, u64, MinId>> = (0..n)
            .map(|i| TreePifNode::new(p(i), &topo, 0u8, MinId { my_id: ids[i] }))
            .collect();
        let network = NetworkBuilder::new(n).capacity(Capacity::Bounded(1)).build();
        let mut runner = Runner::new(processes, network, RandomScheduler::new(), run_seed);
        let mut rng = SimRng::seed_from(run_seed ^ 0xFACE);
        CorruptionPlan::full().apply(&mut runner, &mut rng);
        let _ = runner.run_until(1_500_000, |r| r.process(p(0)).request() == RequestState::Done);
        prop_assert!(runner.process_mut(p(0)).request_wave(1));
        runner
            .run_until(8_000_000, |r| r.process(p(0)).request() == RequestState::Done)
            .expect("wave decides");
        prop_assert_eq!(runner.process(p(0)).result(), Some(&min));
    }

    /// Topology invariants: random trees are trees; spanning trees of
    /// random connected graphs span; diameters are consistent.
    #[test]
    fn topology_invariants(
        n in 3usize..12,
        seed in any::<u64>(),
    ) {
        let tree = random_tree(n, seed);
        prop_assert!(tree.is_tree());
        prop_assert_eq!(tree.edge_count(), n - 1);
        prop_assert!(tree.diameter() < n);

        // A random connected graph: a tree plus extra edges.
        let mut g = tree.clone();
        let mut rng = SimRng::seed_from(seed);
        for _ in 0..rng.gen_range(0..n) {
            let a = rng.gen_range(0..n);
            let b = rng.gen_range(0..n);
            if a != b {
                g.add_edge(p(a), p(b));
            }
        }
        prop_assert!(g.is_connected());
        let span = g.bfs_spanning_tree(p(rng.gen_range(0..n)));
        prop_assert!(span.is_tree());
        prop_assert!(span.diameter() >= g.diameter() || g.diameter() <= span.diameter(),
            "spanning tree cannot shrink distances");
        // Every spanning-tree edge is a graph edge.
        for a in 0..n {
            for b in 0..n {
                if a != b && span.has_edge(p(a), p(b)) {
                    prop_assert!(g.has_edge(p(a), p(b)));
                }
            }
        }
    }
}
